"""The shared typed-error taxonomy.

Every error the library raises on purpose descends from :class:`ReproError`,
so callers can catch "something this database detected and refused" with a
single except clause while still distinguishing the families:

* :class:`ConfigurationError` -- an invalid knob (negative worker count,
  zero-entry cache) caught at construction time.
* :class:`PlannerError` -- the optimizer cannot produce a plan for the
  query as posed (disconnected join graph, no feasible algorithm at the
  current memory grant, ambiguous column names).
* :class:`GovernorError` -- the resource governor's query-lifecycle
  errors: :class:`AdmissionRejected`, :class:`QueryTimeout`,
  :class:`QueryCancelled`, and :class:`WorkerPoolError`.
* :class:`StateError` -- an internal invariant broke at run time (an
  operation was applied to an object in the wrong state, or a bound the
  algorithm relies on was exceeded).
* :class:`repro.recovery.restart.RecoveryError` -- structurally
  inconsistent durable state found during restart recovery.

Several subclasses *also* inherit a builtin (``ValueError`` for the
planner and configuration families, ``RuntimeError`` for recovery) so
pre-taxonomy callers that caught builtins keep working.
"""

from __future__ import annotations

from typing import Any, Optional


class ReproError(Exception):
    """Base class for every typed error the reproduction raises."""


class Retryable:
    """Marker mixin: the failed statement may be retried safely.

    Mixed into errors whose failure is *transient by construction* -- the
    system rolled the offending work back (deadlock victim) or never
    performed it (a queued-but-ungranted lock request), so re-running the
    same statement is sound.  The server's retry layer
    (:mod:`repro.server.retry`) keys off this marker, and the wire
    protocol carries it as the ``retryable`` error field so remote
    clients can implement the same policy.
    """


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration or argument value the caller passed in."""


class StateError(ReproError, RuntimeError):
    """An internal invariant broke at run time (wrong state, bound hit)."""


class PlannerError(ReproError, ValueError):
    """The optimizer cannot plan the query as posed."""


class UnplannableQueryError(PlannerError):
    """No feasible plan exists (disconnected graph, no viable algorithm)."""


class GovernorError(ReproError):
    """Base class for resource-governor query-lifecycle errors."""

    def __init__(self, message: str, qid: Optional[int] = None) -> None:
        super().__init__(message)
        #: Query id the error belongs to (None outside a query lifecycle).
        self.qid = qid


class AdmissionRejected(GovernorError):
    """The governor refused to admit the query (budget or queue full).

    ``reason`` is one of ``"queue-full"``, ``"memory"``,
    ``"concurrency"``, or ``"overload"`` (the shed valve fast-rejected
    the request instead of queueing it) so callers and tests can tell
    the rejection paths apart without parsing the message.
    """

    def __init__(
        self, message: str, qid: Optional[int] = None, reason: str = "queue-full"
    ) -> None:
        super().__init__(message, qid)
        self.reason = reason


class QueryTimeout(GovernorError):
    """The query exceeded its deadline (admission wait or execution)."""


class SessionError(ReproError):
    """Base class for multi-session server errors (repro.server)."""


class ProtocolError(SessionError, ValueError):
    """A malformed, oversized, or truncated wire frame."""


class TransactionAborted(SessionError, Retryable):
    """The session's open transaction was rolled back by the system.

    ``reason`` is machine-readable: ``"deadlock"`` (this transaction was
    the victim closing a wait-for cycle), ``"lock-timeout"`` (a lock wait
    exceeded its bound), ``"admission"`` (a parked statement could not
    reacquire its admission slot), ``"disconnect"`` (the client vanished
    mid-transaction), or ``"crash"`` (the server crashed before the
    commit group reached the durable log).  The rollback already
    happened, so the transaction is :class:`Retryable` from the top.
    """

    def __init__(self, message: str, reason: str = "deadlock") -> None:
        super().__init__(message)
        self.reason = reason


class WouldBlock(SessionError, Retryable):
    """A non-blocking lock request is queued but not yet granted.

    Raised in ``wait=False`` mode; the request stays on the lock's FIFO
    queue, so the caller retries the same statement after other sessions
    make progress.  The session layer turns this into an admission-aware
    wait (release the governor slot, block in the lock table, reacquire);
    direct store callers see it as a :class:`Retryable` signal.
    """


class QueryCancelled(GovernorError):
    """The query was cancelled via ``db.cancel(qid)`` / token.cancel()."""


class WorkerPoolError(GovernorError):
    """A worker-pool failure that could not be recovered serially.

    The executor retries failed buckets serially, so this surfaces only
    when even the serial retry raised; it exists to keep worker failures
    inside the typed taxonomy instead of leaking pool internals.
    """


__all__ = [
    "AdmissionRejected",
    "ConfigurationError",
    "GovernorError",
    "PlannerError",
    "ProtocolError",
    "QueryCancelled",
    "QueryTimeout",
    "ReproError",
    "Retryable",
    "SessionError",
    "StateError",
    "TransactionAborted",
    "UnplannableQueryError",
    "WorkerPoolError",
    "WouldBlock",
]
