"""Interprocedural analysis core for ``repro.lint``.

The PR-5 checkers analyze one function at a time; the concurrency
invariants that PRs 6-9 added by hand (admission parking, sharded
counters, the catalog read-write lock, re-split scratch files) are
*interprocedural*: whether a statement blocks while holding a lock
depends on what its callees do, and whether a write is guarded depends
on the context every caller establishes.  This module builds, once per
lint run:

* a **project index** -- every class, its lock declarations (the same
  ``threading.Lock``/``RLock``/``Condition``/``tracked_lock`` factory
  model as :mod:`repro.lint.checkers.lock_order`, extended with
  :class:`~repro.core.rwlock.ReadWriteLock` and its read/write sides),
  every function and method, and a light attribute-type environment
  inferred from annotations and constructor calls;
* a **call graph** with conservative resolution: ``self.m(...)``
  resolves within the class first, ``obj.m(...)`` resolves to every
  class defining ``m`` (narrowed by the type environment when the
  receiver's type is known), and bare ``f(...)`` resolves to
  module-level functions named ``f``;
* a **held-lock-context dataflow**: each function is summarised with
  the set of :class:`LockRef` held at every call site, write, and
  blocking operation (``with`` blocks, rwlock ``read_locked()`` /
  ``write_locked()`` context managers, and explicit
  ``acquire``/``release`` statement pairs), and entry contexts are
  propagated around the call graph to fixpoint -- ``may_entry`` (union
  over call sites, for the runtime-superset lock graph) and
  ``must_entry`` (intersection, for guarded-write reasoning);
* a per-function **CFG with exception edges** (``try``/``except``/
  ``finally`` with duplicated finally regions, loops, ``with``) used by
  the resource-lifecycle all-paths check.

Entry-point model: a function with no in-project callers is an entry
point (public API, thread target, test surface) and starts with an
empty held-lock context.  Everything here over-approximates in the
direction that produces *more* findings -- the right direction for a
gate whose reports are triaged into fixes or justified suppressions
(docs/LINTING.md section "Interprocedural analysis").
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.engine import SourceModule


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None.

    Duplicated from :mod:`repro.lint.checkers.common` -- importing it
    would cycle through the checkers package, which imports this
    module.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


MUTEX = "mutex"
RWLOCK = "rw"

_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "Lock",
    "RLock",
    "tracked_lock",
}
_CONDITION_FACTORIES = {"threading.Condition", "Condition"}
_RW_FACTORIES = {"ReadWriteLock"}

#: Socket / descriptor operations that block the calling thread.
_SOCKET_OPS = {"recv", "recv_into", "sendall", "accept", "connect", "makefile"}
#: Chaos seams: schedulable fault points that may crash/cancel mid-call;
#: firing one while holding a hot lock turns an injected fault into a
#: convoy (every sweep schedule serialises behind the holder).
_CHAOS_SEAMS = {"_chaos_point", "point", "resplit_fault", "worker_fault"}
#: Receiver-name hints that make a ``.join()`` a thread join, not
#: ``str.join`` (conservative: only flag joins on thread-like fields).
_THREADLIKE_HINTS = ("thread", "flusher", "worker", "proc", "pool")

#: Method names shared with builtin containers/strings/files.  An
#: untyped ``x.append(...)`` is overwhelmingly a list append, not
#: ``LogManager.append`` -- resolving it by name would smear that
#: class's blockers over every container mutation in the project, so
#: these only resolve through a *typed* receiver.
_AMBIGUOUS_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "copy",
        "count",
        "decode",
        "discard",
        "encode",
        "extend",
        "flush",
        "format",
        "get",
        "index",
        "insert",
        "items",
        "join",
        "keys",
        "pop",
        "popitem",
        "popleft",
        "read",
        "readline",
        "readlines",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "split",
        "splitlines",
        "startswith",
        "strip",
        "update",
        "values",
        "write",
        "writelines",
    }
)


@dataclass(frozen=True)
class LockRef:
    """One lock (or one side of a read-write lock) as ``Class.attr``."""

    cls: str
    attr: str
    side: str = ""  # "" = mutex; "read"/"write" = rwlock sides

    @property
    def base(self) -> str:
        return "%s.%s" % (self.cls, self.attr)

    def canonical(self) -> str:
        return self.base + ("[%s]" % self.side if self.side else "")


@dataclass(frozen=True)
class Blocker:
    """One reason a function may block, for transitive propagation.

    ``exempt`` lists lock bases a condition wait *releases* while
    blocked (``Condition(lock).wait()`` gives ``lock`` back), so holding
    only those locks at the call site is not a finding.
    """

    label: str
    exempt: Tuple[str, ...] = ()


@dataclass
class CallSite:
    node: ast.Call
    name: str
    kind: str  # "self" | "attr" | "bare"
    recv_type: Optional[str]
    held: FrozenSet[LockRef]
    candidates: Tuple[str, ...] = ()


@dataclass
class WriteSite:
    """A mutation of ``self.<attr>`` (assign, augassign, subscript
    store, or a curated mutator-method call)."""

    node: ast.AST
    attr: str
    held: FrozenSet[LockRef]


@dataclass
class AcquireSite:
    node: ast.AST
    lock: LockRef
    held: FrozenSet[LockRef]


@dataclass
class ClassInfo:
    module: SourceModule
    node: ast.ClassDef
    #: attr -> canonical attr (Condition(self._x) aliases _x).
    locks: Dict[str, str] = field(default_factory=dict)
    #: canonical attr -> MUTEX | RWLOCK.
    kinds: Dict[str, str] = field(default_factory=dict)
    methods: Dict[str, ast.AST] = field(default_factory=dict)
    #: instance attr -> inferred class name (annotations/constructors).
    attr_types: Dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name

    def lock_ref(self, attr: str, side: str = "") -> LockRef:
        return LockRef(self.name, self.locks[attr], side)


@dataclass
class FunctionInfo:
    qualname: str
    module: SourceModule
    cls: Optional[ClassInfo]
    node: ast.AST


@dataclass
class FuncSummary:
    info: FunctionInfo
    calls: List[CallSite] = field(default_factory=list)
    #: (node, blocker, locally-held) for ops that block *here*.
    direct_blockers: List[Tuple[ast.AST, Blocker, FrozenSet[LockRef]]] = field(
        default_factory=list
    )
    writes: List[WriteSite] = field(default_factory=list)
    acquires: List[AcquireSite] = field(default_factory=list)
    #: Transitive closure: every way this function may block.
    blockers: Set[Blocker] = field(default_factory=set)


class ProjectAnalysis:
    """The fully propagated project model handed to the checkers."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules = list(modules)
        self.classes: List[ClassInfo] = []
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.methods_by_name: Dict[str, List[str]] = {}
        self.module_funcs_by_name: Dict[str, List[str]] = {}
        #: lock attr name -> [(ClassInfo, canonical attr)] for the
        #: name-based fallback when a receiver's type is unknown.
        self.lock_attr_owners: Dict[str, List[Tuple[ClassInfo, str]]] = {}
        self.summaries: Dict[str, FuncSummary] = {}
        self.may_entry: Dict[str, FrozenSet[LockRef]] = {}
        self.must_entry: Dict[str, FrozenSet[LockRef]] = {}
        self._build()

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        for module in self.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    info = _collect_class(module, node)
                    self.classes.append(info)
                    self.classes_by_name.setdefault(info.name, []).append(info)
        for info in self.classes:
            for attr, canonical in info.locks.items():
                self.lock_attr_owners.setdefault(attr, []).append(
                    (info, canonical)
                )
        for module in self.modules:
            for stmt in module.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = "%s.%s" % (module.module, stmt.name)
                    self.functions[qual] = FunctionInfo(
                        qualname=qual, module=module, cls=None, node=stmt
                    )
                    self.module_funcs_by_name.setdefault(
                        stmt.name, []
                    ).append(qual)
        for info in self.classes:
            for name, func in info.methods.items():
                qual = "%s.%s.%s" % (info.module.module, info.name, name)
                self.functions[qual] = FunctionInfo(
                    qualname=qual, module=info.module, cls=info, node=func
                )
                self.methods_by_name.setdefault(name, []).append(qual)
        for qual, finfo in self.functions.items():
            self.summaries[qual] = _summarise(finfo, self)
        self._resolve_calls()
        self._propagate_blockers()
        self._propagate_entry_contexts()

    def _resolve_calls(self) -> None:
        for summary in self.summaries.values():
            for site in summary.calls:
                site.candidates = tuple(self._candidates(summary.info, site))

    def _candidates(
        self, caller: FunctionInfo, site: CallSite
    ) -> List[str]:
        if site.kind == "self" and caller.cls is not None:
            if site.name in caller.cls.methods:
                return [
                    "%s.%s.%s"
                    % (caller.cls.module.module, caller.cls.name, site.name)
                ]
            # Inherited / duck-typed: fall through to by-name.
        if site.kind in ("self", "attr"):
            if site.recv_type is not None:
                narrowed = [
                    "%s.%s.%s" % (ci.module.module, ci.name, site.name)
                    for ci in self.classes_by_name.get(site.recv_type, [])
                    if site.name in ci.methods
                ]
                if narrowed:
                    return narrowed
            if site.name in _AMBIGUOUS_METHODS:
                return []  # untyped builtin-container name: don't smear
            return self.methods_by_name.get(site.name, [])
        # Bare name: same-module function first, else any module-level
        # function with that name (cross-module helpers).
        same = "%s.%s" % (caller.module.module, site.name)
        if same in self.functions:
            return [same]
        return self.module_funcs_by_name.get(site.name, [])

    def _propagate_blockers(self) -> None:
        for summary in self.summaries.values():
            summary.blockers = {b for _, b, _ in summary.direct_blockers}
        changed = True
        while changed:
            changed = False
            for summary in self.summaries.values():
                for site in summary.calls:
                    for callee in site.candidates:
                        extra = (
                            self.summaries[callee].blockers
                            - summary.blockers
                        )
                        if extra:
                            summary.blockers |= extra
                            changed = True

    def _propagate_entry_contexts(self) -> None:
        # Collect call sites per callee.
        sites: Dict[str, List[Tuple[str, FrozenSet[LockRef]]]] = {}
        for qual, summary in self.summaries.items():
            for site in summary.calls:
                for callee in site.candidates:
                    sites.setdefault(callee, []).append((qual, site.held))
        # may_entry: union over call sites (monotone increasing).
        may: Dict[str, FrozenSet[LockRef]] = {
            q: frozenset() for q in self.functions
        }
        changed = True
        while changed:
            changed = False
            for qual in self.functions:
                merged: Set[LockRef] = set(may[qual])
                for caller, held in sites.get(qual, ()):
                    merged |= held | may[caller]
                if len(merged) != len(may[qual]):
                    may[qual] = frozenset(merged)
                    changed = True
        self.may_entry = may
        # must_entry: intersection over call sites, TOP-initialised;
        # entry points (no in-project callers) get the empty context.
        TOP = None
        must: Dict[str, Optional[FrozenSet[LockRef]]] = {
            q: (TOP if sites.get(q) else frozenset())
            for q in self.functions
        }
        changed = True
        while changed:
            changed = False
            for qual in self.functions:
                call_sites = sites.get(qual)
                if not call_sites:
                    continue
                acc: Optional[FrozenSet[LockRef]] = TOP
                for caller, held in call_sites:
                    caller_ctx = must.get(caller)
                    if caller_ctx is TOP:
                        continue  # unknown caller context: identity for "and"
                    ctx = held | caller_ctx
                    acc = ctx if acc is TOP else (acc & ctx)
                if acc is not TOP and acc != must[qual]:
                    must[qual] = acc
                    changed = True
        self.must_entry = {
            q: (ctx if ctx is not TOP else frozenset())
            for q, ctx in must.items()
        }

    # -- queries -----------------------------------------------------------

    def summary(self, qualname: str) -> FuncSummary:
        return self.summaries[qualname]

    def held_at(self, site_held: FrozenSet[LockRef], qual: str) -> FrozenSet[LockRef]:
        """Must-held locks at a point: local context plus entry context."""
        return site_held | self.must_entry.get(qual, frozenset())

    def lock_edges(self) -> Set[Tuple[str, str]]:
        """Canonical ``(held, acquired)`` edges over every may-path.

        This is the static half of the runtime diff: if thread A ever
        acquires lock B while holding lock A at runtime, the pair must
        appear here (``Class.attr`` base names, rwlock sides folded into
        their base so the runtime-observed internal mutex matches).
        """
        edges: Set[Tuple[str, str]] = set()
        for qual, summary in self.summaries.items():
            entry = self.may_entry.get(qual, frozenset())
            for acq in summary.acquires:
                context = acq.held | entry
                for held in context:
                    if held.base != acq.lock.base:
                        edges.add((held.base, acq.lock.base))
        return edges


# -- class & type collection ----------------------------------------------


def _collect_class(module: SourceModule, node: ast.ClassDef) -> ClassInfo:
    info = ClassInfo(module=module, node=node)
    info.methods = {
        n.name: n
        for n in node.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    for func in info.methods.values():
        _collect_locks(func, info)
    for func in info.methods.values():
        _collect_attr_types(func, info)
    return info


def _collect_locks(func: ast.AST, info: ClassInfo) -> None:
    for stmt in ast.walk(func):
        if not isinstance(stmt, ast.Assign):
            continue
        if not isinstance(stmt.value, ast.Call):
            continue
        callee = dotted_name(stmt.value.func) or ""
        factory = callee.split(".")[-1] if callee else ""
        for target in stmt.targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            if callee in _LOCK_FACTORIES:
                info.locks[target.attr] = target.attr
                info.kinds[target.attr] = MUTEX
            elif factory in _RW_FACTORIES:
                info.locks[target.attr] = target.attr
                info.kinds[target.attr] = RWLOCK
            elif callee in _CONDITION_FACTORIES:
                args = stmt.value.args
                if (
                    args
                    and isinstance(args[0], ast.Attribute)
                    and isinstance(args[0].value, ast.Name)
                    and args[0].value.id == "self"
                    and args[0].attr in info.locks
                ):
                    info.locks[target.attr] = info.locks[args[0].attr]
                else:
                    info.locks[target.attr] = target.attr
                    info.kinds[target.attr] = MUTEX


def _annotation_class(node: Optional[ast.AST]) -> Optional[str]:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split(".")[-1].strip('"')
    name = dotted_name(node)
    if name:
        return name.split(".")[-1]
    return None


def _collect_attr_types(func: ast.AST, info: ClassInfo) -> None:
    params = {}
    args = getattr(func, "args", None)
    if args is not None:
        for arg in list(args.args) + list(args.kwonlyargs):
            cls_name = _annotation_class(arg.annotation)
            if cls_name:
                params[arg.arg] = cls_name
    for stmt in ast.walk(func):
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            inferred: Optional[str] = None
            if isinstance(stmt, ast.AnnAssign):
                inferred = _annotation_class(stmt.annotation)
            if inferred is None and isinstance(value, ast.Call):
                callee = dotted_name(value.func)
                if callee:
                    inferred = callee.split(".")[-1]
            if inferred is None and isinstance(value, ast.Name):
                inferred = params.get(value.id)
            if inferred:
                info.attr_types.setdefault(target.attr, inferred)


# -- per-function summarisation -------------------------------------------


class _TypeEnv:
    """Local variable -> class-name environment for one function."""

    def __init__(
        self, analysis: ProjectAnalysis, finfo: FunctionInfo
    ) -> None:
        self.analysis = analysis
        self.cls = finfo.cls
        self.vars: Dict[str, str] = {}
        args = getattr(finfo.node, "args", None)
        if args is not None:
            for arg in list(args.args) + list(args.kwonlyargs):
                cls_name = _annotation_class(arg.annotation)
                if cls_name and cls_name in analysis.classes_by_name:
                    self.vars[arg.arg] = cls_name
        if self.cls is not None:
            self.vars["self"] = self.cls.name
        for stmt in ast.walk(finfo.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    inferred = self.expr_type(stmt.value)
                    if inferred:
                        self.vars.setdefault(target.id, inferred)

    def expr_type(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return self.vars.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.expr_type(expr.value)
            if base:
                for info in self.analysis.classes_by_name.get(base, []):
                    found = info.attr_types.get(expr.attr)
                    if found:
                        return found
            return None
        if isinstance(expr, ast.Call):
            callee = dotted_name(expr.func)
            if callee:
                short = callee.split(".")[-1]
                if short in self.analysis.classes_by_name:
                    return short
        return None

    def class_of(self, name: str) -> Optional[ClassInfo]:
        infos = self.analysis.classes_by_name.get(name, [])
        return infos[0] if infos else None


def _lock_refs(
    expr: ast.AST, env: _TypeEnv, side_hint: str = ""
) -> List[LockRef]:
    """Resolve an expression to the lock(s) it denotes, if any.

    Handles ``self._mu``, ``mgr._sql_serial_mu`` (typed or name-based
    fallback), and ``<rw>.read_locked()`` / ``<rw>.write_locked()``.
    """
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        if expr.func.attr in ("read_locked", "write_locked"):
            side = "read" if expr.func.attr == "read_locked" else "write"
            refs = []
            for ref in _lock_refs(expr.func.value, env):
                refs.append(LockRef(ref.cls, ref.attr, side))
            return refs
        return []
    if not isinstance(expr, ast.Attribute):
        return []
    attr = expr.attr
    recv_type = env.expr_type(expr.value)
    if recv_type:
        for info in env.analysis.classes_by_name.get(recv_type, []):
            if attr in info.locks:
                return [info.lock_ref(attr, side_hint)]
    owners = env.analysis.lock_attr_owners.get(attr, [])
    return [
        LockRef(info.name, canonical, side_hint)
        for info, canonical in owners
    ]


_MUTATOR_DEFAULT = (
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "register",
    "remove",
    "setdefault",
    "update",
)


class _Summariser:
    """One in-order AST pass tracking the held-lock set."""

    def __init__(self, finfo: FunctionInfo, analysis: ProjectAnalysis):
        self.finfo = finfo
        self.analysis = analysis
        self.env = _TypeEnv(analysis, finfo)
        self.summary = FuncSummary(info=finfo)

    def run(self) -> FuncSummary:
        self._block(self.finfo.node.body, frozenset())
        return self.summary

    # -- statement traversal ----------------------------------------------

    def _block(self, stmts: Sequence[ast.stmt], held: FrozenSet[LockRef]):
        running = set(held)
        for stmt in stmts:
            self._stmt(stmt, frozenset(running))
            op = self._explicit_lock_op(stmt)
            if op is not None:
                kind, refs = op
                if kind == "acquire":
                    for ref in refs:
                        self.summary.acquires.append(
                            AcquireSite(stmt, ref, frozenset(running))
                        )
                    running.update(refs)
                else:
                    bases = {r.base for r in refs}
                    running = {
                        r for r in running if r.base not in bases
                    }

    def _stmt(self, stmt: ast.stmt, held: FrozenSet[LockRef]) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            extra: List[LockRef] = []
            for item in stmt.items:
                refs = _lock_refs(item.context_expr, self.env)
                extra.extend(refs)
                if not refs:
                    # Non-lock context managers can still contain calls
                    # (e.g. ``with injector.pause():``).
                    self._exprs(item.context_expr, held)
                else:
                    for ref in refs:
                        self.summary.acquires.append(
                            AcquireSite(stmt, ref, held)
                        )
            inner = frozenset(set(held) | set(extra))
            self._block(stmt.body, inner)
        elif isinstance(stmt, ast.If):
            self._exprs(stmt.test, held)
            self._block(stmt.body, held)
            self._block(stmt.orelse, held)
        elif isinstance(stmt, ast.While):
            self._exprs(stmt.test, held)
            self._block(stmt.body, held)
            self._block(stmt.orelse, held)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._exprs(stmt.iter, held)
            self._block(stmt.body, held)
            self._block(stmt.orelse, held)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body, held)
            for handler in stmt.handlers:
                self._block(handler.body, held)
            self._block(stmt.orelse, held)
            self._block(stmt.finalbody, held)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs run later, in an unknown context.
            self._block(stmt.body, frozenset())
        elif isinstance(stmt, ast.ClassDef):
            pass
        else:
            self._exprs(stmt, held)
            self._writes(stmt, held)

    def _explicit_lock_op(
        self, stmt: ast.stmt
    ) -> Optional[Tuple[str, List[LockRef]]]:
        if not (
            isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)
        ):
            return None
        call = stmt.value
        if not isinstance(call.func, ast.Attribute):
            return None
        op = call.func.attr
        if op in ("acquire", "release"):
            refs = _lock_refs(call.func.value, self.env)
            if refs:
                return ("acquire" if op == "acquire" else "release", refs)
        elif op in ("acquire_read", "acquire_write"):
            side = "read" if op == "acquire_read" else "write"
            refs = _lock_refs(call.func.value, self.env, side_hint=side)
            refs = [
                LockRef(r.cls, r.attr, side)
                for r in refs
                if _is_rw(self.analysis, r)
            ]
            if refs:
                return ("acquire", refs)
        elif op in ("release_read", "release_write"):
            refs = _lock_refs(call.func.value, self.env)
            refs = [r for r in refs if _is_rw(self.analysis, r)]
            if refs:
                return ("release", refs)
        return None

    # -- expression traversal ---------------------------------------------

    def _exprs(self, node: ast.AST, held: FrozenSet[LockRef]) -> None:
        """Record calls/blocking ops in an expression subtree, skipping
        nested function bodies (they run later, context unknown)."""
        for child in _walk_exprs(node):
            if isinstance(child, ast.Call):
                self._call(child, held)

    def _call(self, call: ast.Call, held: FrozenSet[LockRef]) -> None:
        dotted = dotted_name(call.func)
        blocker = self._classify_blocking(call, dotted)
        if blocker is not None:
            self.summary.direct_blockers.append((call, blocker, held))
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in ("read_locked", "write_locked") and _lock_refs(
                call, self.env
            ):
                return  # lock acquisition, not a regular call
            kind = (
                "self"
                if isinstance(func.value, ast.Name)
                and func.value.id == "self"
                else "attr"
            )
            self.summary.calls.append(
                CallSite(
                    node=call,
                    name=func.attr,
                    kind=kind,
                    recv_type=self.env.expr_type(func.value),
                    held=held,
                )
            )
        elif isinstance(func, ast.Name):
            self.summary.calls.append(
                CallSite(
                    node=call,
                    name=func.id,
                    kind="bare",
                    recv_type=None,
                    held=held,
                )
            )

    def _classify_blocking(
        self, call: ast.Call, dotted: Optional[str]
    ) -> Optional[Blocker]:
        where = "%s:%d" % (self.finfo.module.display_path, call.lineno)
        if dotted == "time.sleep":
            return Blocker("time.sleep (%s)" % where)
        if not isinstance(call.func, ast.Attribute):
            return None
        attr = call.func.attr
        if attr in _SOCKET_OPS:
            return Blocker("socket %s (%s)" % (attr, where))
        if attr in _CHAOS_SEAMS:
            return Blocker("chaos seam %s (%s)" % (attr, where))
        if attr in ("wait", "wait_for"):
            refs = _lock_refs(call.func.value, self.env)
            exempt = tuple(sorted({r.base for r in refs}))
            return Blocker("condition wait (%s)" % where, exempt=exempt)
        if attr == "join":
            recv = dotted_name(call.func.value) or ""
            leaf = recv.split(".")[-1].lower()
            if any(hint in leaf for hint in _THREADLIKE_HINTS):
                return Blocker("thread join on %s (%s)" % (recv, where))
        if attr == "shutdown":
            recv = dotted_name(call.func.value) or ""
            leaf = recv.split(".")[-1].lower()
            if any(hint in leaf for hint in _THREADLIKE_HINTS):
                return Blocker("pool shutdown on %s (%s)" % (recv, where))
        return None

    # -- writes ------------------------------------------------------------

    def _writes(self, stmt: ast.stmt, held: FrozenSet[LockRef]) -> None:
        targets: List[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            attr = _self_attr_target(target)
            if attr is not None:
                self.summary.writes.append(WriteSite(stmt, attr, held))
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_DEFAULT
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self"
            ):
                self.summary.writes.append(
                    WriteSite(stmt, func.value.attr, held)
                )


def _self_attr_target(target: ast.AST) -> Optional[str]:
    """``self.x`` or ``self.x[...]`` as an assignment target -> ``x``."""
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, (ast.Tuple, ast.List)):
        return None
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None


def _is_rw(analysis: ProjectAnalysis, ref: LockRef) -> bool:
    for info in analysis.classes_by_name.get(ref.cls, []):
        if info.kinds.get(ref.attr) == RWLOCK:
            return True
    return False


def _walk_exprs(node: ast.AST) -> Iterable[ast.AST]:
    """``ast.walk`` that does not descend into nested function bodies or
    lambdas (their calls execute later, under an unknown context)."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                continue
            stack.append(child)


def _summarise(finfo: FunctionInfo, analysis: ProjectAnalysis) -> FuncSummary:
    return _Summariser(finfo, analysis).run()


# -- CFG with exception edges ---------------------------------------------

EXIT = -1
EXC_EXIT = -2


class CFG:
    """Statement-level control-flow graph for one function.

    Every statement node carries a *normal* successor set and an
    *exceptional* successor set (any statement may raise); ``finally``
    regions are duplicated per continuation so a release in a
    ``finally`` covers normal, exceptional, and early-return exits
    alike.  Synthetic nodes (exception dispatch) map to ``None``.
    """

    def __init__(self) -> None:
        self.norm: Dict[int, Set[int]] = {}
        self.exc: Dict[int, Set[int]] = {}
        self.stmts: Dict[int, Optional[ast.stmt]] = {}
        self.entry: int = EXIT
        self._counter = 0

    def new_node(self, stmt: Optional[ast.stmt]) -> int:
        self._counter += 1
        self.stmts[self._counter] = stmt
        self.norm[self._counter] = set()
        self.exc[self._counter] = set()
        return self._counter

    def successors(self, node: int) -> Set[int]:
        return self.norm.get(node, set()) | self.exc.get(node, set())


@dataclass(frozen=True)
class _Ctx:
    nxt: int
    exc: int
    brk: int
    cont: int
    ret: int

    def replace(self, **kw: int) -> "_Ctx":
        data = {
            "nxt": self.nxt,
            "exc": self.exc,
            "brk": self.brk,
            "cont": self.cont,
            "ret": self.ret,
        }
        data.update(kw)
        return _Ctx(**data)


def build_cfg(func: ast.AST) -> CFG:
    cfg = CFG()
    ctx = _Ctx(nxt=EXIT, exc=EXC_EXIT, brk=EXIT, cont=EXIT, ret=EXIT)
    cfg.entry = _build_block(cfg, list(func.body), ctx)
    return cfg


def _build_block(cfg: CFG, stmts: List[ast.stmt], ctx: _Ctx) -> int:
    entry = ctx.nxt
    for stmt in reversed(stmts):
        entry = _build_stmt(cfg, stmt, ctx.replace(nxt=entry))
    return entry


def _build_stmt(cfg: CFG, stmt: ast.stmt, ctx: _Ctx) -> int:
    if isinstance(stmt, ast.If):
        node = cfg.new_node(stmt)
        body = _build_block(cfg, stmt.body, ctx)
        orelse = _build_block(cfg, stmt.orelse, ctx) if stmt.orelse else ctx.nxt
        cfg.norm[node] |= {body, orelse}
        cfg.exc[node].add(ctx.exc)
        return node
    if isinstance(stmt, ast.While):
        node = cfg.new_node(stmt)
        body = _build_block(
            cfg, stmt.body, ctx.replace(nxt=node, brk=ctx.nxt, cont=node)
        )
        cfg.norm[node] |= {body, ctx.nxt}
        cfg.exc[node].add(ctx.exc)
        return node
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        node = cfg.new_node(stmt)
        body = _build_block(
            cfg, stmt.body, ctx.replace(nxt=node, brk=ctx.nxt, cont=node)
        )
        cfg.norm[node] |= {body, ctx.nxt}
        cfg.exc[node].add(ctx.exc)
        return node
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        node = cfg.new_node(stmt)
        body = _build_block(cfg, stmt.body, ctx)
        cfg.norm[node].add(body)
        cfg.exc[node].add(ctx.exc)
        return node
    if isinstance(stmt, ast.Try):
        return _build_try(cfg, stmt, ctx)
    if isinstance(stmt, ast.Return):
        node = cfg.new_node(stmt)
        cfg.norm[node].add(ctx.ret)
        cfg.exc[node].add(ctx.exc)
        return node
    if isinstance(stmt, ast.Raise):
        node = cfg.new_node(stmt)
        cfg.exc[node].add(ctx.exc)
        return node
    if isinstance(stmt, ast.Break):
        node = cfg.new_node(stmt)
        cfg.norm[node].add(ctx.brk)
        return node
    if isinstance(stmt, ast.Continue):
        node = cfg.new_node(stmt)
        cfg.norm[node].add(ctx.cont)
        return node
    node = cfg.new_node(stmt)
    cfg.norm[node].add(ctx.nxt)
    cfg.exc[node].add(ctx.exc)
    return node


def _build_try(cfg: CFG, stmt: ast.Try, ctx: _Ctx) -> int:
    if stmt.finalbody:
        copies: Dict[int, int] = {}

        def through_finally(target: int) -> int:
            if target not in copies:
                copies[target] = _build_block(
                    cfg, stmt.finalbody, ctx.replace(nxt=target)
                )
            return copies[target]

        nxt = through_finally(ctx.nxt)
        exc = through_finally(ctx.exc)
        ret = through_finally(ctx.ret)
        brk = through_finally(ctx.brk)
        cont = through_finally(ctx.cont)
    else:
        nxt, exc, ret, brk, cont = ctx.nxt, ctx.exc, ctx.ret, ctx.brk, ctx.cont
    after = ctx.replace(nxt=nxt, exc=exc, ret=ret, brk=brk, cont=cont)
    handler_entries = [
        _build_block(cfg, handler.body, after) for handler in stmt.handlers
    ]
    if stmt.handlers:
        dispatch = cfg.new_node(None)
        for entry in handler_entries:
            cfg.norm[dispatch].add(entry)
        if not _has_catch_all(stmt):
            cfg.exc[dispatch].add(exc)
        body_exc = dispatch
    else:
        body_exc = exc
    orelse = (
        _build_block(cfg, stmt.orelse, after) if stmt.orelse else nxt
    )
    return _build_block(
        cfg,
        stmt.body,
        after.replace(nxt=orelse, exc=body_exc),
    )


def _has_catch_all(stmt: ast.Try) -> bool:
    for handler in stmt.handlers:
        if handler.type is None:
            return True
        name = dotted_name(handler.type)
        if name in ("BaseException",):
            return True
    return False


# -- memoised entry point --------------------------------------------------

_CACHE: List[Tuple[Tuple[int, ...], ProjectAnalysis]] = []


def analyze_project(modules: Sequence[SourceModule]) -> ProjectAnalysis:
    """Build (or reuse) the project analysis for this module set.

    ``run_lint`` hands the same module list to every checker; the
    analysis is cached on object identity so the four interprocedural
    checkers share one call-graph/dataflow pass.
    """
    key = tuple(id(m) for m in modules)
    for cached_key, analysis in _CACHE:
        if cached_key == key:
            return analysis
    analysis = ProjectAnalysis(modules)
    del _CACHE[:]
    _CACHE.append((key, analysis))
    return analysis


__all__ = [
    "AcquireSite",
    "Blocker",
    "CFG",
    "CallSite",
    "ClassInfo",
    "EXC_EXIT",
    "EXIT",
    "FuncSummary",
    "FunctionInfo",
    "LockRef",
    "MUTEX",
    "ProjectAnalysis",
    "RWLOCK",
    "WriteSite",
    "analyze_project",
    "build_cfg",
    "dotted_name",
]
