"""Command line for the invariant linter: ``python -m repro.lint``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.engine import (
    ERROR,
    WARNING,
    all_checkers,
    apply_baseline,
    collect_modules,
    format_json,
    format_text,
    load_baseline,
    run_lint,
    write_baseline,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant linter for the reproduction: "
            "determinism, counter discipline, error taxonomy, chaos-seam "
            "coverage, lock order, and public-API consistency "
            "(docs/LINTING.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        help="baseline file: demote its fingerprints to warnings so new "
        "rules can land warn-only",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        metavar="FILE",
        help="write the current error findings to FILE and exit 0",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="warnings also fail the build",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--lock-graph",
        action="store_true",
        help="print the statically extracted lock-acquisition graph and "
        "exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for checker in all_checkers():
            for rule, description in sorted(checker.rules.items()):
                print("%-16s %s" % (rule, description))
        return 0

    if args.lock_graph:
        from repro.lint.checkers.lock_order import lock_graph_report

        modules, _ = collect_modules(args.paths)
        for lock, after in lock_graph_report(modules).items():
            print(
                "%s -> %s" % (lock, ", ".join(after) if after else "(leaf)")
            )
        return 0

    rules = None
    if args.rules:
        rules = {r.strip() for r in args.rules.split(",") if r.strip()}

    findings = run_lint(paths=args.paths, rules=rules)

    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(
            "wrote %d fingerprint(s) to %s"
            % (
                sum(1 for f in findings if f.severity == ERROR),
                args.write_baseline,
            )
        )
        return 0

    if args.baseline:
        findings = apply_baseline(findings, load_baseline(args.baseline))

    output = (
        format_json(findings)
        if args.format == "json"
        else format_text(findings)
    )
    print(output)

    failing = {ERROR, WARNING} if args.strict else {ERROR}
    return 1 if any(f.severity in failing for f in findings) else 0


__all__ = ["build_parser", "main"]
