"""Command line for the invariant linter: ``python -m repro.lint``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.engine import (
    ERROR,
    WARNING,
    all_checkers,
    apply_baseline,
    collect_modules,
    format_json,
    format_text,
    load_baseline,
    run_lint,
    write_baseline,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant linter for the reproduction: "
            "determinism, counter discipline, error taxonomy, chaos-seam "
            "coverage, lock order, and public-API consistency "
            "(docs/LINTING.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        help="baseline file: demote its fingerprints to warnings so new "
        "rules can land warn-only",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        metavar="FILE",
        help="write the current error findings to FILE and exit 0",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="warnings also fail the build",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--lock-graph",
        action="store_true",
        help="print the statically extracted lock-acquisition graph and "
        "exit (JSON with --format json; see also --runtime-graph)",
    )
    parser.add_argument(
        "--runtime-graph",
        type=Path,
        metavar="FILE",
        help="with --lock-graph: merge the runtime-observed edge set "
        "exported by the test suite (REPRO_LOCK_GRAPH_OUT) and fail if "
        "any runtime edge is missing from the static graph",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parse source files with N worker threads (default: 1)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for checker in all_checkers():
            for rule, description in sorted(checker.rules.items()):
                print("%-16s %s" % (rule, description))
        return 0

    if args.lock_graph:
        return _lock_graph(args)

    rules = None
    if args.rules:
        rules = {r.strip() for r in args.rules.split(",") if r.strip()}

    findings = run_lint(paths=args.paths, rules=rules, jobs=args.jobs)

    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(
            "wrote %d fingerprint(s) to %s"
            % (
                sum(1 for f in findings if f.severity == ERROR),
                args.write_baseline,
            )
        )
        return 0

    if args.baseline:
        findings = apply_baseline(findings, load_baseline(args.baseline))

    output = (
        format_json(findings)
        if args.format == "json"
        else format_text(findings)
    )
    print(output)

    failing = {ERROR, WARNING} if args.strict else {ERROR}
    return 1 if any(f.severity in failing for f in findings) else 0


def _lock_graph(args: argparse.Namespace) -> int:
    """--lock-graph: report the static graph, optionally merged and
    diffed against a runtime-observed edge set (the CI artifact)."""
    import json

    from repro.lint.checkers.lock_order import lock_graph_report
    from repro.lint.ipa import analyze_project
    from repro.lint.runtime import (
        canonical_lock_name,
        runtime_edges_missing_statically,
    )

    modules, _ = collect_modules(args.paths, jobs=args.jobs)
    static_edges = analyze_project(modules).lock_edges()
    runtime_edges = set()
    if args.runtime_graph:
        with open(args.runtime_graph, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        runtime_edges = {tuple(edge) for edge in payload.get("edges", [])}
    missing = runtime_edges_missing_statically(static_edges, runtime_edges)

    if args.format == "json":
        merged = set(static_edges)
        merged.update(
            (canonical_lock_name(a), canonical_lock_name(b))
            for a, b in runtime_edges
            if a.startswith("repro.") and b.startswith("repro.")
        )
        merged = {(a, b) for a, b in merged if a != b}
        print(
            json.dumps(
                {
                    "schema_version": 2,
                    "kind": "lock-graph",
                    "static_edges": sorted(list(e) for e in static_edges),
                    "merged_edges": sorted(list(e) for e in merged),
                    "runtime_only_edges": sorted(list(e) for e in missing),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for lock, after in lock_graph_report(modules).items():
            print(
                "%s -> %s" % (lock, ", ".join(after) if after else "(leaf)")
            )
        for held, acquired in missing:
            print(
                "RUNTIME-ONLY %s -> %s (not predicted statically)"
                % (held, acquired)
            )
    if missing:
        print(
            "error: %d runtime lock edge(s) missing from the static "
            "graph" % len(missing),
            file=sys.stderr,
        )
        return 1
    return 0


__all__ = ["build_parser", "main"]
