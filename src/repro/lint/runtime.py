"""Dynamic lock-order recording -- the runtime half of the lock-order rule.

The static pass in :mod:`repro.lint.checkers.lock_order` proves the
*source* acquires locks in one global order; this module checks the same
invariant on *executions*.  A :class:`LockOrderRecorder` keeps a
per-thread stack of held locks and, on every acquisition, records an edge
from each currently-held lock to the new one.  At teardown
:meth:`LockOrderRecorder.assert_acyclic` fails the test if any interleaved
pair of threads acquired two locks in opposite orders -- the ABBA pattern
that becomes a deadlock under less lucky scheduling.

Production code opts in through :func:`tracked_lock`::

    self._lock = tracked_lock("repro.governor.Governor._lock")

With no recorder installed (the default) that returns a plain
``threading.Lock`` -- zero overhead.  The test suite installs a global
recorder (see tests/conftest.py), so every governor and group-commit test
doubles as a lock-order check.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ReproError


class LockOrderViolation(ReproError):
    """Two locks were acquired in opposite orders by interleaved threads."""

    def __init__(self, cycle: List[str], edges: Dict[str, Set[str]]) -> None:
        self.cycle = list(cycle)
        self.edges = {k: set(v) for k, v in edges.items()}
        super().__init__(
            "lock-order cycle observed at runtime: %s"
            % " -> ".join(self.cycle + self.cycle[:1])
        )


class LockOrderRecorder:
    """Observed lock-acquisition edges across every thread."""

    def __init__(self) -> None:
        self._guard = threading.Lock()
        self._held = threading.local()
        #: edge -> (thread names observed taking it) for diagnostics.
        self._edges: Dict[Tuple[str, str], Set[str]] = {}
        self.acquisitions = 0

    # -- hooks called by TrackedLock ---------------------------------------

    def on_acquire(self, name: str) -> None:
        stack = self._stack()
        if name not in stack:
            thread = threading.current_thread().name
            with self._guard:
                self.acquisitions += 1
                for held in stack:
                    self._edges.setdefault((held, name), set()).add(thread)
        stack.append(name)

    def on_release(self, name: str) -> None:
        stack = self._stack()
        # Remove the innermost occurrence (reentrant locks release LIFO).
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                break

    def _stack(self) -> List[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    # -- analysis ----------------------------------------------------------

    def edges(self) -> Dict[str, Set[str]]:
        with self._guard:
            graph: Dict[str, Set[str]] = {}
            for (a, b) in self._edges:
                graph.setdefault(a, set()).add(b)
            return graph

    def find_cycle(self) -> Optional[List[str]]:
        graph = self.edges()
        colour: Dict[str, int] = {}
        path: List[str] = []

        def dfs(node: str) -> Optional[List[str]]:
            colour[node] = 1
            path.append(node)
            for nxt in sorted(graph.get(node, ())):
                state = colour.get(nxt, 0)
                if state == 1:
                    return path[path.index(nxt):]
                if state == 0:
                    cycle = dfs(nxt)
                    if cycle is not None:
                        return cycle
            path.pop()
            colour[node] = 2
            return None

        for node in sorted(graph):
            if colour.get(node, 0) == 0:
                cycle = dfs(node)
                if cycle is not None:
                    return cycle
        return None

    def assert_acyclic(self) -> None:
        """Raise :class:`LockOrderViolation` if any ABBA pair was seen."""
        cycle = self.find_cycle()
        if cycle is not None:
            raise LockOrderViolation(cycle, self.edges())

    def reset(self) -> None:
        with self._guard:
            self._edges.clear()
            self.acquisitions = 0


class TrackedLock:
    """A lock proxy that reports acquisitions to a recorder.

    Delegates ``acquire``/``release`` to a real lock, so it drops into
    ``threading.Condition`` unchanged (the condition probes ownership via
    non-blocking acquire, which records nothing unless it succeeds).
    """

    def __init__(
        self,
        name: str,
        recorder: LockOrderRecorder,
        factory: Callable[[], object] = threading.Lock,
    ) -> None:
        self.name = name
        self.recorder = recorder
        self._lock = factory()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self.recorder.on_acquire(self.name)
        return acquired

    def release(self) -> None:
        self.recorder.on_release(self.name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return "TrackedLock(%r)" % (self.name,)


#: The process-wide recorder (None = tracking off, plain locks handed out).
_RECORDER: Optional[LockOrderRecorder] = None


def install_recorder(
    recorder: Optional[LockOrderRecorder] = None,
) -> LockOrderRecorder:
    """Install (and return) the process-wide recorder.

    Locks created by :func:`tracked_lock` *after* this call report to it;
    the test suite installs one before building any engine objects.
    """
    global _RECORDER
    if recorder is None:
        recorder = LockOrderRecorder()
    _RECORDER = recorder
    return recorder


def uninstall_recorder() -> None:
    global _RECORDER
    _RECORDER = None


def current_recorder() -> Optional[LockOrderRecorder]:
    return _RECORDER


def tracked_lock(
    name: str, factory: Callable[[], object] = threading.Lock
):
    """A lock that self-reports to the installed recorder (if any).

    This is the production seam: call it wherever a lock is created, and
    the object is a plain ``factory()`` lock unless a recorder is
    installed -- tracking costs nothing outside the test suite.
    """
    recorder = _RECORDER
    if recorder is None:
        return factory()
    return TrackedLock(name, recorder, factory)


__all__ = [
    "LockOrderRecorder",
    "LockOrderViolation",
    "TrackedLock",
    "current_recorder",
    "install_recorder",
    "tracked_lock",
    "uninstall_recorder",
]
