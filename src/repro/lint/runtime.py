"""Dynamic lock-order recording -- the runtime half of the lock-order rule.

The static pass in :mod:`repro.lint.checkers.lock_order` proves the
*source* acquires locks in one global order; this module checks the same
invariant on *executions*.  A :class:`LockOrderRecorder` keeps a
per-thread stack of held locks and, on every acquisition, records an edge
from each currently-held lock to the new one.  At teardown
:meth:`LockOrderRecorder.assert_acyclic` fails the test if any interleaved
pair of threads acquired two locks in opposite orders -- the ABBA pattern
that becomes a deadlock under less lucky scheduling.

Production code opts in through :func:`tracked_lock`::

    self._lock = tracked_lock("repro.governor.Governor._lock")

With no recorder installed (the default) that returns a plain
``threading.Lock`` -- zero overhead.  The test suite installs a global
recorder (see tests/conftest.py), so every governor and group-commit test
doubles as a lock-order check.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ReproError


class LockOrderViolation(ReproError):
    """Two locks were acquired in opposite orders by interleaved threads."""

    def __init__(self, cycle: List[str], edges: Dict[str, Set[str]]) -> None:
        self.cycle = list(cycle)
        self.edges = {k: set(v) for k, v in edges.items()}
        super().__init__(
            "lock-order cycle observed at runtime: %s"
            % " -> ".join(self.cycle + self.cycle[:1])
        )


class LockOrderRecorder:
    """Observed lock-acquisition edges across every thread."""

    def __init__(self) -> None:
        self._guard = threading.Lock()
        self._held = threading.local()
        #: edge -> (thread names observed taking it) for diagnostics.
        self._edges: Dict[Tuple[str, str], Set[str]] = {}
        self.acquisitions = 0

    # -- hooks called by TrackedLock ---------------------------------------

    def on_acquire(self, name: str) -> None:
        stack = self._stack()
        if name not in stack:
            thread = threading.current_thread().name
            with self._guard:
                self.acquisitions += 1
                for held in stack:
                    self._edges.setdefault((held, name), set()).add(thread)
        stack.append(name)

    def on_release(self, name: str) -> None:
        stack = self._stack()
        # Remove the innermost occurrence (reentrant locks release LIFO).
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                break

    def _stack(self) -> List[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    # -- analysis ----------------------------------------------------------

    def edges(self) -> Dict[str, Set[str]]:
        with self._guard:
            graph: Dict[str, Set[str]] = {}
            for (a, b) in self._edges:
                graph.setdefault(a, set()).add(b)
            return graph

    def find_cycle(self) -> Optional[List[str]]:
        graph = self.edges()
        colour: Dict[str, int] = {}
        path: List[str] = []

        def dfs(node: str) -> Optional[List[str]]:
            colour[node] = 1
            path.append(node)
            for nxt in sorted(graph.get(node, ())):
                state = colour.get(nxt, 0)
                if state == 1:
                    return path[path.index(nxt):]
                if state == 0:
                    cycle = dfs(nxt)
                    if cycle is not None:
                        return cycle
            path.pop()
            colour[node] = 2
            return None

        for node in sorted(graph):
            if colour.get(node, 0) == 0:
                cycle = dfs(node)
                if cycle is not None:
                    return cycle
        return None

    def assert_acyclic(self) -> None:
        """Raise :class:`LockOrderViolation` if any ABBA pair was seen."""
        cycle = self.find_cycle()
        if cycle is not None:
            raise LockOrderViolation(cycle, self.edges())

    def reset(self) -> None:
        with self._guard:
            self._edges.clear()
            self.acquisitions = 0


class TrackedLock:
    """A lock proxy that reports acquisitions to a recorder.

    Delegates ``acquire``/``release`` to a real lock, so it drops into
    ``threading.Condition`` unchanged (the condition probes ownership via
    non-blocking acquire, which records nothing unless it succeeds).
    """

    def __init__(
        self,
        name: str,
        recorder: LockOrderRecorder,
        factory: Callable[[], object] = threading.Lock,
    ) -> None:
        self.name = name
        self.recorder = recorder
        self._lock = factory()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self.recorder.on_acquire(self.name)
        return acquired

    def release(self) -> None:
        self.recorder.on_release(self.name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return "TrackedLock(%r)" % (self.name,)


#: The process-wide recorder (None = tracking off, plain locks handed out).
_RECORDER: Optional[LockOrderRecorder] = None


def install_recorder(
    recorder: Optional[LockOrderRecorder] = None,
) -> LockOrderRecorder:
    """Install (and return) the process-wide recorder.

    Locks created by :func:`tracked_lock` *after* this call report to it;
    the test suite installs one before building any engine objects.
    """
    global _RECORDER
    if recorder is None:
        recorder = LockOrderRecorder()
    _RECORDER = recorder
    return recorder


def uninstall_recorder() -> None:
    global _RECORDER
    _RECORDER = None


def current_recorder() -> Optional[LockOrderRecorder]:
    return _RECORDER


# -- session-wide edge accumulation (static-vs-runtime diff) ----------------
#
# Each test installs its own recorder (tests/conftest.py) so per-test
# acyclicity stays isolated; the *union* of every recorder's edges over a
# whole session is what the static analysis must cover.  The accumulator
# below survives recorder churn: fold a recorder in before uninstalling
# it, then diff the union against ``ProjectAnalysis.lock_edges()``.

_SESSION_GUARD = threading.Lock()
_SESSION_EDGES: Set[Tuple[str, str]] = set()


def record_session_edges(recorder: LockOrderRecorder) -> None:
    """Fold a recorder's observed edges into the process-wide union."""
    with recorder._guard:
        observed = set(recorder._edges)
    with _SESSION_GUARD:
        _SESSION_EDGES.update(observed)


def session_edges() -> Set[Tuple[str, str]]:
    with _SESSION_GUARD:
        return set(_SESSION_EDGES)


def reset_session_edges() -> None:
    with _SESSION_GUARD:
        _SESSION_EDGES.clear()


def canonical_lock_name(name: str) -> str:
    """``repro.governor.Governor._lock`` -> ``Governor._lock``.

    Tracked locks are named with their full module path; the static
    analysis identifies locks as ``Class.attr`` (:class:`LockRef.base`),
    so both sides canonicalise to the last two dotted segments.
    """
    parts = name.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else name


def runtime_edges_missing_statically(
    static_edges: Set[Tuple[str, str]],
    runtime_edges: Optional[Set[Tuple[str, str]]] = None,
) -> List[Tuple[str, str]]:
    """Runtime-observed edges the static lock graph does not predict.

    Only edges between production locks (``repro.``-prefixed names --
    tests construct artificial ``"A"``/``"B"`` locks) participate, and
    rwlock sides collapse with their base name on both sides.  A
    non-empty result fails the build: it means a thread acquired lock B
    while holding lock A on a path the interprocedural analysis cannot
    see, so the static half of the lock-order rule is incomplete.
    """
    if runtime_edges is None:
        runtime_edges = session_edges()
    missing = []
    for held, acquired in sorted(runtime_edges):
        if not (held.startswith("repro.") and acquired.startswith("repro.")):
            continue
        edge = (canonical_lock_name(held), canonical_lock_name(acquired))
        if edge[0] == edge[1]:
            continue  # rwlock internal mutex reentry folds onto itself
        if edge not in static_edges:
            missing.append(edge)
    return missing


def tracked_lock(
    name: str, factory: Callable[[], object] = threading.Lock
):
    """A lock that self-reports to the installed recorder (if any).

    This is the production seam: call it wherever a lock is created, and
    the object is a plain ``factory()`` lock unless a recorder is
    installed -- tracking costs nothing outside the test suite.
    """
    recorder = _RECORDER
    if recorder is None:
        return factory()
    return TrackedLock(name, recorder, factory)


__all__ = [
    "LockOrderRecorder",
    "LockOrderViolation",
    "TrackedLock",
    "canonical_lock_name",
    "current_recorder",
    "install_recorder",
    "record_session_edges",
    "reset_session_edges",
    "runtime_edges_missing_statically",
    "session_edges",
    "tracked_lock",
    "uninstall_recorder",
]
