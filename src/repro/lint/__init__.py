"""repro.lint -- the AST-based invariant linter and lock-order analysis.

Static half: ``python -m repro.lint`` walks ``src/repro`` and enforces the
disciplines the analytic model rests on (determinism, counter discipline,
error taxonomy, chaos-seam coverage, static lock order, public-API
consistency).  Dynamic half: :mod:`repro.lint.runtime` records actual
lock-acquisition order under the concurrency tests and asserts the same
graph stays acyclic.  Rule catalog and suppression syntax: docs/LINTING.md.
"""

from repro.lint.engine import (
    Checker,
    Finding,
    LintConfig,
    run_lint,
)
from repro.lint.runtime import (
    LockOrderRecorder,
    LockOrderViolation,
    TrackedLock,
    current_recorder,
    install_recorder,
    tracked_lock,
    uninstall_recorder,
)

__all__ = [
    "Checker",
    "Finding",
    "LintConfig",
    "LockOrderRecorder",
    "LockOrderViolation",
    "TrackedLock",
    "current_recorder",
    "install_recorder",
    "run_lint",
    "tracked_lock",
    "uninstall_recorder",
]
