"""The rule engine behind ``python -m repro.lint``.

The paper's headline numbers are analytic: they hold only while every
execution path charges exactly the primitive operations the model expects,
every concurrent component acquires locks in one global order, and every
durable mutation is reachable by the chaos sweeps.  Those disciplines are
invariants *of the source*, so this engine checks them at the source level:
it parses every module under ``src/repro`` once, hands the ASTs to a set of
domain-specific :class:`Checker` subclasses, and reports
:class:`Finding` objects with ``file:line``, a rule id, and a severity.

Suppressions are explicit and greppable::

    raise ValueError("...")  # repro-lint: disable=banned-raise
    # repro-lint: disable-file=public-api

A stand-alone suppression comment also covers the line directly below it,
so multi-line statements can carry one without fighting the formatter.

Severities: ``error`` findings fail the build; ``warning`` findings are
informational unless ``--strict``.  A *baseline* file (``--baseline``)
demotes known findings to warnings so a new rule can land warn-only and be
promoted once the tree is clean (see docs/LINTING.md).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

ERROR = "error"
WARNING = "warning"

#: ``# repro-lint: disable=rule-a,rule-b`` / ``disable-file=rule`` comments.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[\w\-*]+(?:\s*,\s*[\w\-*]+)*)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Location-independent identity used by baseline files (line
        numbers shift on unrelated edits; rule+path+message rarely do)."""
        return "%s::%s::%s" % (self.rule, Path(self.path).as_posix(), self.message)

    def format(self) -> str:
        return "%s:%d:%d: %s [%s] %s" % (
            self.path,
            self.line,
            self.col,
            self.severity,
            self.rule,
            self.message,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


@dataclass
class SourceModule:
    """One parsed source file plus its suppression table."""

    path: Path
    display_path: str
    module: str
    text: str
    tree: ast.Module
    #: line number -> rule ids suppressed on that line ("*" = all).
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule ids suppressed for the whole file ("*" = all).
    file_suppressions: Set[str] = field(default_factory=set)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if "*" in self.file_suppressions or rule in self.file_suppressions:
            return True
        rules = self.line_suppressions.get(line, ())
        return "*" in rules or rule in rules


class Checker:
    """Base class: subclasses visit one module, or the whole project."""

    #: Rule ids this checker can emit, with one-line descriptions.
    rules: Dict[str, str] = {}

    def check_module(
        self, module: SourceModule, config: "LintConfig"
    ) -> Iterable[Finding]:
        return ()

    def check_project(
        self, modules: Sequence[SourceModule], config: "LintConfig"
    ) -> Iterable[Finding]:
        return ()


@dataclass
class LintConfig:
    """Scope and policy knobs for the checkers.

    Scopes are module-name prefixes (``repro.join``), so fixture trees in
    tests can re-point them without touching the rules themselves.
    """

    #: Modules whose behaviour feeds the analytic model: wall clocks,
    #: unseeded randomness, and set-iteration order are all banned here.
    deterministic_prefixes: Tuple[str, ...] = (
        "repro.access",
        "repro.chaos",
        "repro.cost",
        "repro.join",
        "repro.operators",
        "repro.planner",
        "repro.recovery",
        "repro.sim",
        "repro.storage",
        "repro.workload",
    )
    #: Modules that charge OperationCounters (counter-discipline scope).
    counter_prefixes: Tuple[str, ...] = (
        "repro.access",
        "repro.join",
        "repro.operators",
    )
    #: Names that statically identify an OperationCounters receiver.
    counter_receivers: Tuple[str, ...] = ("counters", "ctrs")
    #: Cross-module charge helpers the per-module fixpoint cannot see,
    #: mapped to the counter names they charge (JoinAlgorithm.charge_heap_op
    #: lives in join/base.py but is called from every join module).
    charge_helpers: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: {
            "charge_heap_op": ("compare", "swap_tuples"),
            # Columnar kernel helpers (operators/columnar.py), called by
            # bare name from the packed-buffer batch arms.
            "charge_page_compares": ("compare",),
            "charge_page_moves": ("move_tuple",),
            "charge_page_hashes": ("hash_key",),
            "charge_page_group": ("hash_key", "compare"),
            "charge_page_fetch": ("compare", "move_tuple"),
        }
    )
    #: Classes whose I/O-performing methods must carry a chaos seam,
    #: mapped to the attribute names that count as the seam.
    seam_classes: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: {
            "LogDevice": ("fault_injector",),
            "StableMemory": ("on_append", "fault_injector"),
            "BufferPool": ("fault_injector",),
            "Checkpointer": ("fault_injector",),
            # The bank's group-commit flush must observe the crash flag
            # so chaos-severed stores stop writing mid-flush.
            "BankStore": ("_crashed",),
        }
    )
    #: Name segments that mark a method as I/O-performing.
    seam_verbs: Tuple[str, ...] = (
        "write",
        "append",
        "flush",
        "dispatch",
        "install",
        "access",
        "drain",
        "seal",
        "checkpoint",
    )
    #: Builtin exception families banned from direct ``raise``.
    banned_raises: Tuple[str, ...] = (
        "AssertionError",
        "BaseException",
        "Exception",
        "RuntimeError",
        "ValueError",
    )
    #: Module names exempt from the public-api __all__ requirement.
    no_all_ok: Tuple[str, ...] = ("__main__", "conftest")
    #: Modules whose objects are reachable from multiple thread entry
    #: points (server worker pool, group-commit flusher, join phase-2
    #: coordination) -- the scope of the interprocedural concurrency
    #: rules (blocking-under-lock, unlocked-shared-write,
    #: rwlock-discipline, resource-lifecycle).
    concurrency_prefixes: Tuple[str, ...] = (
        "repro.core",
        "repro.cost",
        "repro.governor",
        "repro.join",
        "repro.planner",
        "repro.server",
    )
    #: Constructors whose values are safe to mutate without a lock
    #: (per-thread structures: each thread touches only its own shard).
    threadsafe_factories: Tuple[str, ...] = (
        "ShardedOperationCounters",
        "local",
        "threading.local",
    )
    #: Resource-acquiring method calls (``h = gov.admit(...)``) mapped to
    #: the release-call names that must reach every exit path.
    resource_acquires: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: {
            "admit": ("release",),
        }
    )
    #: Resource-constructing calls (``w = SpillWriter(...)``) mapped to
    #: their close methods.
    resource_factories: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: {
            "SpillWriter": ("close",),
        }
    )
    #: State-transition calls that re-open a resource obligation on an
    #: existing handle (``gov.begin_wait(h)`` parks h's slot; every path
    #: must then reach ``end_wait(h)`` or ``release(h)``).
    resource_transitions: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: {
            "begin_wait": ("end_wait", "release"),
        }
    )
    #: Required chaos-seam inventory: module name -> callables that must
    #: be defined or referenced there, so the post-PR-5 fault points
    #: (re-split, bank park/unpark, server disconnect/crash) cannot be
    #: silently dropped.  Only enforced for modules present in the tree.
    seam_inventory: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: {
            "repro.chaos.injector": (
                "resplit_fault",
                "worker_fault",
                "executor_page",
            ),
            "repro.join.hybrid_hash": ("resplit_fault",),
            # Bank park/unpark chaos points fire through _chaos_point
            # labels in the session layer; close_session is the
            # disconnect seam the 220-seed interleaving sweep drives.
            "repro.server.session": ("_chaos_point", "close_session"),
            "repro.server.net": ("crash", "recover"),
            "repro.server.bank": ("crash", "recover", "await_grant"),
        }
    )


def _parse_suppressions(
    text: str,
) -> Tuple[Dict[int, Set[str]], Set[str]]:
    per_line: Dict[int, Set[str]] = {}
    whole_file: Set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
        if match.group("kind") == "disable-file":
            whole_file |= rules
        else:
            per_line.setdefault(lineno, set()).update(rules)
            if line[: match.start()].strip() == "":
                # Stand-alone comment: also covers the line below it.
                per_line.setdefault(lineno + 1, set()).update(rules)
    return per_line, whole_file


def _module_name(path: Path) -> str:
    """Dotted module name, anchored at the ``repro`` package when the
    file lives inside one (fixture trees fall back to the stem)."""
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def load_module(path: Path, root: Optional[Path] = None) -> SourceModule:
    """Parse one file into a :class:`SourceModule` (raises on bad syntax)."""
    text = path.read_text()
    tree = ast.parse(text, filename=str(path))
    per_line, whole_file = _parse_suppressions(text)
    try:
        display = str(path.relative_to(root)) if root else str(path)
    except ValueError:
        display = str(path)
    return SourceModule(
        path=path,
        display_path=display,
        module=_module_name(path),
        text=text,
        tree=tree,
        line_suppressions=per_line,
        file_suppressions=whole_file,
    )


def default_root() -> Path:
    """The installed ``repro`` package directory (the default lint target)."""
    import repro

    return Path(repro.__file__).resolve().parent


def collect_modules(
    paths: Optional[Sequence[Path]] = None,
    jobs: int = 1,
) -> Tuple[List[SourceModule], List[Finding]]:
    """Load every ``.py`` under ``paths`` (default: the repro package).

    Returns the parsed modules plus parse-failure findings (a file the
    engine cannot parse is itself an error, not a crash).  ``jobs > 1``
    reads and parses files on a thread pool (``--jobs N``); results come
    back in the same deterministic file order either way.
    """
    if not paths:
        paths = [default_root()]
    root = Path.cwd()
    files: List[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)

    def load_one(path: Path):
        try:
            return load_module(path, root=root)
        except SyntaxError as exc:
            return Finding(
                rule="parse",
                severity=ERROR,
                path=str(path),
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message="syntax error: %s" % (exc.msg,),
            )

    if jobs > 1 and len(files) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(load_one, files))
    else:
        results = [load_one(path) for path in files]
    modules: List[SourceModule] = []
    failures: List[Finding] = []
    for result in results:
        if isinstance(result, Finding):
            failures.append(result)
        else:
            modules.append(result)
    return modules, failures


def all_checkers() -> List[Checker]:
    from repro.lint.checkers import ALL_CHECKERS

    return [cls() for cls in ALL_CHECKERS]


def run_lint(
    paths: Optional[Sequence[Path]] = None,
    config: Optional[LintConfig] = None,
    rules: Optional[Set[str]] = None,
    checkers: Optional[Sequence[Checker]] = None,
    jobs: int = 1,
) -> List[Finding]:
    """Run every checker over ``paths``; return unsuppressed findings."""
    config = config or LintConfig()
    modules, findings = collect_modules(paths, jobs=jobs)
    module_by_path = {m.display_path: m for m in modules}
    for checker in checkers if checkers is not None else all_checkers():
        emitted: List[Finding] = []
        for module in modules:
            emitted.extend(checker.check_module(module, config))
        emitted.extend(checker.check_project(modules, config))
        for finding in emitted:
            if rules is not None and finding.rule not in rules:
                continue
            module = module_by_path.get(finding.path)
            if module is not None and module.is_suppressed(
                finding.rule, finding.line
            ):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


# -- baseline --------------------------------------------------------------


def load_baseline(path: Path) -> Set[str]:
    data = json.loads(Path(path).read_text())
    return set(data.get("fingerprints", ()))


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    fingerprints = sorted(
        {f.fingerprint for f in findings if f.severity == ERROR}
    )
    Path(path).write_text(
        json.dumps({"version": 1, "fingerprints": fingerprints}, indent=2)
        + "\n"
    )


def apply_baseline(
    findings: Sequence[Finding], baseline: Set[str]
) -> List[Finding]:
    """Demote baselined error findings to warnings (land rules warn-only)."""
    demoted: List[Finding] = []
    for f in findings:
        if f.severity == ERROR and f.fingerprint in baseline:
            demoted.append(
                Finding(
                    rule=f.rule,
                    severity=WARNING,
                    path=f.path,
                    line=f.line,
                    col=f.col,
                    message=f.message + " (baselined)",
                )
            )
        else:
            demoted.append(f)
    return demoted


# -- output ----------------------------------------------------------------


def format_text(findings: Sequence[Finding]) -> str:
    lines = [f.format() for f in findings]
    errors = sum(1 for f in findings if f.severity == ERROR)
    warnings = len(findings) - errors
    lines.append(
        "repro.lint: %d error(s), %d warning(s)" % (errors, warnings)
    )
    return "\n".join(lines)


#: Version of the JSON report layout (CI artifacts key on this; the
#: legacy top-level ``version`` field is kept for older consumers).
SCHEMA_VERSION = 2


def format_json(findings: Sequence[Finding]) -> str:
    return json.dumps(
        {
            "version": 1,
            "schema_version": SCHEMA_VERSION,
            "counts": {
                "errors": sum(1 for f in findings if f.severity == ERROR),
                "warnings": sum(
                    1 for f in findings if f.severity == WARNING
                ),
            },
            "findings": [f.as_dict() for f in findings],
        },
        indent=2,
    )


__all__ = [
    "ERROR",
    "SCHEMA_VERSION",
    "WARNING",
    "Checker",
    "Finding",
    "LintConfig",
    "SourceModule",
    "all_checkers",
    "apply_baseline",
    "collect_modules",
    "default_root",
    "format_json",
    "format_text",
    "load_baseline",
    "load_module",
    "run_lint",
    "write_baseline",
]
