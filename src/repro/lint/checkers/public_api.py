"""Public-API checker: ``__all__`` must match what a module exports.

A name listed in ``__all__`` but never defined breaks ``import *`` at a
distance; a public class or function missing from ``__all__`` drifts out
of the documented surface.  Modules that define public names must declare
``__all__`` (scripts like ``__main__`` are exempt).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.lint.engine import (
    Checker,
    Finding,
    LintConfig,
    SourceModule,
    WARNING,
)
from repro.lint.checkers.common import finding

RULE = "public-api"


class PublicApiChecker(Checker):
    rules = {
        RULE: (
            "__all__ must list exactly the public names a module defines"
        )
    }

    def check_module(
        self, module: SourceModule, config: LintConfig
    ) -> Iterable[Finding]:
        stem = module.path.stem
        if stem in config.no_all_ok:
            return
        all_node, all_names = _find_all(module.tree)
        defined = _top_level_names(module.tree)
        public_defs = _public_definitions(module.tree)
        if all_node is None:
            if public_defs:
                yield finding(
                    module,
                    RULE,
                    public_defs[0],
                    "module defines public names (%s, ...) but no "
                    "__all__" % public_defs[0].name,
                    severity=WARNING,
                )
            return
        for name in all_names:
            if name not in defined:
                yield finding(
                    module,
                    RULE,
                    all_node,
                    "__all__ lists %r which the module never defines"
                    % name,
                )
        listed = set(all_names)
        for node in public_defs:
            if node.name not in listed:
                yield finding(
                    module,
                    RULE,
                    node,
                    "public %s %r is not in __all__ (export it or make "
                    "it private)"
                    % (
                        "class"
                        if isinstance(node, ast.ClassDef)
                        else "function",
                        node.name,
                    ),
                )


def _find_all(
    tree: ast.Module,
) -> tuple:
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                names: List[str] = []
                if isinstance(value, (ast.List, ast.Tuple)):
                    for elt in value.elts:
                        if isinstance(elt, ast.Constant) and isinstance(
                            elt.value, str
                        ):
                            names.append(elt.value)
                return node, names
    return None, []


def _top_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
        elif isinstance(node, ast.ClassDef):
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional definitions (version guards, import fallbacks).
            for sub in ast.walk(node):
                if isinstance(
                    sub, (ast.FunctionDef, ast.ClassDef)
                ):
                    names.add(sub.name)
                elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        names.add(
                            alias.asname or alias.name.split(".")[0]
                        )
    return names


def _public_definitions(tree: ast.Module) -> List[ast.stmt]:
    defs: List[ast.stmt] = []
    for node in tree.body:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) and not node.name.startswith("_"):
            defs.append(node)
    return defs


__all__ = ["PublicApiChecker", "RULE"]
