"""Counter-discipline checker: primitive-operation charging is the model.

Tables 1-3 and the Section 5 throughput ladder are computed from
:class:`~repro.cost.counters.OperationCounters` tallies, so operators and
joins may only charge counters through the approved increment API (a typo
like ``counters.compares()`` would silently charge nothing, and a direct
field write bypasses the single audited accounting surface).  The batch
executor's contract is stronger still: a tuple path and its batch variant
must charge the *same counter names* -- byte-identical totals are asserted
dynamically by tests/test_batch_equivalence.py, and this checker enforces
the static half (same charge surface) on every commit.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.engine import Checker, Finding, LintConfig, SourceModule
from repro.lint.checkers.common import finding, in_scope, iter_functions

RULE_API = "counter-api"
RULE_PARITY = "counter-parity"

#: The charge surface: methods that increment a primitive-operation tally.
CHARGE_METHODS = (
    "compare",
    "hash_key",
    "move_tuple",
    "swap_tuples",
    "io_sequential",
    "io_random",
)
#: Non-charging methods that are still legitimate on a counter object.
_APPROVED = set(CHARGE_METHODS) | {
    "absorb",
    "as_dict",
    "cost",
    "cpu_cost",
    "io_cost",
    "report",
    "reset",
    "snapshot",
}
#: The raw tally fields (writes outside repro.cost are banned).
_FIELDS = {
    "comparisons",
    "hashes",
    "moves",
    "swaps",
    "sequential_ios",
    "random_ios",
}


def _counter_receiver(node: ast.AST, receivers: Tuple[str, ...]) -> bool:
    """Whether an expression statically looks like an OperationCounters
    instance: a bare ``counters`` name or any ``<x>.counters`` attribute."""
    if isinstance(node, ast.Name):
        return node.id in receivers
    if isinstance(node, ast.Attribute):
        return node.attr in receivers
    return False


class CounterDisciplineChecker(Checker):
    rules = {
        RULE_API: (
            "OperationCounters must be charged via the approved "
            "increment API, never by direct field writes or unknown "
            "methods"
        ),
        RULE_PARITY: (
            "a tuple path and its batch variant must charge the same "
            "counter names"
        ),
    }

    def check_module(
        self, module: SourceModule, config: LintConfig
    ) -> Iterable[Finding]:
        if not in_scope(module, config.counter_prefixes):
            return
        receivers = config.counter_receivers
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in _FIELDS
                        and _counter_receiver(target.value, receivers)
                    ):
                        yield finding(
                            module,
                            RULE_API,
                            node,
                            "direct write to counter field %r; use the "
                            "increment API (%s)"
                            % (target.attr, ", ".join(CHARGE_METHODS)),
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and _counter_receiver(func.value, receivers)
                    and func.attr not in _APPROVED
                ):
                    yield finding(
                        module,
                        RULE_API,
                        node,
                        "unknown counter method %r (typo charges "
                        "nothing); approved: %s"
                        % (func.attr, ", ".join(sorted(_APPROVED))),
                    )
        yield from self._check_parity(
            module, receivers, config.charge_helpers
        )

    # -- tuple/batch charge parity -----------------------------------------

    def _check_parity(
        self,
        module: SourceModule,
        receivers: Tuple[str, ...],
        helpers: Dict[str, Tuple[str, ...]],
    ) -> Iterable[Finding]:
        charge_map = _expanded_charge_map(module.tree, receivers, helpers)
        for cls, func in iter_functions(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            cls_name = cls.name if cls is not None else None
            # In-function split: ``if batch: ... else: ...`` (or the
            # early-return form where the tuple path follows the If).
            for body_node, branch in _batch_branches(func):
                batch_charges = _charges(
                    branch.batch_arm, receivers, charge_map, cls_name, helpers
                )
                tuple_charges = _charges(
                    branch.tuple_arm, receivers, charge_map, cls_name, helpers
                )
                if (
                    batch_charges
                    and tuple_charges
                    and batch_charges != tuple_charges
                ):
                    yield finding(
                        module,
                        RULE_PARITY,
                        body_node,
                        "batch arm charges {%s} but tuple arm charges "
                        "{%s} in %s()"
                        % (
                            ", ".join(sorted(batch_charges)),
                            ", ".join(sorted(tuple_charges)),
                            func.name,
                        ),
                    )
        # Cross-method split: ``X`` vs ``X_batch`` siblings in one class.
        for cls, methods in _methods_by_class(module.tree):
            for name, func in methods.items():
                if not name.endswith("_batch"):
                    continue
                twin = methods.get(name[: -len("_batch")])
                if twin is None:
                    continue
                cls_name = cls.name if cls is not None else None
                batch_charges = _charges(
                    func.body, receivers, charge_map, cls_name, helpers
                )
                tuple_charges = _charges(
                    twin.body, receivers, charge_map, cls_name, helpers
                )
                if (
                    batch_charges
                    and tuple_charges
                    and batch_charges != tuple_charges
                ):
                    yield finding(
                        module,
                        RULE_PARITY,
                        func,
                        "%s() charges {%s} but its tuple twin %s() "
                        "charges {%s}"
                        % (
                            name,
                            ", ".join(sorted(batch_charges)),
                            twin.name,
                            ", ".join(sorted(tuple_charges)),
                        ),
                    )


class _Branch:
    def __init__(self, batch_arm: List[ast.stmt], tuple_arm: List[ast.stmt]):
        self.batch_arm = batch_arm
        self.tuple_arm = tuple_arm


def _batch_branches(
    func: ast.AST,
) -> Iterable[Tuple[ast.If, _Branch]]:
    """Yield ``if <batch>:`` splits with their batch and tuple arms.

    Handles both the explicit ``else`` form and the early-return form
    (``if self.batch: return self._x_batch(...)`` followed by the tuple
    path as the remaining statements of the enclosing block).
    """
    for parent in ast.walk(func):
        body = getattr(parent, "body", None)
        if not isinstance(body, list):
            continue
        for idx, stmt in enumerate(body):
            if not isinstance(stmt, ast.If):
                continue
            test, negated = _batch_test(stmt.test)
            if not test:
                continue
            batch_arm: List[ast.stmt]
            tuple_arm: List[ast.stmt]
            if negated:
                batch_arm, tuple_arm = list(stmt.orelse), list(stmt.body)
            else:
                batch_arm, tuple_arm = list(stmt.body), list(stmt.orelse)
            if not tuple_arm and _exits(batch_arm):
                tuple_arm = body[idx + 1:]
            yield stmt, _Branch(batch_arm, tuple_arm)


def _batch_test(test: ast.AST) -> Tuple[bool, bool]:
    """``(is_batch_test, negated)`` for an If condition."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        inner, _ = _batch_test(test.operand)
        return inner, True
    if isinstance(test, ast.Name):
        return test.id == "batch", False
    if isinstance(test, ast.Attribute):
        return test.attr == "batch", False
    return False, False


def _exits(stmts: List[ast.stmt]) -> bool:
    return bool(stmts) and isinstance(stmts[-1], (ast.Return, ast.Raise))


_ChargeMap = Dict[Tuple[Optional[str], str], Set[str]]


def _direct_charges(
    stmts: Iterable[ast.stmt],
    receivers: Tuple[str, ...],
    helpers: Dict[str, Tuple[str, ...]],
) -> Set[str]:
    names: Set[str] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in CHARGE_METHODS
                    and _counter_receiver(func.value, receivers)
                ):
                    names.add(func.attr)
                elif isinstance(func, ast.Attribute) and func.attr in helpers:
                    # Cross-module charge helper (e.g. the JoinAlgorithm
                    # base class's charge_heap_op): its charge set is
                    # declared in LintConfig because the per-module
                    # fixpoint cannot see into other files.
                    names.update(helpers[func.attr])
                elif isinstance(func, ast.Name) and func.id in helpers:
                    names.update(helpers[func.id])
    return names


def _local_callees(
    stmts: Iterable[ast.stmt],
) -> Set[Tuple[str, str]]:
    """Calls resolvable within the module: ``("self", m)`` for self-method
    calls, ``("module", f)`` for bare-name calls."""
    callees: Set[Tuple[str, str]] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                callees.add(("self", func.attr))
            elif isinstance(func, ast.Name):
                callees.add(("module", func.id))
    return callees


def _expanded_charge_map(
    tree: ast.Module,
    receivers: Tuple[str, ...],
    helpers: Dict[str, Tuple[str, ...]],
) -> _ChargeMap:
    """Per-function charge sets with helper calls resolved to fixpoint,
    so ``insert`` charging its hash inside ``self._bucket_for`` compares
    equal to ``insert_batch`` charging the hash inline."""
    funcs: Dict[Tuple[Optional[str], str], ast.AST] = {}
    for cls, func in iter_functions(tree):
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            key = (cls.name if cls is not None else None, func.name)
            funcs.setdefault(key, func)
    charges: _ChargeMap = {
        key: _direct_charges(func.body, receivers, helpers)
        for key, func in funcs.items()
    }
    callees = {
        key: _local_callees(func.body) for key, func in funcs.items()
    }
    changed = True
    while changed:
        changed = False
        for key in funcs:
            cls_name = key[0]
            for kind, name in callees[key]:
                target = (
                    (cls_name, name) if kind == "self" else (None, name)
                )
                extra = charges.get(target, set()) - charges[key]
                if extra:
                    charges[key] |= extra
                    changed = True
    return charges


def _charges(
    stmts: Iterable[ast.stmt],
    receivers: Tuple[str, ...],
    charge_map: _ChargeMap,
    cls_name: Optional[str],
    helpers: Dict[str, Tuple[str, ...]],
) -> Set[str]:
    names = _direct_charges(stmts, receivers, helpers)
    for kind, callee in _local_callees(stmts):
        target = (cls_name, callee) if kind == "self" else (None, callee)
        names |= charge_map.get(target, set())
    return names


def _methods_by_class(
    tree: ast.Module,
) -> Iterable[Tuple[Optional[ast.ClassDef], Dict[str, ast.FunctionDef]]]:
    groups: Dict[Optional[str], Tuple[Optional[ast.ClassDef], Dict]] = {}
    for cls, func in iter_functions(tree):
        if isinstance(func, ast.FunctionDef):
            key = cls.name if cls is not None else None
            groups.setdefault(key, (cls, {}))[1].setdefault(func.name, func)
    for cls, methods in groups.values():
        yield cls, methods


__all__ = [
    "CHARGE_METHODS",
    "CounterDisciplineChecker",
    "RULE_API",
    "RULE_PARITY",
]
