"""The domain-specific checkers behind ``python -m repro.lint``.

Each checker encodes one discipline the analytic reproduction depends on;
docs/LINTING.md is the rule catalog.  To add a checker: subclass
:class:`repro.lint.engine.Checker`, declare its ``rules`` dict, implement
``check_module`` (per-file) and/or ``check_project`` (cross-file), and
append the class to :data:`ALL_CHECKERS`.
"""

from __future__ import annotations

from repro.lint.checkers.blocking_lock import BlockingUnderLockChecker
from repro.lint.checkers.chaos_seams import ChaosSeamChecker
from repro.lint.checkers.counter_discipline import CounterDisciplineChecker
from repro.lint.checkers.determinism import DeterminismChecker
from repro.lint.checkers.error_taxonomy import ErrorTaxonomyChecker
from repro.lint.checkers.lock_order import LockOrderChecker
from repro.lint.checkers.public_api import PublicApiChecker
from repro.lint.checkers.resource_lifecycle import ResourceLifecycleChecker
from repro.lint.checkers.rwlock_discipline import RwlockDisciplineChecker
from repro.lint.checkers.shared_write import UnlockedSharedWriteChecker

#: Registration order is also report order for --list-rules.
ALL_CHECKERS = [
    DeterminismChecker,
    CounterDisciplineChecker,
    ErrorTaxonomyChecker,
    ChaosSeamChecker,
    LockOrderChecker,
    PublicApiChecker,
    BlockingUnderLockChecker,
    UnlockedSharedWriteChecker,
    RwlockDisciplineChecker,
    ResourceLifecycleChecker,
]

__all__ = [
    "ALL_CHECKERS",
    "BlockingUnderLockChecker",
    "ChaosSeamChecker",
    "CounterDisciplineChecker",
    "DeterminismChecker",
    "ErrorTaxonomyChecker",
    "LockOrderChecker",
    "PublicApiChecker",
    "ResourceLifecycleChecker",
    "RwlockDisciplineChecker",
    "UnlockedSharedWriteChecker",
]
