"""Static lock-order checker: the acquisition graph must be acyclic.

Deadlock needs a cycle in the lock-acquisition order.  This pass extracts
that order statically: every ``self.<attr> = threading.Lock()`` (or
``RLock``/``Condition``/``tracked_lock``) defines a lock node; every
``with self.<attr>:`` (or explicit ``.acquire()``) is an acquisition; and
a call made while holding lock A to a method that (transitively) acquires
lock B adds the edge A -> B.  ``threading.Condition(self._lock)`` aliases
the wrapped lock, so waiting on the condition is not a second node.

Call resolution is conservative: an unqualified ``obj.method(...)`` call
matches every known class that defines ``method`` and whose methods can
acquire a lock.  That over-approximates -- which is the right direction
for a deadlock checker: a cycle report names a *potential* order
inversion worth either fixing or suppressing with a comment that argues
why the paths cannot interleave.

The same graph is checked dynamically by
:class:`repro.lint.runtime.LockOrderRecorder` under the concurrency
tests; see docs/LINTING.md and docs/ROBUSTNESS.md.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import (
    Checker,
    Finding,
    LintConfig,
    SourceModule,
)
from repro.lint.checkers.common import dotted_name, finding

RULE = "lock-order"

_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "Lock",
    "RLock",
    "tracked_lock",
}
_CONDITION_FACTORIES = {"threading.Condition", "Condition"}


@dataclass
class _ClassLocks:
    """Lock bookkeeping for one class."""

    module: SourceModule
    node: ast.ClassDef
    #: attr -> canonical attr (Condition(self._x) aliases _x).
    locks: Dict[str, str] = field(default_factory=dict)
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)

    def lock_id(self, attr: str) -> str:
        return "%s.%s.%s" % (
            self.module.module,
            self.node.name,
            self.locks[attr],
        )


class LockOrderChecker(Checker):
    rules = {
        RULE: (
            "the static lock-acquisition graph must be acyclic "
            "(a cycle is a potential deadlock)"
        )
    }

    def check_project(
        self, modules: Sequence[SourceModule], config: LintConfig
    ) -> Iterable[Finding]:
        classes = _collect_classes(modules)
        if not classes:
            return
        graph, sites = build_lock_graph(classes)
        cycle = _find_cycle(graph)
        if cycle is None:
            return
        edges = [
            (cycle[i], cycle[(i + 1) % len(cycle)])
            for i in range(len(cycle))
        ]
        locations = []
        for a, b in edges:
            module, node = sites.get((a, b), (None, None))
            if module is not None:
                locations.append(
                    "%s -> %s at %s:%d"
                    % (a, b, module.display_path, node.lineno)
                )
        module, node = next(
            (sites[e] for e in edges if e in sites),
            (classes[0].module, classes[0].node),
        )
        yield finding(
            module,
            RULE,
            node,
            "lock-acquisition cycle (potential deadlock): %s"
            % ("; ".join(locations) or " -> ".join(cycle + cycle[:1])),
        )


def _collect_classes(
    modules: Sequence[SourceModule],
) -> List[_ClassLocks]:
    classes: List[_ClassLocks] = []
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = _ClassLocks(module=module, node=node)
            info.methods = {
                n.name: n
                for n in node.body
                if isinstance(n, ast.FunctionDef)
            }
            for func in info.methods.values():
                _collect_locks(func, info)
            if info.locks:
                classes.append(info)
    return classes


def _collect_locks(func: ast.FunctionDef, info: _ClassLocks) -> None:
    for stmt in ast.walk(func):
        if not isinstance(stmt, ast.Assign):
            continue
        if not isinstance(stmt.value, ast.Call):
            continue
        callee = dotted_name(stmt.value.func) or ""
        for target in stmt.targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            if callee in _LOCK_FACTORIES:
                info.locks[target.attr] = target.attr
            elif callee in _CONDITION_FACTORIES:
                # Condition(self._x) aliases _x; bare Condition() is its
                # own lock node.
                args = stmt.value.args
                if (
                    args
                    and isinstance(args[0], ast.Attribute)
                    and isinstance(args[0].value, ast.Name)
                    and args[0].value.id == "self"
                    and args[0].attr in info.locks
                ):
                    info.locks[target.attr] = info.locks[args[0].attr]
                else:
                    info.locks[target.attr] = target.attr


def build_lock_graph(
    classes: Sequence[_ClassLocks],
) -> Tuple[
    Dict[str, Set[str]],
    Dict[Tuple[str, str], Tuple[SourceModule, ast.AST]],
]:
    """``(edges, edge_sites)`` for the project's lock-acquisition order."""
    # methods that may acquire locks, resolvable by bare name.
    method_owner: Dict[str, List[_ClassLocks]] = {}
    for info in classes:
        for name in info.methods:
            method_owner.setdefault(name, []).append(info)

    # Transitive "locks this method may acquire" sets, to fixpoint.
    acquires: Dict[Tuple[int, str], Set[str]] = {}
    for ci, info in enumerate(classes):
        for name, func in info.methods.items():
            acquires[(ci, name)] = {
                info.lock_id(attr)
                for attr in _direct_acquisitions(func, info)
            }
    changed = True
    while changed:
        changed = False
        for ci, info in enumerate(classes):
            for name, func in info.methods.items():
                current = acquires[(ci, name)]
                for callee in _called_names(func):
                    for other_ci, other in enumerate(classes):
                        if callee in other.methods:
                            extra = acquires[(other_ci, callee)] - current
                            if extra:
                                current |= extra
                                changed = True

    edges: Dict[str, Set[str]] = {}
    sites: Dict[Tuple[str, str], Tuple[SourceModule, ast.AST]] = {}

    def add_edge(a: str, b: str, module: SourceModule, node: ast.AST) -> None:
        if a == b:
            return
        edges.setdefault(a, set()).add(b)
        sites.setdefault((a, b), (module, node))

    for ci, info in enumerate(classes):
        for func in info.methods.values():
            for held, body in _with_blocks(func, info):
                held_id = info.lock_id(held)
                for stmt in body:
                    for node in ast.walk(stmt):
                        if isinstance(node, ast.With):
                            for item in node.items:
                                attr = _self_lock_attr(
                                    item.context_expr, info
                                )
                                if attr is not None:
                                    add_edge(
                                        held_id,
                                        info.lock_id(attr),
                                        info.module,
                                        node,
                                    )
                        elif isinstance(node, ast.Call):
                            callee = _call_method_name(node)
                            if callee is None:
                                continue
                            for other_ci, other in enumerate(classes):
                                if callee in other.methods:
                                    for lock in acquires[
                                        (other_ci, callee)
                                    ]:
                                        add_edge(
                                            held_id,
                                            lock,
                                            info.module,
                                            node,
                                        )
    return edges, sites


def _direct_acquisitions(
    func: ast.FunctionDef, info: _ClassLocks
) -> Set[str]:
    found: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.With):
            for item in node.items:
                attr = _self_lock_attr(item.context_expr, info)
                if attr is not None:
                    found.add(attr)
        elif isinstance(node, ast.Call):
            f = node.func
            if (
                isinstance(f, ast.Attribute)
                and f.attr == "acquire"
                and isinstance(f.value, ast.Attribute)
            ):
                attr = _self_lock_attr(f.value, info)
                if attr is not None:
                    found.add(attr)
    return found


def _self_lock_attr(
    node: ast.AST, info: _ClassLocks
) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in info.locks
    ):
        return node.attr
    return None


def _with_blocks(
    func: ast.FunctionDef, info: _ClassLocks
) -> Iterable[Tuple[str, List[ast.stmt]]]:
    for node in ast.walk(func):
        if isinstance(node, ast.With):
            for item in node.items:
                attr = _self_lock_attr(item.context_expr, info)
                if attr is not None:
                    yield attr, node.body


def _called_names(func: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = _call_method_name(node)
            if name is not None:
                names.add(name)
    return names


def _call_method_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _find_cycle(graph: Dict[str, Set[str]]) -> Optional[List[str]]:
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[str, int] = {}
    path: List[str] = []

    def dfs(node: str) -> Optional[List[str]]:
        color[node] = GREY
        path.append(node)
        for nxt in sorted(graph.get(node, ())):
            state = color.get(nxt, WHITE)
            if state == GREY:
                return path[path.index(nxt):]
            if state == WHITE:
                cycle = dfs(nxt)
                if cycle is not None:
                    return cycle
        path.pop()
        color[node] = BLACK
        return None

    for node in sorted(graph):
        if color.get(node, WHITE) == WHITE:
            cycle = dfs(node)
            if cycle is not None:
                return cycle
    return None


def lock_graph_report(
    modules: Sequence[SourceModule],
) -> Dict[str, List[str]]:
    """The extracted acquisition graph as ``{lock: [locks acquired while
    held]}`` -- surfaced by ``python -m repro.lint --lock-graph``."""
    classes = _collect_classes(modules)
    nodes: Set[str] = set()
    for info in classes:
        nodes.update(info.lock_id(attr) for attr in info.locks)
    edges, _ = build_lock_graph(classes)
    report = {node: sorted(edges.get(node, ())) for node in sorted(nodes)}
    return report


__all__ = ["LockOrderChecker", "RULE", "build_lock_graph", "lock_graph_report"]
