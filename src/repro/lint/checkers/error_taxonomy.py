"""Error-taxonomy checker: every intentional raise is a typed error.

The taxonomy in :mod:`repro.errors` exists so callers can catch "something
this database detected and refused" with one except clause.  Ad-hoc
``raise ValueError`` / ``raise RuntimeError`` punch holes in that contract,
and a bare ``except:`` swallows :class:`KeyboardInterrupt` along with the
injected :class:`~repro.chaos.CrashSignal` the chaos harness depends on.
Protocol-level builtins (``KeyError`` from mappings, ``IndexError`` from
sequences, ``TypeError``/``NotImplementedError`` from dunder contracts)
stay legal -- Python semantics require them.

Exception classes *defined* in the tree must also join the taxonomy: a
class whose bases are only builtin exceptions is invisible to
``except ReproError``.  Deliberate escapes (the chaos CrashSignal, which
must *not* be catchable as a ReproError) carry a suppression comment.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from repro.lint.engine import Checker, Finding, LintConfig, SourceModule
from repro.lint.checkers.common import finding

RULE_RAISE = "banned-raise"
RULE_EXCEPT = "bare-except"
RULE_BASE = "exception-base"

#: Builtin bases that do NOT make an exception class taxonomy-compliant.
_BUILTIN_EXC = {
    "ArithmeticError",
    "AssertionError",
    "BaseException",
    "Exception",
    "IndexError",
    "KeyError",
    "LookupError",
    "OSError",
    "RuntimeError",
    "StopIteration",
    "TypeError",
    "ValueError",
}


class ErrorTaxonomyChecker(Checker):
    rules = {
        RULE_RAISE: (
            "no ad-hoc raise of ValueError/RuntimeError/Exception; use "
            "the repro.errors taxonomy"
        ),
        RULE_EXCEPT: "no bare except: (swallows CrashSignal and ^C)",
        RULE_BASE: (
            "exception classes defined here must derive from a "
            "repro.errors taxonomy class"
        ),
    }

    def check_module(
        self, module: SourceModule, config: LintConfig
    ) -> Iterable[Finding]:
        local_taxonomy = _local_taxonomy_classes(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Raise):
                name = _raised_name(node)
                if name in config.banned_raises:
                    yield finding(
                        module,
                        RULE_RAISE,
                        node,
                        "raise %s: use a repro.errors taxonomy class "
                        "(ConfigurationError, PlannerError, StateError, "
                        "...)" % name,
                    )
            elif isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    yield finding(
                        module,
                        RULE_EXCEPT,
                        node,
                        "bare except: catches CrashSignal and "
                        "KeyboardInterrupt; name the exception family",
                    )
            elif isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node, local_taxonomy)

    def _check_class(
        self,
        module: SourceModule,
        node: ast.ClassDef,
        local_taxonomy: Set[str],
    ) -> Iterable[Finding]:
        base_names = [
            b for b in (_base_name(base) for base in node.bases) if b
        ]
        if not base_names:
            return
        is_exception = any(
            b in _BUILTIN_EXC or b.endswith("Error") or b.endswith("Signal")
            or b.endswith("Violation")
            for b in base_names
        )
        if not is_exception:
            return
        compliant = any(
            b not in _BUILTIN_EXC for b in base_names
        ) or node.name in local_taxonomy
        if not compliant:
            yield finding(
                module,
                RULE_BASE,
                node,
                "exception %s derives only from builtins (%s); add a "
                "repro.errors base so 'except ReproError' sees it"
                % (node.name, ", ".join(base_names)),
            )


def _raised_name(node: ast.Raise) -> str:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return ""


def _base_name(node: ast.AST) -> str:
    while isinstance(node, ast.Attribute):
        node = node  # keep the final attribute name
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _local_taxonomy_classes(tree: ast.Module) -> Set[str]:
    """Classes in repro/errors.py itself: ReproError's direct family is
    allowed to subclass builtins (that is the compatibility bridge)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            bases = {_base_name(b) for b in node.bases}
            if "ReproError" in bases or node.name == "ReproError":
                names.add(node.name)
    return names


__all__ = [
    "ErrorTaxonomyChecker",
    "RULE_BASE",
    "RULE_EXCEPT",
    "RULE_RAISE",
]
