"""Interprocedural blocking-under-lock checker.

Holding a hot lock across a blocking operation turns that lock into a
convoy: every thread that needs it queues behind a sleeper.  The §5
concurrency argument (lock waits are cheap because critical sections
are short) only holds if nothing blocks inside one.  This rule walks
the project call graph with the held-lock context from
:mod:`repro.lint.ipa` and flags every path that reaches a blocking
operation -- ``time.sleep``, socket I/O, condition waits, thread joins,
governor admission/grant waits (transitively, through their condition
waits), and chaos-seam calls -- while any lock is held.

Two refinements keep the rule honest rather than noisy:

* ``Condition(lock).wait()`` *releases* the wrapped lock while blocked,
  so holding only that lock at the wait is the intended pattern
  (``Governor.admit`` waiting on ``_capacity`` under ``_lock``); the
  blocker carries the exempted lock and the context is reduced by it.
* Holding only the **read side** of a ReadWriteLock demotes the finding
  to a warning: readers share, so a blocked reader delays writers but
  never other readers -- the catalog read lock around
  ``MainMemoryDatabase.execute`` admitting into the governor is a
  deliberate design decision (docs/ROBUSTNESS.md), not a convoy.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.lint.engine import (
    ERROR,
    WARNING,
    Checker,
    Finding,
    LintConfig,
    SourceModule,
)
from repro.lint.checkers.common import finding, in_scope
from repro.lint.ipa import Blocker, LockRef, analyze_project

RULE = "blocking-under-lock"


class BlockingUnderLockChecker(Checker):
    rules = {
        RULE: (
            "no blocking operation (sleep, socket I/O, condition wait, "
            "admission wait, chaos seam) may be reachable while a lock "
            "is held; read-side-only contexts warn"
        )
    }

    def check_project(
        self, modules: Sequence[SourceModule], config: LintConfig
    ) -> Iterable[Finding]:
        analysis = analyze_project(modules)
        for qual in sorted(analysis.summaries):
            summary = analysis.summaries[qual]
            module = summary.info.module
            if not in_scope(module, config.concurrency_prefixes):
                continue
            entry = analysis.must_entry.get(qual, frozenset())
            direct_nodes = set()
            for node, blocker, held in summary.direct_blockers:
                direct_nodes.add(id(node))
                result = _judge(held | entry, [blocker])
                if result is not None:
                    effective, blk, severity = result
                    yield finding(
                        module,
                        RULE,
                        node,
                        "%s blocks while holding %s (%s)"
                        % (blk.label, _fmt(effective), qual),
                        severity=severity,
                    )
            for site in summary.calls:
                if id(site.node) in direct_nodes:
                    continue  # already classified as a direct blocker
                total = site.held | entry
                if not total:
                    continue
                blockers: List[Blocker] = []
                for callee in site.candidates:
                    blockers.extend(analysis.summaries[callee].blockers)
                result = _judge(total, blockers)
                if result is not None:
                    effective, blk, severity = result
                    yield finding(
                        module,
                        RULE,
                        site.node,
                        "call to %s() may block while holding %s: %s (%s)"
                        % (site.name, _fmt(effective), blk.label, qual),
                        severity=severity,
                    )


def _judge(
    held: FrozenSet[LockRef], blockers: Iterable[Blocker]
) -> Optional[Tuple[FrozenSet[LockRef], Blocker, str]]:
    """The worst surviving (held-after-exemption, blocker, severity).

    Errors (a mutex or write side is held) outrank warnings (read side
    only); within a class the lexically smallest label wins so the
    finding message -- and therefore its baseline fingerprint -- is
    deterministic.
    """
    best: Optional[Tuple[FrozenSet[LockRef], Blocker, str]] = None
    for blocker in sorted(blockers, key=lambda b: b.label):
        effective = frozenset(
            lock for lock in held if lock.base not in blocker.exempt
        )
        if not effective:
            continue
        severity = (
            WARNING
            if all(lock.side == "read" for lock in effective)
            else ERROR
        )
        if best is None or (severity == ERROR and best[2] == WARNING):
            best = (effective, blocker, severity)
            if severity == ERROR:
                break
    return best


def _fmt(locks: FrozenSet[LockRef]) -> str:
    return ", ".join(sorted(lock.canonical() for lock in locks))


__all__ = ["BlockingUnderLockChecker", "RULE"]
