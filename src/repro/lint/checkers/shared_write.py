"""Unlocked-shared-write checker.

A class that guards an instance attribute with its own lock in one
method but writes the same attribute bare in another has a data race:
server worker threads, the group-commit flusher, and join phase-2
workers all enter these objects concurrently (docs/SERVER.md,
docs/ROBUSTNESS.md).  The guard discipline is *inferred*, not
annotated: an attribute written at least once while a lock of the same
class is held (mutex or rwlock write side -- the read side guards
nothing) is considered lock-protected, and every other write to it
must also hold such a lock, either locally or in the must-entry
context every caller establishes (``_flush_locked``-style helpers that
are only ever called under the lock stay clean).

Per-thread structures are modeled as safe: attributes initialised from
``threading.local`` or ``ShardedOperationCounters``-style factories
(``LintConfig.threadsafe_factories``) are exempt, as are ``__init__``
writes (the object is not yet shared) and the lock attributes
themselves.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.lint.engine import (
    Checker,
    Finding,
    LintConfig,
    SourceModule,
)
from repro.lint.checkers.common import dotted_name, finding, in_scope
from repro.lint.ipa import (
    ClassInfo,
    LockRef,
    ProjectAnalysis,
    WriteSite,
    analyze_project,
)

RULE = "unlocked-shared-write"

#: Methods whose writes never race: construction and teardown run
#: before/after the object is shared.
_UNSHARED_METHODS = {"__init__", "__new__", "__del__", "__post_init__"}


class UnlockedSharedWriteChecker(Checker):
    rules = {
        RULE: (
            "an instance attribute written under the class's lock in "
            "one method must not be written bare in another"
        )
    }

    def check_project(
        self, modules: Sequence[SourceModule], config: LintConfig
    ) -> Iterable[Finding]:
        analysis = analyze_project(modules)
        for info in analysis.classes:
            if not info.locks:
                continue
            if not in_scope(info.module, config.concurrency_prefixes):
                continue
            yield from self._check_class(info, analysis, config)

    def _check_class(
        self,
        info: ClassInfo,
        analysis: ProjectAnalysis,
        config: LintConfig,
    ) -> Iterable[Finding]:
        threadsafe = _threadsafe_attrs(info, config)
        guarded: Set[str] = set()
        bare: List[Tuple[str, WriteSite]] = []
        for mname in info.methods:
            if mname in _UNSHARED_METHODS:
                continue
            qual = "%s.%s.%s" % (info.module.module, info.name, mname)
            summary = analysis.summaries.get(qual)
            if summary is None or summary.info.cls is not info:
                continue  # same-name class elsewhere shadowed this qual
            entry = analysis.must_entry.get(qual, frozenset())
            for write in summary.writes:
                total = write.held | entry
                if _own_guards(total, info):
                    guarded.add(write.attr)
                else:
                    bare.append((qual, write))
        for qual, write in bare:
            if write.attr not in guarded:
                continue  # never lock-protected anywhere: not shared state
            if write.attr in threadsafe or write.attr in info.locks:
                continue
            yield finding(
                info.module,
                RULE,
                write.node,
                "%s.%s is written under %s.%s elsewhere but this write "
                "holds no %s lock (%s)"
                % (
                    info.name,
                    write.attr,
                    info.name,
                    _a_guard_name(info),
                    info.name,
                    qual,
                ),
            )


def _own_guards(held: Iterable[LockRef], info: ClassInfo) -> List[LockRef]:
    """Locks in ``held`` that actually guard ``info``'s state (the
    rwlock read side excludes writers but not other readers, so it
    does not count)."""
    return [
        lock
        for lock in held
        if lock.cls == info.name and lock.side != "read"
    ]


def _a_guard_name(info: ClassInfo) -> str:
    canonical = sorted(set(info.locks.values()))
    return canonical[0] if canonical else "<lock>"


def _threadsafe_attrs(info: ClassInfo, config: LintConfig) -> Set[str]:
    safe: Set[str] = set()
    factories = set(config.threadsafe_factories)
    for func in info.methods.values():
        for stmt in ast.walk(func):
            if not (
                isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Call)
            ):
                continue
            callee = dotted_name(stmt.value.func) or ""
            if callee not in factories and callee.split(".")[-1] not in factories:
                continue
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    safe.add(target.attr)
    return safe


__all__ = ["UnlockedSharedWriteChecker", "RULE"]
