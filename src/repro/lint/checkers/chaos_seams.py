"""Chaos-seam coverage checker.

The crash-sweep guarantee ("recovery survives a crash at *any* point") is
only as strong as the set of schedulable points, so every I/O-performing
method on the durable-state classes must route through a
:class:`~repro.chaos.FaultInjector` seam.  A new ``flush``/``write``/
``install`` method added without a seam silently shrinks the sweep space
-- exactly the regression this checker exists to catch.

A method counts as covered when its body references one of the class's
seam attributes (``self.fault_injector`` / ``self.on_append``) directly,
or when it calls -- transitively, within the class -- a method that does
(dispatch helpers inherit coverage from the seam-carrying worker they
delegate to).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Set

from repro.lint.engine import Checker, Finding, LintConfig, SourceModule
from repro.lint.checkers.common import finding

RULE = "chaos-seam"


class ChaosSeamChecker(Checker):
    rules = {
        RULE: (
            "I/O-performing methods on durable-state classes must carry "
            "a FaultInjector seam"
        )
    }

    def check_module(
        self, module: SourceModule, config: LintConfig
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name in config.seam_classes
            ):
                yield from self._check_class(module, node, config)
        yield from self._check_inventory(module, config)

    def _check_inventory(
        self, module: SourceModule, config: LintConfig
    ) -> Iterable[Finding]:
        """The required-seam inventory: modules listed in
        ``seam_inventory`` must keep defining (or calling) each named
        fault point.  Renaming or dropping one shrinks the sweep space
        every seeded chaos schedule explores, so it fails the build
        here instead of silently passing a weaker sweep."""
        required = config.seam_inventory.get(module.module)
        if not required or not module.tree.body:
            return
        present: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                present.add(node.name)
            elif isinstance(node, ast.Attribute):
                present.add(node.attr)
            elif isinstance(node, ast.Name):
                present.add(node.id)
        for name in required:
            if name not in present:
                yield finding(
                    module,
                    RULE,
                    module.tree.body[0],
                    "module %s must define or reference the chaos seam "
                    "%r (required-seam inventory; see docs/LINTING.md)"
                    % (module.module, name),
                )

    def _check_class(
        self, module: SourceModule, cls: ast.ClassDef, config: LintConfig
    ) -> Iterable[Finding]:
        seams = config.seam_classes[cls.name]
        methods: Dict[str, ast.FunctionDef] = {
            n.name: n for n in cls.body if isinstance(n, ast.FunctionDef)
        }
        init = methods.get("__init__")
        if init is None or not any(
            _defines_attr(init, seam) for seam in seams
        ):
            yield finding(
                module,
                RULE,
                cls,
                "%s.__init__ must define a chaos seam attribute (%s)"
                % (cls.name, " or ".join("self.%s" % s for s in seams)),
            )
            return
        covered = {
            name
            for name, func in methods.items()
            if any(_references_attr(func, seam) for seam in seams)
        }
        calls = {
            name: _self_calls(func) for name, func in methods.items()
        }
        # Fixpoint: a method is covered if it calls a covered method.
        changed = True
        while changed:
            changed = False
            for name, callees in calls.items():
                if name not in covered and callees & covered:
                    covered.add(name)
                    changed = True
        for name, func in methods.items():
            if name == "__init__" or name in covered:
                continue
            segments = set(name.strip("_").split("_"))
            if segments & set(config.seam_verbs):
                yield finding(
                    module,
                    RULE,
                    func,
                    "%s.%s performs I/O but never references a chaos "
                    "seam (%s); crash sweeps cannot land inside it"
                    % (
                        cls.name,
                        name,
                        " or ".join("self.%s" % s for s in seams),
                    ),
                )


def _defines_attr(func: ast.FunctionDef, attr: str) -> bool:
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == attr
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    return True
    return False


def _references_attr(func: ast.FunctionDef, attr: str) -> bool:
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == attr
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return True
    return False


def _self_calls(func: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and (
            isinstance(node.value, ast.Name) and node.value.id == "self"
        ):
            names.add(node.attr)
    return names


__all__ = ["ChaosSeamChecker", "RULE"]
