"""Shared AST helpers for the repro.lint checkers."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint.engine import Finding, SourceModule


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The dotted name a call targets (``time.time``, ``self.flush``)."""
    return dotted_name(node.func)


def in_scope(module: SourceModule, prefixes: Tuple[str, ...]) -> bool:
    return any(
        module.module == p or module.module.startswith(p + ".")
        for p in prefixes
    )


def finding(
    module: SourceModule,
    rule: str,
    node: ast.AST,
    message: str,
    severity: str = "error",
) -> Finding:
    return Finding(
        rule=rule,
        severity=severity,
        path=module.display_path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


def iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[Optional[ast.ClassDef], ast.AST]]:
    """Yield ``(enclosing_class, function)`` for every def in the module
    (class is None for module-level functions; nested defs inherit the
    class of their outermost enclosing function)."""

    def walk(node: ast.AST, cls: Optional[ast.ClassDef]) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield cls, child
                yield from walk(child, cls)
            else:
                yield from walk(child, cls)

    yield from walk(tree, None)


def imports_module(tree: ast.Module, name: str) -> bool:
    """Whether the module does ``import <name>`` (top-level or nested)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == name and alias.asname in (None, name):
                    return True
    return False


__all__ = [
    "call_name",
    "dotted_name",
    "finding",
    "imports_module",
    "in_scope",
    "iter_functions",
]
