"""Resource-lifecycle all-paths checker.

The static twin of PR 8's zero-leaked-slots chaos sweeps: every
governor admission (``handle = gov.admit(...)``), every slot parked
with ``gov.begin_wait(handle)``, every re-split scratch file
(``SpillWriter(...)``), and every explicit lock ``acquire()`` must
reach its release/close on **every** exit path of the acquiring
function -- including the exceptional ones the happy-path tests never
take.  The check runs on the per-function CFG from
:mod:`repro.lint.ipa`, whose ``finally`` regions are duplicated per
continuation so a ``finally: gov.release(handle)`` covers fall-through,
early return, and raise alike.

What counts as an acquire/release is configuration
(``LintConfig.resource_acquires`` / ``resource_factories`` /
``resource_transitions``); a *transition* re-obligates an existing
handle (``begin_wait`` parks a slot that ``end_wait`` or ``release``
must then reclaim).  Ownership transfer is modeled by escape analysis:
a resource that is returned, stored into a container or attribute, or
passed to a non-custodial callee is someone else's to close, and the
check stands down rather than guess (the dynamic sweeps own that
half).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.engine import (
    Checker,
    Finding,
    LintConfig,
    SourceModule,
)
from repro.lint.checkers.common import dotted_name, finding, in_scope
from repro.lint.ipa import (
    CFG,
    EXC_EXIT,
    EXIT,
    FunctionInfo,
    analyze_project,
    build_cfg,
)

RULE = "resource-lifecycle"


@dataclass
class _Resource:
    stmt: ast.stmt
    var: str
    desc: str
    releases: Tuple[str, ...]
    #: For explicit ``<recv>.acquire()`` statements the handle is the
    #: receiver expression itself, matched by dotted name.
    recv: Optional[str] = None


class ResourceLifecycleChecker(Checker):
    rules = {
        RULE: (
            "every governor slot/grant acquire, lock acquire, and "
            "scratch-file open must reach a release/close on every "
            "exit path, including exceptions"
        )
    }

    def check_project(
        self, modules: Sequence[SourceModule], config: LintConfig
    ) -> Iterable[Finding]:
        analysis = analyze_project(modules)
        custodial = _custodial_names(config)
        for qual in sorted(analysis.functions):
            finfo = analysis.functions[qual]
            if not in_scope(finfo.module, config.concurrency_prefixes):
                continue
            yield from _check_function(finfo, qual, config, custodial)


def _custodial_names(config: LintConfig) -> Set[str]:
    """Every configured acquire/release/transition name: passing a
    resource to one of these is custody management, not an escape."""
    names: Set[str] = set()
    for mapping in (
        config.resource_acquires,
        config.resource_factories,
        config.resource_transitions,
    ):
        for key, releases in mapping.items():
            names.add(key)
            names.update(releases)
    return names


def _check_function(
    finfo: FunctionInfo,
    qual: str,
    config: LintConfig,
    custodial: Set[str],
) -> Iterable[Finding]:
    resources = _find_resources(finfo.node, config)
    if not resources:
        return
    live = [
        r
        for r in resources
        if r.recv is not None or not _escapes(finfo.node, r, custodial)
    ]
    if not live:
        return
    cfg = build_cfg(finfo.node)
    nodes_by_stmt: Dict[int, List[int]] = {}
    for node, stmt in cfg.stmts.items():
        if stmt is not None:
            nodes_by_stmt.setdefault(id(stmt), []).append(node)
    for res in live:
        leak = _leak_paths(cfg, nodes_by_stmt.get(id(res.stmt), []), res)
        if leak:
            yield finding(
                finfo.module,
                RULE,
                res.stmt,
                "%s from %s may exit %s without %s in %s"
                % (
                    res.var,
                    res.desc,
                    leak,
                    "/".join(res.releases),
                    qual,
                ),
            )


# -- resource discovery ----------------------------------------------------


def _find_resources(
    func: ast.AST, config: LintConfig
) -> List[_Resource]:
    found: List[_Resource] = []
    for stmt in _walk_stmts(func):
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
        ):
            var = stmt.targets[0].id
            call = stmt.value
            if isinstance(call.func, ast.Attribute):
                attr = call.func.attr
                if attr in config.resource_acquires:
                    found.append(
                        _Resource(
                            stmt,
                            var,
                            "%s()" % attr,
                            tuple(config.resource_acquires[attr]),
                        )
                    )
                    continue
            callee = dotted_name(call.func) or ""
            factory = callee.split(".")[-1]
            if factory in config.resource_factories:
                found.append(
                    _Resource(
                        stmt,
                        var,
                        "%s()" % factory,
                        tuple(config.resource_factories[factory]),
                    )
                )
        elif isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Call
        ):
            call = stmt.value
            if not isinstance(call.func, ast.Attribute):
                continue
            attr = call.func.attr
            if (
                attr in config.resource_transitions
                and call.args
                and isinstance(call.args[0], ast.Name)
            ):
                found.append(
                    _Resource(
                        stmt,
                        call.args[0].id,
                        "%s()" % attr,
                        tuple(config.resource_transitions[attr]),
                    )
                )
            elif attr in _LOCK_ACQUIRES:
                recv = dotted_name(call.func.value)
                if recv:
                    found.append(
                        _Resource(
                            stmt,
                            recv,
                            "%s.%s()" % (recv, attr),
                            _LOCK_ACQUIRES[attr],
                            recv=recv,
                        )
                    )
    return found


#: Explicit statement-form lock acquisition -> the calls that undo it.
_LOCK_ACQUIRES: Dict[str, Tuple[str, ...]] = {
    "acquire": ("release",),
    "acquire_read": ("release_read",),
    "acquire_write": ("release_write",),
}


def _walk_stmts(func: ast.AST) -> Iterable[ast.stmt]:
    """Statements of this function only -- nested defs/lambdas run in
    their own frame and get their own FunctionInfo (or none)."""
    stack: List[ast.AST] = list(getattr(func, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.stmt):
            yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.stmt, ast.excepthandler)):
                stack.append(child)
            elif isinstance(child, ast.withitem):
                stack.append(child)
    return


# -- escape analysis -------------------------------------------------------


def _escapes(
    func: ast.AST, res: _Resource, custodial: Set[str]
) -> bool:
    parents: Dict[int, ast.AST] = {}
    for parent in ast.walk(func):
        for child in ast.iter_child_nodes(parent):
            parents[id(child)] = parent
    acquire_target = (
        res.stmt.targets[0]
        if isinstance(res.stmt, ast.Assign)
        else None
    )
    for node in ast.walk(func):
        if not (isinstance(node, ast.Name) and node.id == res.var):
            continue
        if isinstance(node.ctx, ast.Store):
            if node is acquire_target:
                continue
            parent = parents.get(id(node))
            if _is_custodial_rebind(parent, custodial):
                continue
            return True  # rebound: alias tracking lost
        if not isinstance(node.ctx, ast.Load):
            continue  # Del
        parent = parents.get(id(node))
        if parent is None:
            return True
        if isinstance(parent, ast.Attribute):
            continue  # v.attr / v.method(...): access, not transfer
        call_parent = parent
        if isinstance(parent, ast.keyword):
            call_parent = parents.get(id(parent))
        if isinstance(call_parent, ast.Call):
            fname = _call_attr_or_name(call_parent)
            if fname in custodial or fname in res.releases:
                continue
            return True  # handed to an unknown callee
        if isinstance(parent, (ast.Compare, ast.BoolOp, ast.UnaryOp)):
            continue  # truthiness / identity tests
        if isinstance(parent, (ast.If, ast.While, ast.Assert)):
            continue  # bare `if v:` test position
        return True  # returned, yielded, stored, collected, ...
    return False


def _is_custodial_rebind(
    parent: Optional[ast.AST], custodial: Set[str]
) -> bool:
    """``h = gov.admit(...)`` re-binding the same name is a fresh
    resource (tracked separately), not an escape of this one."""
    if not isinstance(parent, ast.Assign):
        return False
    if not isinstance(parent.value, ast.Call):
        return False
    return _call_attr_or_name(parent.value) in custodial


def _call_attr_or_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return ""


# -- all-paths reachability ------------------------------------------------


def _leak_paths(
    cfg: CFG, acquire_nodes: List[int], res: _Resource
) -> str:
    """BFS from the acquire's normal successors; '' if every path hits
    a release, else which exits leak ('a fall-through path', 'an
    exception path', or both)."""
    start: Set[int] = set()
    for node in acquire_nodes:
        start |= cfg.norm.get(node, set())
    seen: Set[int] = set()
    work = list(start)
    hit_exit = hit_exc = False
    while work:
        node = work.pop()
        if node in seen:
            continue
        seen.add(node)
        if node == EXIT:
            hit_exit = True
            continue
        if node == EXC_EXIT:
            hit_exc = True
            continue
        if _releasing(cfg.stmts.get(node), res):
            continue
        work.extend(cfg.successors(node))
    if hit_exit and hit_exc:
        return "a fall-through and an exception path"
    if hit_exit:
        return "a fall-through path"
    if hit_exc:
        return "an exception path"
    return ""


def _releasing(stmt: Optional[ast.stmt], res: _Resource) -> bool:
    if stmt is None:
        return False
    for expr in _headline_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call) and _is_release_call(node, res):
                return True
    return False


def _headline_exprs(stmt: ast.stmt) -> List[ast.AST]:
    """The expressions a CFG node actually evaluates itself (compound
    statements' bodies are separate nodes)."""
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    return [stmt]


def _is_release_call(call: ast.Call, res: _Resource) -> bool:
    if not isinstance(call.func, ast.Attribute):
        return False
    if call.func.attr not in res.releases:
        return False
    if res.recv is not None:
        return dotted_name(call.func.value) == res.recv
    recv = call.func.value
    if isinstance(recv, ast.Name) and recv.id == res.var:
        return True  # v.close()
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id == res.var:
            return True  # gov.release(v)
    for kw in call.keywords:
        if isinstance(kw.value, ast.Name) and kw.value.id == res.var:
            return True
    return False


__all__ = ["ResourceLifecycleChecker", "RULE"]
