"""Determinism checker: the analytic model breaks on nondeterminism.

Every number the reproduction reports is derived from primitive-operation
counts, and every chaos failure must replay from ``(config, plan)`` alone.
Both properties die the moment a counter-charged or simulated path reads a
wall clock, consumes unseeded randomness, or iterates a ``set`` (whose
order varies with ``PYTHONHASHSEED``).  This checker bans those constructs
inside the deterministic module scope; the governor is deliberately *not*
in scope -- wall-clock admission deadlines are its job.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.engine import Checker, Finding, LintConfig, SourceModule
from repro.lint.checkers.common import (
    call_name,
    dotted_name,
    finding,
    imports_module,
    in_scope,
)

RULE = "determinism"

#: Wall-clock and entropy calls that are never deterministic.
_BANNED_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
}


class DeterminismChecker(Checker):
    rules = {
        RULE: (
            "no wall clocks, unseeded randomness, or set-iteration in "
            "counter-charged / simulated paths"
        )
    }

    def check_module(
        self, module: SourceModule, config: LintConfig
    ) -> Iterable[Finding]:
        if not in_scope(module, config.deterministic_prefixes):
            return
        uses_random = imports_module(module.tree, "random")
        call_funcs = {
            id(node.func)
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Call)
        }
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, uses_random)
            elif (
                isinstance(node, ast.Attribute)
                and id(node) not in call_funcs
            ):
                if dotted_name(node) in _BANNED_CALLS:
                    yield finding(
                        module,
                        RULE,
                        node,
                        "aliasing %s keeps a nondeterministic source "
                        "reachable; if intentional (observability "
                        "timers), suppress with a justifying comment"
                        % dotted_name(node),
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter):
                    yield finding(
                        module,
                        RULE,
                        node,
                        "iterating a set: order depends on PYTHONHASHSEED; "
                        "wrap in sorted(...)",
                    )
            elif isinstance(node, ast.comprehension):
                if _is_set_expr(node.iter):
                    yield finding(
                        module,
                        RULE,
                        node.iter,
                        "comprehension over a set: order depends on "
                        "PYTHONHASHSEED; wrap in sorted(...)",
                    )

    def _check_call(
        self, module: SourceModule, node: ast.Call, uses_random: bool
    ) -> Iterable[Finding]:
        name = call_name(node)
        if name is None:
            return
        if name in _BANNED_CALLS:
            yield finding(
                module,
                RULE,
                node,
                "%s() is nondeterministic; use the simulated clock or a "
                "seeded source" % name,
            )
        elif name.startswith("secrets."):
            yield finding(
                module, RULE, node, "%s() draws real entropy" % name
            )
        elif uses_random and name.startswith("random."):
            attr = name.split(".", 1)[1]
            if attr == "Random":
                if not node.args and not node.keywords:
                    yield finding(
                        module,
                        RULE,
                        node,
                        "random.Random() without a seed is "
                        "nondeterministic; pass an explicit seed",
                    )
            else:
                yield finding(
                    module,
                    RULE,
                    node,
                    "module-level random.%s() uses the shared unseeded "
                    "RNG; use a seeded random.Random instance" % attr,
                )
        elif name in ("list", "tuple") and len(node.args) == 1:
            if _is_set_expr(node.args[0]):
                yield finding(
                    module,
                    RULE,
                    node,
                    "%s(<set>) materialises hash order; use "
                    "sorted(...)" % name,
                )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name in ("set", "frozenset")
    return False


__all__ = ["DeterminismChecker", "RULE"]
