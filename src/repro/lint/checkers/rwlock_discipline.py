"""Read-write lock discipline checker.

The catalog :class:`~repro.core.rwlock.ReadWriteLock` (PR 8) lets
read-only SQL run concurrently precisely because readers promise not
to mutate.  A method that writes ``self.<attr>`` while holding only
the **read side** of its class's rwlock breaks that promise: the write
races every concurrent reader, and the writer-preference logic never
sees it.  This rule flags any self-attribute mutation whose held-lock
context (local plus must-entry, via :mod:`repro.lint.ipa`) contains a
read-side ref of the class's own rwlock and no write-side or mutex
guard of the same class.

Holding the write side reentrantly (the rwlock allows
read-while-holding-write) or a separate class mutex alongside the read
side is fine -- the mutation is then serialised by that stronger lock.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.lint.engine import (
    Checker,
    Finding,
    LintConfig,
    SourceModule,
)
from repro.lint.checkers.common import finding, in_scope
from repro.lint.ipa import RWLOCK, analyze_project

RULE = "rwlock-discipline"


class RwlockDisciplineChecker(Checker):
    rules = {
        RULE: (
            "state guarded by a ReadWriteLock must not be mutated "
            "while only the read side is held"
        )
    }

    def check_project(
        self, modules: Sequence[SourceModule], config: LintConfig
    ) -> Iterable[Finding]:
        analysis = analyze_project(modules)
        for info in analysis.classes:
            if RWLOCK not in info.kinds.values():
                continue
            if not in_scope(info.module, config.concurrency_prefixes):
                continue
            for mname in info.methods:
                if mname == "__init__":
                    continue
                qual = "%s.%s.%s" % (info.module.module, info.name, mname)
                summary = analysis.summaries.get(qual)
                if summary is None or summary.info.cls is not info:
                    continue
                entry = analysis.must_entry.get(qual, frozenset())
                for write in summary.writes:
                    total = write.held | entry
                    read_only = [
                        lock
                        for lock in total
                        if lock.cls == info.name and lock.side == "read"
                    ]
                    stronger = any(
                        lock.cls == info.name and lock.side != "read"
                        for lock in total
                    )
                    if read_only and not stronger:
                        yield finding(
                            info.module,
                            RULE,
                            write.node,
                            "%s.%s is mutated while holding only the "
                            "read side of %s (%s)"
                            % (
                                info.name,
                                write.attr,
                                sorted(
                                    ref.canonical() for ref in read_only
                                )[0],
                                qual,
                            ),
                        )


__all__ = ["RwlockDisciplineChecker", "RULE"]
