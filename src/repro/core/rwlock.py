"""A writer-preference read-write lock for the relational facade.

The catalog, the reuse cache, and the counter object are shared by every
session thread.  Read-only statements (the overwhelming majority of the
SQL workload) never structurally mutate them, so they can run genuinely
in parallel; DDL and DML do mutate them and must run alone.  This lock
encodes exactly that contract:

* **readers share**: any number of threads hold the read side at once --
  ``peak_readers`` records the high-water mark, which is the direct
  evidence the server's "more than one SQL statement in flight" claim
  rests on;
* **writers exclude**: the write side waits for every reader to drain
  and blocks new readers while it waits (writer preference -- a steady
  stream of cheap reads must not starve a schema change);
* **the writer is reentrant**: DML entry points call each other
  (``delete_where`` rebuilds indexes through ``create_index``,
  ``insert_many`` loops over ``insert``), so the owning thread may
  re-enter the write side -- and may take the read side -- freely.

The internal mutex is registered with the lock-order recorder via
:func:`~repro.lint.runtime.tracked_lock`; it is never held while user
code runs (only around the state transitions), so the lock adds no edges
under the governor or the lock table.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import StateError
from repro.lint.runtime import tracked_lock


class ReadWriteLock:
    """Shared/exclusive lock; writer-preference, writer-reentrant."""

    def __init__(self, name: str = "repro.core.ReadWriteLock._mu") -> None:
        self._mu = tracked_lock(name)
        self._turnstile = threading.Condition(self._mu)
        self._readers = 0
        self._writer: Optional[int] = None
        self._writer_depth = 0
        self._writers_waiting = 0
        #: High-water mark of simultaneous readers (concurrency evidence).
        self.peak_readers = 0

    # -- read side ---------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._mu:
            if self._writer == me:
                # The writing thread may read what it is writing.
                self._writer_depth += 1
                return
            while self._writer is not None or self._writers_waiting:
                self._turnstile.wait()
            self._readers += 1
            if self._readers > self.peak_readers:
                self.peak_readers = self._readers

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._mu:
            if self._writer == me:
                self._writer_depth -= 1
                return
            if self._readers < 1:
                raise StateError("release_read without a matching acquire")
            self._readers -= 1
            if self._readers == 0:
                self._turnstile.notify_all()

    # -- write side --------------------------------------------------------

    def acquire_write(self, timeout: Optional[float] = None) -> bool:
        """Take the write side; returns True once exclusive.

        With a ``timeout`` (seconds), gives up and returns False if the
        readers have not drained in time -- the waiting-writer claim is
        withdrawn, so parked readers wake up and proceed (a timed-out
        schema change must not leave the lock wedged against reads).
        """
        me = threading.get_ident()
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._mu:
            if self._writer == me:
                self._writer_depth += 1
                return True
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    if deadline is None:
                        self._turnstile.wait()
                        continue
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._turnstile.wait(
                        remaining
                    ):
                        return False
            finally:
                self._writers_waiting -= 1
                if self._writers_waiting == 0:
                    # Whether we got the lock or timed out, readers
                    # blocked only by waiting-writer preference can run.
                    self._turnstile.notify_all()
            self._writer = me
            self._writer_depth = 1
            return True

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._mu:
            if self._writer != me or self._writer_depth < 1:
                raise StateError("release_write by a non-owning thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._turnstile.notify_all()

    # -- context managers --------------------------------------------------

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection -----------------------------------------------------

    def occupancy(self) -> dict:
        """Current reader/writer occupancy (for stats and tests)."""
        with self._mu:
            return {
                "readers": self._readers,
                "peak_readers": self.peak_readers,
                "writer_held": self._writer is not None,
                "writers_waiting": self._writers_waiting,
            }

    def __repr__(self) -> str:
        state = self.occupancy()
        return "ReadWriteLock(%d readers, writer=%s)" % (
            state["readers"],
            state["writer_held"],
        )


__all__ = ["ReadWriteLock"]
