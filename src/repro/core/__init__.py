"""The public facade: a main-memory relational database.

:class:`~repro.core.database.MainMemoryDatabase` wires the storage
substrate, access methods, operators, and the Section 4 planner into the
interface a downstream user programs against; the recovery subsystem
(Section 5) is exposed through
:class:`~repro.core.database.RecoverableBank`-style setups in
:mod:`repro.recovery` and the examples.
"""

from repro.core.database import MainMemoryDatabase

__all__ = ["MainMemoryDatabase"]
