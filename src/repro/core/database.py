"""``MainMemoryDatabase`` -- the library's front door.

A memory-resident relational database in the mould the paper studies:
tables are paged heaps, secondary indexes come in all four Section 2
flavours (B+-tree, AVL, hash, paged binary tree), queries go through the
Section 4 planner (which picks hash joins and pushes selections down), and
every execution is instrumented with the Section 3 operation counters so
costs can be reported in the paper's modelled seconds.

Typical use::

    db = MainMemoryDatabase()
    db.create_table("emp", [("emp_id", DataType.INTEGER),
                            ("name", DataType.STRING),
                            ("salary", DataType.INTEGER)])
    db.create_index("emp", "name", kind="btree")
    db.insert("emp", (1, "Jones", 52000))
    rows = db.lookup("emp", "name", "Jones")
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.access.avl import AVLTree
from repro.access.btree import BPlusTree
from repro.access.hash_index import HashIndex
from repro.access.paged_binary import PagedBinaryTree
from repro.core.rwlock import ReadWriteLock
from repro.cost.counters import (
    CostReport,
    OperationCounters,
    ShardedOperationCounters,
)
from repro.cost.parameters import CostParameters
from repro.governor import Governor, GovernorConfig
from repro.join.parallel import validate_workers
from repro.operators.selection import Comparison, Predicate, select
from repro.planner.plan import PlanContext, PlanNode
from repro.planner.planner import Planner, PlannerConfig
from repro.planner.query import Query
from repro.planner.reuse import PlanReuseCache
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, Field, Schema
from repro.errors import ConfigurationError, StateError

_INDEX_KINDS = {
    "btree": BPlusTree,
    "avl": AVLTree,
    "hash": HashIndex,
    "paged-binary": PagedBinaryTree,
}

SchemaSpec = Union[Schema, Sequence[Tuple[str, DataType]]]


class MainMemoryDatabase:
    """A self-contained MMDB instance."""

    def __init__(
        self,
        memory_pages: int = 1000,
        params: Optional[CostParameters] = None,
        page_bytes: int = 4096,
        batch: bool = True,
        columnar: bool = True,
        join_workers: int = 1,
        reuse_cache: bool = True,
        governor: Optional[GovernorConfig] = None,
        commit_policy: str = "group",
        log_devices: int = 1,
        group_commit_delay: Optional[float] = None,
        log_compress: bool = False,
        log_pipeline: bool = False,
        recovery_workers: int = 1,
        sharded_counters: bool = True,
    ) -> None:
        self.catalog = Catalog()
        self.params = params if params is not None else CostParameters()
        self.memory_pages = memory_pages
        self.page_bytes = page_bytes
        #: Shared operation tallies.  Sharded by default: each thread
        #: charges its own shard and the six fields read as merged
        #: totals, so concurrent sessions get exact per-statement deltas
        #: (``thread_snapshot``) without serialising.  ``False`` keeps
        #: the plain single-threaded counter object.
        self.counters: OperationCounters = (
            ShardedOperationCounters() if sharded_counters else OperationCounters()
        )
        #: Catalog read-write lock: queries hold the read side (any
        #: number in parallel), DDL/DML hold the write side.  Bank
        #: statements never touch it -- only the relational engine does.
        self._catalog_rw = ReadWriteLock("repro.core.MainMemoryDatabase._catalog_rw")
        #: Page-at-a-time operator execution (docs/PERF.md); counted costs
        #: are identical to the tuple-at-a-time loops either way.
        self.batch = batch
        #: Columnar batch kernels over the packed page buffers; ``False``
        #: keeps the row-view batch loops (same rows, same counters).
        self.columnar = columnar
        #: Worker processes for partitioned hash joins (1 = serial).
        self.join_workers = validate_workers(join_workers)
        #: Materialised-subplan reuse cache (None when disabled).  DML on
        #: a table eagerly drops every cached subplan that reads it.
        self.reuse = PlanReuseCache() if reuse_cache else None
        #: Optional :class:`repro.chaos.FaultInjector` (see attach_chaos).
        self.fault_injector = None
        #: The resource governor (docs/ROBUSTNESS.md): admission control,
        #: per-query memory grants, cancellation, worker fault tolerance.
        #: The default total-memory budget -- one full grant per allowed
        #: concurrent query -- never throttles the single-query happy path.
        config = governor or GovernorConfig()
        if config.max_memory_pages is None:
            config.max_memory_pages = memory_pages * config.max_concurrent
        self.governor = Governor(config)
        self.governor.register_shrinkable(self.reuse)
        self._planner = Planner(
            self.catalog,
            PlannerConfig(memory_pages=memory_pages, params=self.params),
        )
        #: Commit-pipeline knobs for the Section 5 durability stack built
        #: by :meth:`build_recovery`: the commit discipline
        #: ("conventional", "group", or "stable"), the number of
        #: partitioned-log devices, the group-commit latency bound in
        #: seconds (None = wait for the page to fill), new-value-only log
        #: compression (stable policy only), and stream-to-device
        #: pipelining.
        self.commit_policy = commit_policy
        self.log_devices = log_devices
        self.group_commit_delay = group_commit_delay
        self.log_compress = log_compress
        self.log_pipeline = log_pipeline
        #: Recovery streams :meth:`crash_and_recover` replays the
        #: partitioned log with (1 = the serial reference interpreter).
        self.recovery_workers = validate_workers(recovery_workers)
        self._recovery: Optional[Tuple[Any, ...]] = None
        self._recovery_initial: Any = 0
        self._last_recovery: Any = None

    # -- chaos ----------------------------------------------------------------------

    def attach_chaos(self, injector) -> "MainMemoryDatabase":
        """Wire a :class:`repro.chaos.FaultInjector` into the facade: every
        DML statement and query execution becomes a schedulable crash
        point, so fault sweeps can interrupt bulk loads and query batches
        mid-stream.  Also routes the injector into the governor so seeded
        plans can cancel queries, revoke grants, and fail pool workers at
        deterministic points.  Returns ``self`` for chaining."""
        self.fault_injector = injector
        self.governor.attach_chaos(injector)
        if self._recovery is not None:
            queue, _, log_manager, _, checkpointer = self._recovery
            injector.attach(
                queue=queue, log_manager=log_manager, checkpointer=checkpointer
            )
        return self

    def _chaos_point(self, label: str) -> None:
        if self.fault_injector is not None:
            self.fault_injector.point(label)

    # -- DDL ------------------------------------------------------------------------

    def create_table(self, name: str, schema: SchemaSpec) -> Relation:
        """Create an empty table; ``schema`` is a Schema or (name, type)
        pairs."""
        if not isinstance(schema, Schema):
            schema = Schema([Field(n, t) for n, t in schema])
        relation = Relation(name, schema, self.page_bytes)
        with self._catalog_rw.write_locked():
            self.catalog.register(relation)
        return relation

    def register_table(self, relation: Relation) -> Relation:
        """Adopt an externally built relation (workload generators)."""
        with self._catalog_rw.write_locked():
            self._invalidate_reuse(relation.name)
            return self.catalog.register(relation)

    def drop_table(self, name: str) -> None:
        with self._catalog_rw.write_locked():
            self.catalog.drop(name)
            self._invalidate_reuse(name)

    def create_index(self, table: str, column: str, kind: str = "btree") -> Any:
        """Build a secondary index over existing rows; maintained on
        insert/delete.

        ``kind`` is one of "btree", "avl", "hash", or "paged-binary" --
        the four Section 2 access methods.
        """
        try:
            factory = _INDEX_KINDS[kind]
        except KeyError:
            raise ConfigurationError(
                "unknown index kind %r (choose from %s)"
                % (kind, sorted(_INDEX_KINDS))
            ) from None
        with self._catalog_rw.write_locked():
            relation = self.catalog.relation(table)
            index = factory(counters=self.counters)
            col = relation.schema.index_of(column)
            for tid, row in relation.scan():
                index.insert(row[col], tid)
            self.catalog.register_index(table, column, index)
            # A new access path changes how future plans address this
            # table; cached subplans from the old shape must not be
            # served.
            self._invalidate_reuse(table)
            return index

    def drop_index(self, table: str, column: str) -> None:
        with self._catalog_rw.write_locked():
            self.catalog.drop_index(table, column)
            self._invalidate_reuse(table)

    # -- DML ------------------------------------------------------------------------

    def _invalidate_reuse(self, table: str) -> None:
        if self.reuse is not None:
            self.reuse.invalidate(table)

    def insert(self, table: str, values: Sequence[Any]) -> Tuple[int, int]:
        """Insert one row, maintaining every index on the table."""
        self._chaos_point("db insert %s" % table)
        with self._catalog_rw.write_locked():
            relation = self.catalog.relation(table)
            tid = relation.insert(values)
            for column, index in self.catalog.indexes_on(table).items():
                index.insert(values[relation.schema.index_of(column)], tid)
            self._invalidate_reuse(table)
            return tid

    def insert_many(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        count = 0
        for values in rows:
            self.insert(table, values)
            count += 1
        return count

    def delete_where(self, table: str, column: str, value: Any) -> int:
        """Delete rows with ``column == value`` (index-assisted when
        possible).  Returns the number of rows removed.

        Heap pages keep their slots stable by replacing deleted rows with
        the page's last row, so indexes are rebuilt for the moved TIDs --
        simple, and sufficient for the workloads here.
        """
        self._chaos_point("db delete %s" % table)
        with self._catalog_rw.write_locked():
            relation = self.catalog.relation(table)
            col = relation.schema.index_of(column)
            victims = [tid for tid, row in relation.scan() if row[col] == value]
            if not victims:
                return 0
            # Simplest correct strategy: rebuild without the victims.
            survivors = [row for _, row in relation.scan() if row[col] != value]
            relation.truncate()
            for row in survivors:
                relation.insert_unchecked(row)
            for idx_col in list(self.catalog.indexes_on(table)):
                self.catalog.drop_index(table, idx_col)
                self.create_index(table, idx_col)
            self._invalidate_reuse(table)
            return len(victims)

    # -- introspection ------------------------------------------------------------------

    def storage_stats(self) -> Dict[str, Any]:
        """Packed-page and index statistics for every table.

        Returns ``{table: {"storage": ..., "indexes": {column: ...}}}``
        where ``storage`` is :meth:`repro.storage.relation.Relation.storage_stats`
        (packed-column counts, buffer bytes, bytes per row) and each index
        entry reports its kind, entry count, height (ordered trees), and
        whether it can serve range scans.
        """
        report: Dict[str, Any] = {}
        for name in self.catalog.relations():
            indexes: Dict[str, Any] = {}
            for column, index in sorted(self.catalog.indexes_on(name).items()):
                info: Dict[str, Any] = {
                    "kind": type(index).__name__,
                    "entries": len(index),
                    "supports_range_scan": bool(
                        getattr(index, "supports_range_scan", False)
                    ),
                }
                height = getattr(index, "height", None)
                if height is not None:
                    info["height"] = height
                indexes[column] = info
            report[name] = {
                "storage": self.catalog.relation(name).storage_stats(),
                "indexes": indexes,
            }
        return report

    # -- queries -----------------------------------------------------------------------

    def table(self, name: str) -> Relation:
        return self.catalog.relation(name)

    def lookup(self, table: str, column: str, value: Any) -> List[Tuple[Any, ...]]:
        """Point lookup through an index (or a scan when none exists)."""
        relation = self.catalog.relation(table)
        index = self.catalog.index(table, column)
        if index is None:
            pred = Comparison(column, "=", value)
            return list(select(relation, pred, self.counters))
        return [relation.fetch(tid) for tid in index.search(value)]

    def range_lookup(
        self, table: str, column: str, low: Any, high: Any
    ) -> List[Tuple[Any, ...]]:
        """Range lookup ``low <= column <= high`` via an ordered index."""
        relation = self.catalog.relation(table)
        index = self.catalog.index(table, column)
        if index is None or not index.supports_range_scan:
            pred = Comparison(column, ">=", low) & Comparison(column, "<=", high)
            return list(select(relation, pred, self.counters))
        return [relation.fetch(tid) for _, tid in index.range_scan(low, high)]

    def plan(self, query: Query) -> PlanNode:
        """Optimize ``query`` (Section 4) without executing it."""
        return self._planner.plan(query)

    def explain(self, query: Query) -> str:
        return self._planner.explain(query)

    def execute(self, query: Query, timeout: Optional[float] = None) -> Relation:
        """Optimize and run ``query``; counters accumulate on ``self``.

        Every execution passes through the governor: it is admitted
        against the concurrency and memory budgets (raising typed
        :class:`~repro.errors.AdmissionRejected` /
        :class:`~repro.errors.QueryTimeout` errors when they cannot be
        met), runs under a revocable memory grant and a cancellation
        token, and releases its capacity on the way out.  ``timeout`` is
        an optional per-query deadline in seconds; ``db.cancel(qid)``
        from another thread aborts within one page of work.
        """
        self._chaos_point("db execute")
        # Read-only statements share the catalog lock's read side, so
        # any number of them plan and execute in parallel; DDL/DML take
        # the write side and run alone.
        with self._catalog_rw.read_locked():
            plan = self._planner.plan(query)
            handle = self.governor.admit(self.memory_pages, timeout=timeout)
            try:
                ctx = PlanContext(
                    catalog=self.catalog,
                    memory_pages=self.memory_pages,
                    params=self.params,
                    counters=self.counters,
                    batch=self.batch,
                    columnar=self.columnar,
                    join_workers=self.join_workers,
                    reuse_cache=self.reuse,
                    guard=handle.guard,
                )
                return plan.execute(ctx)
            finally:
                self.governor.release(handle)

    def cancel(self, qid: int) -> bool:
        """Cancel a running query by id; True if it was active."""
        return self.governor.cancel(qid)

    # -- SQL front end --------------------------------------------------------------------

    def sql(self, text: str, timeout: Optional[float] = None) -> Relation:
        """Parse, plan, and execute a SQL query (see repro.planner.sql
        for the supported fragment).  ``timeout`` bounds admission plus
        execution exactly like :meth:`execute`."""
        from repro.planner.sql import parse_sql

        return self.execute(parse_sql(text, self.catalog), timeout=timeout)

    def sql_explain(self, text: str) -> str:
        """The optimized plan for a SQL query, as text."""
        from repro.planner.sql import parse_sql

        return self.explain(parse_sql(text, self.catalog))

    # -- multi-session serving (docs/SERVER.md) -------------------------------------------

    def session_manager(self, **kwargs: Any):
        """A :class:`~repro.server.session.SessionManager` over this
        facade: per-session transactions against the Section 5 bank
        store, SQL statements against this catalog, admission through
        this governor.  Keyword arguments go to the manager (bank sizing,
        statement timeout, group-commit knobs)."""
        from repro.server.session import SessionManager

        return SessionManager(db=self, **kwargs)

    def serve(
        self, host: str = "127.0.0.1", port: int = 0, **kwargs: Any
    ):
        """Start a :class:`~repro.server.net.DatabaseServer` for this
        facade on a background thread and return it (its ``address``
        holds the bound host/port).  Call ``stop()`` on the returned
        server to shut down."""
        from repro.server.net import DatabaseServer

        server = DatabaseServer(
            manager=self.session_manager(**kwargs), host=host, port=port
        )
        server.start_in_thread()
        return server

    # -- durability (Section 5) -----------------------------------------------------------

    def build_recovery(
        self,
        n_records: int = 1024,
        records_per_page: int = 64,
        initial_value: Any = 0,
        checkpoint_interval: Optional[float] = 0.05,
        checkpoint_batch_pages: int = 1,
    ):
        """Construct the Section 5 durability stack next to the relational
        store, configured by the facade's commit knobs (``commit_policy``,
        ``log_devices``, ``group_commit_delay``, ``log_compress``,
        ``log_pipeline``): a simulated clock and event queue, a
        record-array image, the log manager, the transaction engine, and a
        fuzzy checkpointer (``checkpoint_interval=None`` leaves it
        stopped).  Returns the
        :class:`~repro.recovery.transactions.TransactionEngine`; the other
        components hang off it (``engine.queue``, ``engine.log``, ...).
        Any injector attached via :meth:`attach_chaos` is wired into the
        stack's crash seams.
        """
        from repro.recovery import (
            Checkpointer,
            CommitPolicy,
            DiskSnapshot,
            LogManager,
            TransactionEngine,
        )
        from repro.recovery.state import DatabaseState
        from repro.sim.clock import SimulatedClock
        from repro.sim.events import EventQueue

        policy = CommitPolicy(self.commit_policy)
        queue = EventQueue(SimulatedClock())
        state = DatabaseState(
            n_records, records_per_page, initial_value=initial_value
        )
        log_manager = LogManager(
            queue,
            policy=policy,
            devices=self.log_devices,
            compress=self.log_compress,
            max_commit_delay=self.group_commit_delay,
            pipeline=self.log_pipeline,
        )
        engine = TransactionEngine(state, queue, log_manager)
        checkpointer = Checkpointer(
            engine,
            DiskSnapshot(),
            interval=checkpoint_interval if checkpoint_interval else 1.0,
            batch_pages=checkpoint_batch_pages,
        )
        if checkpoint_interval is not None:
            checkpointer.start()
        if self.fault_injector is not None:
            self.fault_injector.attach(
                queue=queue, log_manager=log_manager, checkpointer=checkpointer
            )
        self._recovery = (queue, state, log_manager, engine, checkpointer)
        self._recovery_initial = initial_value
        return engine

    def attach_recovery(self, engine, checkpointer=None, initial_value: Any = 0):
        """Adopt an externally built transaction engine (and optional
        checkpointer) as this facade's durability stack."""
        self._recovery = (
            engine.queue, engine.state, engine.log, engine, checkpointer,
        )
        self._recovery_initial = initial_value
        return engine

    def crash_and_recover(
        self,
        workers: Optional[int] = None,
        use_dirty_page_table: bool = True,
    ):
        """Crash the durability stack *now* and rebuild its image.

        ``workers`` overrides the facade's ``recovery_workers`` for this
        restart; >1 replays the partitioned log through the parallel redo
        path (identical image and statistics, the straggler stream's
        share of the simulated reload time).  The rebuilt image's pages
        are accounted against the governor's memory budget for the
        duration of the restart.  Returns the
        :class:`~repro.recovery.restart.RecoveryOutcome`, also summarised
        by :meth:`recovery_stats`.
        """
        from repro.recovery.restart import crash, recover

        if self._recovery is None:
            raise StateError(
                "no durability stack attached: call build_recovery() first"
            )
        _, _, _, engine, checkpointer = self._recovery
        crash_state = crash(engine, checkpointer)
        outcome = recover(
            crash_state,
            initial_value=self._recovery_initial,
            use_dirty_page_table=use_dirty_page_table,
            workers=self.recovery_workers if workers is None else workers,
            governor=self.governor,
        )
        self._last_recovery = outcome
        return outcome

    def recovery_stats(self) -> Dict[str, Any]:
        """Commit-pipeline and restart statistics, one dict.

        ``log`` and ``group_commit`` report the attached log manager's
        write-side counters (groups sealed, mean group size, flush-reason
        histogram, compression savings); ``restart`` reports the last
        :meth:`crash_and_recover` outcome, including per-phase wall-clock
        timings and the clean-page bulk-skip count."""
        stats: Dict[str, Any] = {"recovery_workers": self.recovery_workers}
        if self._recovery is not None:
            log_manager = self._recovery[2]
            stats["log"] = log_manager.stats()
            stats["group_commit"] = log_manager.group_commit_stats()
        if self._last_recovery is not None:
            outcome = self._last_recovery
            stats["restart"] = {
                "seconds": outcome.seconds,
                "workers": outcome.workers,
                "phase_seconds": dict(outcome.phase_seconds),
                "log_records_scanned": outcome.log_records_scanned,
                "updates_redone": outcome.updates_redone,
                "updates_undone": outcome.updates_undone,
                "pages_reloaded": outcome.pages_reloaded,
                "pages_skipped_clean": outcome.pages_skipped_clean,
                "committed": len(outcome.committed_tids),
            }
        return stats

    # -- instrumentation ------------------------------------------------------------------

    def cost_report(self, label: str = "session") -> CostReport:
        """Modelled seconds for everything charged so far."""
        return self.counters.report(self.params, label)

    def reset_counters(self) -> None:
        self.counters.reset()

    def reuse_stats(self) -> Dict[str, int]:
        """Hit/miss/invalidation/eviction counts of the reuse cache."""
        if self.reuse is None:
            return {
                "entries": 0,
                "hits": 0,
                "misses": 0,
                "invalidations": 0,
                "evictions": 0,
            }
        return self.reuse.stats()

    def governor_stats(self) -> Dict[str, Any]:
        """Admission/cancellation/breaker counts from the governor."""
        return self.governor.stats()

    def concurrency_stats(self) -> Dict[str, Any]:
        """Catalog read-write lock occupancy.  ``peak_readers`` > 1 is
        the direct evidence that more than one read-only statement was
        in flight at the same instant."""
        return self._catalog_rw.occupancy()

    def analyze(self, table: Optional[str] = None) -> None:
        """Refresh optimizer statistics (all tables when ``table`` is
        None)."""
        names = [table] if table else self.catalog.relations()
        for name in names:
            self.catalog.analyze(name)

    def __repr__(self) -> str:
        return "MainMemoryDatabase(%d tables, |M|=%d pages)" % (
            len(self.catalog.relations()),
            self.memory_pages,
        )


__all__ = ["MainMemoryDatabase"]
