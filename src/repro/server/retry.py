"""Capped-jitter retry for idempotent statements.

Deadlock-victim aborts are a *normal* outcome of two-phase locking -- the
paper's own protocol picks a victim and expects it to try again.  When a
statement is **idempotent by rollback** (it entered with no transaction
open, so the system rolled back everything it did), the server can do
that retry itself instead of bouncing a transient error to the client.

The policy is classic capped exponential backoff with full jitter: the
``attempt``-th retry sleeps ``uniform(0, min(max_delay, base_delay *
2**attempt))``.  Jitter de-correlates the retriers (two deadlock victims
retrying in lockstep just deadlock again); the cap keeps the tail
latency bounded.  Randomness comes from a caller-supplied seeded
``random.Random`` so retry schedules are reproducible run to run --
sessions seed theirs from the session id.

Only errors carrying the :class:`~repro.errors.Retryable` marker
(deadlock/``WouldBlock``-family) are retried; timeouts and admission
rejections are *load* signals and retrying them inside the server would
amplify the overload the shed valve just relieved.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """How many times, and how long between, automatic retries."""

    #: Total attempts, counting the first run (1 = never retry).
    max_attempts: int = 3
    #: Backoff base: retry ``k`` draws from ``[0, base_delay * 2**k]``.
    base_delay: float = 0.002
    #: Ceiling on any single backoff draw, seconds.
    max_delay: float = 0.05

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                "max_attempts must be >= 1, got %r" % (self.max_attempts,)
            )
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ConfigurationError(
                "need 0 <= base_delay <= max_delay, got %r / %r"
                % (self.base_delay, self.max_delay)
            )

    def retries_left(self, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (0-based) may run."""
        return attempt < self.max_attempts

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Seconds to sleep before 0-based retry ``attempt`` runs."""
        bound = min(self.max_delay, self.base_delay * (2 ** attempt))
        return rng.uniform(0.0, bound)


__all__ = ["RetryPolicy"]
