"""The transactional record store behind the multi-session server.

This is the Section 5 machinery under *genuine* concurrency: the same
:class:`~repro.recovery.lock_table.LockTable` (holder / waiter /
pre-committed sets) the simulated engine uses, driven by real threads --
one per connected session -- instead of the discrete-event simulator.

A transaction's life here follows the paper's pre-commit protocol:

1. statements acquire record locks (S for reads, X for writes), blocking
   on the FIFO wait queue when incompatible; a wait-for cycle aborts the
   requester (the victim that closed the cycle), and every wait is
   bounded, so a session can stall but never hang;
2. COMMIT appends the commit record (with the transaction's accumulated
   pre-commit dependencies) to the log *buffer*, releases its locks into
   the pre-committed sets -- waking waiters, who inherit the dependency
   edge -- and joins the open **commit group**;
3. a background flusher seals the group when it fills
   (``group_size``) or ages out (``group_delay`` seconds), moving the
   whole log buffer to the durable log in one write and finalizing the
   group's locks with one batched
   :meth:`~repro.recovery.lock_table.LockTable.finalize_batch` pass.

Because the buffer is strictly append-ordered and flushes are whole-buffer
prefixes, a flushed dependent commit always implies its dependencies are
durable too -- the Section 5.3 ordering constraint for free.

:meth:`crash` models a power cut: the buffered (unflushed) log and every
in-flight transaction vanish; :meth:`recover` rebuilds the image by
redoing the durable log's committed updates from the initial state, which
the chaos tests check against the independent
:class:`~repro.chaos.ShadowDatabase` oracle.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import (
    ConfigurationError,
    QueryTimeout,
    SessionError,
    StateError,
    TransactionAborted,
    WouldBlock,
)
from repro.lint.runtime import tracked_lock
from repro.recovery.lock_table import LockMode, LockTable

#: Log record tuples: ("begin", tid) / ("update", tid, rid, old, new) /
#: ("commit", tid, deps) / ("abort", tid).
LogRecord = Tuple[Any, ...]


class TxnState(enum.Enum):
    """ACTIVE while issuing statements, PRECOMMITTED once the commit
    record is buffered and locks are released, COMMITTED when the commit
    group is durable, ABORTED after rollback (voluntary or forced)."""

    ACTIVE = "active"
    PRECOMMITTED = "precommitted"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class BankTxn:
    """One server-side transaction's descriptor."""

    tid: int
    session_id: int
    state: TxnState = TxnState.ACTIVE
    #: Undo list of (record, old value), applied in reverse on rollback.
    undo: List[Tuple[int, Any]] = field(default_factory=list)
    #: Pre-committed transactions this one depends on (Section 5.2).
    dependencies: Set[int] = field(default_factory=set)
    #: Outstanding queued lock request, if a statement is blocked.
    waiting_for: Optional[Tuple[int, LockMode]] = None
    #: Why the transaction aborted (when it did).
    abort_reason: Optional[str] = None
    #: Size of the durable commit group this transaction rode in.
    group_size: int = 0
    statements: int = 0


class BankStore:
    """``n_accounts`` balances under strict 2PL and group commit."""

    def __init__(
        self,
        n_accounts: int,
        initial_balance: int = 100,
        group_size: int = 8,
        group_delay: float = 0.002,
        lock_wait_timeout: float = 5.0,
    ) -> None:
        if n_accounts < 1:
            raise ConfigurationError("bank needs at least one account")
        if group_size < 1:
            raise ConfigurationError("group_size must be >= 1")
        if group_delay < 0 or lock_wait_timeout <= 0:
            raise ConfigurationError(
                "group_delay must be >= 0 and lock_wait_timeout > 0"
            )
        self.n_accounts = n_accounts
        self.initial_balance = initial_balance
        self.group_size = group_size
        self.group_delay = group_delay
        self.lock_wait_timeout = lock_wait_timeout

        self._mu = tracked_lock("repro.server.BankStore._mu")
        self._cond = threading.Condition(self._mu)
        self.locks = LockTable()
        self.values: List[Any] = [initial_balance] * n_accounts
        self._txns: Dict[int, BankTxn] = {}
        self._tids = itertools.count(1)

        #: The durable log (survives :meth:`crash`) and the volatile
        #: buffer (lost by it).  Flushing moves buffer -> durable.
        self.log_durable: List[LogRecord] = []
        self._log_buffer: List[LogRecord] = []
        #: Pre-committed tids riding in the open (unsealed) commit group.
        self._group: List[int] = []
        self._group_opened_at = 0.0
        self.durable_tids: Set[int] = set()

        # Statistics (all guarded by _mu).
        self.commits = 0
        self.aborts = 0
        self.deadlocks = 0
        self.lock_waits = 0
        self.lock_timeouts = 0
        self.groups_flushed = 0
        self.group_txns_flushed = 0
        self.flush_reasons: Dict[str, int] = {"fill": 0, "timer": 0, "barrier": 0}

        self._crashed = False
        self._stop = False
        self._flusher = threading.Thread(
            target=self._flusher_loop, name="bank-group-commit", daemon=True
        )
        self._flusher.start()

    # -- transaction lifecycle -------------------------------------------------

    def begin(self, session_id: int = 0) -> int:
        """Open a transaction; returns its tid."""
        with self._mu:
            self._check_up()
            tid = next(self._tids)
            self._txns[tid] = BankTxn(tid=tid, session_id=session_id)
            self._log_buffer.append(("begin", tid))
            return tid

    def read_record(self, tid: int, record: int, wait: bool = True) -> Any:
        """Read ``record`` under a shared lock."""
        with self._mu:
            txn = self._active_txn(tid)
            self._acquire_locked(txn, record, LockMode.SHARED, wait)
            txn.statements += 1
            return self.values[record]

    def add_record(self, tid: int, record: int, delta: Any, wait: bool = True) -> Any:
        """Add ``delta`` to ``record`` under an exclusive lock; returns
        the new value.  This is the transfer building block: taking X up
        front avoids the S->X upgrade that two read-modify-write
        transactions can hang on."""
        with self._mu:
            txn = self._active_txn(tid)
            self._acquire_locked(txn, record, LockMode.EXCLUSIVE, wait)
            old = self.values[record]
            new = old + delta
            self._apply_write_locked(txn, record, old, new)
            txn.statements += 1
            return new

    def set_record(self, tid: int, record: int, value: Any, wait: bool = True) -> Any:
        """Overwrite ``record`` under an exclusive lock; returns the old
        value."""
        with self._mu:
            txn = self._active_txn(tid)
            self._acquire_locked(txn, record, LockMode.EXCLUSIVE, wait)
            old = self.values[record]
            self._apply_write_locked(txn, record, old, value)
            txn.statements += 1
            return old

    def commit(self, tid: int) -> Dict[str, Any]:
        """Pre-commit ``tid`` (buffer the commit record, release locks to
        the pre-committed sets, wake waiters) and block until its commit
        group is durable.  Returns commit metadata, including the size of
        the group the transaction was flushed with."""
        with self._mu:
            txn = self._active_txn(tid)
            if txn.waiting_for is not None:
                raise StateError(
                    "transaction %d cannot commit with a queued lock "
                    "request outstanding" % tid
                )
            # Dependencies that already reached the durable log impose no
            # ordering constraint (the paper: committed transactions are
            # removed from the dependency list).
            deps = tuple(sorted(txn.dependencies - self.durable_tids))
            if not txn.undo and not deps:
                # Read-only, and everything it read is already durable:
                # there is nothing to log, so the commit completes
                # without joining a group (it must not wait out the
                # group-delay timer -- nor lose to a crash).
                txn.state = TxnState.COMMITTED
                notices = self.locks.precommit(tid)
                self._route_notices(notices)
                self.locks.finalize_batch([tid])
                self.commits += 1
                return {"tid": tid, "group_size": 0, "dependencies": []}
            self._log_buffer.append(("commit", tid, deps))
            txn.state = TxnState.PRECOMMITTED
            notices = self.locks.precommit(tid)
            self._route_notices(notices)
            if not self._group:
                self._group_opened_at = time.monotonic()
            self._group.append(tid)
            self._cond.notify_all()
            while txn.state is TxnState.PRECOMMITTED:
                if self._crashed:
                    raise TransactionAborted(
                        "transaction %d pre-committed but its commit group "
                        "was lost in a crash" % tid,
                        reason="crash",
                    )
                self._cond.wait(0.05)
            if txn.state is not TxnState.COMMITTED:
                raise TransactionAborted(
                    "transaction %d lost before its group flushed" % tid,
                    reason=txn.abort_reason or "crash",
                )
            self.commits += 1
            return {
                "tid": tid,
                "group_size": txn.group_size,
                "dependencies": list(deps),
            }

    def await_grant(self, tid: int, timeout: Optional[float] = None) -> None:
        """Block until ``tid``'s queued lock request is granted.

        The admission-aware wait path: a statement that got
        :class:`~repro.errors.WouldBlock` parks its governor slot
        (``Governor.begin_wait``) and then waits *here*, consuming no
        admission capacity while blocked.  Returns once the grant
        arrived (the request's ``waiting_for`` marker stays set; the
        retried statement consumes it), returns immediately when there
        is no queued request.  Raises
        :class:`~repro.errors.TransactionAborted` if the transaction
        died while waiting (crash, disconnect rollback) and
        :class:`~repro.errors.QueryTimeout` -- after rolling the
        transaction back -- when the bounded wait expires, exactly like
        the in-line blocking mode.
        """
        with self._mu:
            txn = self._txns.get(tid)
            if txn is None:
                raise SessionError("unknown transaction id %r" % (tid,))
            if txn.state is not TxnState.ACTIVE:
                raise TransactionAborted(
                    "transaction %d was aborted while parked for a lock"
                    % tid,
                    reason=txn.abort_reason or "crash",
                )
            pending = txn.waiting_for
            if pending is None:
                return
            record, mode = pending
            bound = timeout if timeout is not None else self.lock_wait_timeout
            deadline = time.monotonic() + bound
            while not self._holds(tid, record, mode):
                if txn.state is not TxnState.ACTIVE:
                    raise TransactionAborted(
                        "transaction %d was aborted while parked for "
                        "record %d" % (tid, record),
                        reason=txn.abort_reason or "crash",
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.locks.cancel_wait(tid)
                    txn.waiting_for = None
                    self.lock_timeouts += 1
                    self._rollback_locked(txn, "lock-timeout")
                    raise QueryTimeout(
                        "transaction %d waited %.3gs for record %d; "
                        "aborted (lock waits are bounded, sessions "
                        "never hang)" % (tid, bound, record)
                    )
                self._cond.wait(remaining)

    def rollback(self, tid: int, reason: str = "requested") -> None:
        """Undo ``tid``'s writes and release its locks (no pre-commit)."""
        with self._mu:
            txn = self._txns.get(tid)
            if txn is None or txn.state is not TxnState.ACTIVE:
                raise SessionError(
                    "transaction %r is not active (state: %s)"
                    % (tid, txn.state.value if txn else "unknown")
                )
            if txn.waiting_for is not None:
                self.locks.cancel_wait(tid)
                txn.waiting_for = None
            self._rollback_locked(txn, reason)

    # -- internals (mutex held) ------------------------------------------------

    def _check_up(self) -> None:
        if self._crashed:
            raise SessionError("the bank store crashed; call recover() first")
        if self._stop:
            raise SessionError("the bank store is shut down")

    def _active_txn(self, tid: int) -> BankTxn:
        self._check_up()
        txn = self._txns.get(tid)
        if txn is None:
            raise SessionError("unknown transaction id %r" % (tid,))
        if txn.state is not TxnState.ACTIVE:
            raise SessionError(
                "transaction %d is %s, not active" % (tid, txn.state.value)
            )
        return txn

    def _holds(self, tid: int, record: int, mode: LockMode) -> bool:
        held = self.locks.holders(record).get(tid)
        if held is None:
            return False
        return held is LockMode.EXCLUSIVE or mode is LockMode.SHARED

    def _acquire_locked(
        self, txn: BankTxn, record: int, mode: LockMode, wait: bool
    ) -> None:
        if not 0 <= record < self.n_accounts:
            raise ConfigurationError(
                "record %d out of range [0, %d)" % (record, self.n_accounts)
            )
        if txn.waiting_for is not None:
            # Retry of a statement whose request is already queued
            # (wait=False mode): either the grant arrived, or we are
            # still in line.
            if txn.waiting_for != (record, mode):
                raise StateError(
                    "transaction %d retried %r while waiting for %r"
                    % (txn.tid, (record, mode), txn.waiting_for)
                )
            if self._holds(txn.tid, record, mode):
                txn.waiting_for = None
                return
        else:
            grant = self.locks.acquire(txn.tid, record, mode)
            if grant.granted:
                txn.dependencies.update(grant.dependencies)
                return
            txn.waiting_for = (record, mode)
            self.lock_waits += 1
        # The request is queued.  Deadlock is always checked by the
        # requester that (re)enters while blocked -- the closer of a
        # wait-for cycle finds it here and becomes the victim.
        cycle = self.locks.find_deadlock(txn.tid)
        if cycle is not None:
            self.locks.cancel_wait(txn.tid)
            txn.waiting_for = None
            self.deadlocks += 1
            self._rollback_locked(txn, "deadlock")
            raise TransactionAborted(
                "transaction %d aborted: wait-for cycle %s"
                % (txn.tid, " -> ".join(str(t) for t in cycle)),
                reason="deadlock",
            )
        if not wait:
            raise WouldBlock(
                "transaction %d queued for record %d (%s)"
                % (txn.tid, record, mode.value)
            )
        deadline = time.monotonic() + self.lock_wait_timeout
        while not self._holds(txn.tid, record, mode):
            if txn.state is not TxnState.ACTIVE:
                raise TransactionAborted(
                    "transaction %d was aborted while waiting for record %d"
                    % (txn.tid, record),
                    reason=txn.abort_reason or "crash",
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.locks.cancel_wait(txn.tid)
                txn.waiting_for = None
                self.lock_timeouts += 1
                self._rollback_locked(txn, "lock-timeout")
                raise QueryTimeout(
                    "transaction %d waited %.3gs for record %d; aborted "
                    "(lock waits are bounded, sessions never hang)"
                    % (txn.tid, self.lock_wait_timeout, record)
                )
            self._cond.wait(remaining)
        txn.waiting_for = None

    def _apply_write_locked(
        self, txn: BankTxn, record: int, old: Any, new: Any
    ) -> None:
        if self._crashed:
            # A crash while this writer waited on a record lock aborts
            # its transaction before it resumes; writing the lost memory
            # image here would corrupt recovery, so refuse loudly.
            raise SessionError(
                "the bank store crashed; call recover() first"
            )
        self._log_buffer.append(("update", txn.tid, record, old, new))
        self.values[record] = new
        txn.undo.append((record, old))

    def _rollback_locked(self, txn: BankTxn, reason: str) -> None:
        for record, old in reversed(txn.undo):
            self.values[record] = old
        self._log_buffer.append(("abort", txn.tid))
        txn.state = TxnState.ABORTED
        txn.abort_reason = reason
        self.aborts += 1
        notices = self.locks.abort(txn.tid)
        self._route_notices(notices)
        self._cond.notify_all()

    def _route_notices(self, notices) -> None:
        """Deliver grant notices: the grantee inherits the pre-committed
        dependencies and its blocked thread (if any) is woken."""
        for notice in notices:
            waiter = self._txns.get(notice.tid)
            if waiter is not None:
                waiter.dependencies.update(notice.dependencies)
        if notices:
            self._cond.notify_all()

    # -- the group-commit flusher ----------------------------------------------

    def _flusher_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stop and (self._crashed or not self._group):
                    self._cond.wait(0.05)
                if self._stop:
                    return
                deadline = self._group_opened_at + self.group_delay
                while (
                    not self._stop
                    and not self._crashed
                    and self._group
                    and len(self._group) < self.group_size
                    and time.monotonic() < deadline
                ):
                    self._cond.wait(max(0.0005, deadline - time.monotonic()))
                if self._stop:
                    return
                if self._crashed or not self._group:
                    continue
                reason = "fill" if len(self._group) >= self.group_size else "timer"
                self._flush_locked(reason)

    def _flush_locked(self, reason: str) -> None:
        """Seal the open group: one durable log write, one batched lock
        finalization for the whole group."""
        if self._crashed:
            return  # a severed store must not write its durable log
        group = self._group
        self._group = []
        self.log_durable.extend(self._log_buffer)
        self._log_buffer = []
        self.durable_tids.update(group)
        self.locks.finalize_batch(group)
        for tid in group:
            txn = self._txns[tid]
            txn.state = TxnState.COMMITTED
            txn.group_size = len(group)
        self.groups_flushed += 1
        self.group_txns_flushed += len(group)
        self.flush_reasons[reason] = self.flush_reasons.get(reason, 0) + 1
        self._cond.notify_all()

    def flush_now(self) -> int:
        """Seal the open commit group immediately (barrier flush);
        returns the number of transactions flushed."""
        with self._cond:
            if self._crashed or not self._group:
                return 0
            flushed = len(self._group)
            self._flush_locked("barrier")
            return flushed

    # -- faults and recovery ----------------------------------------------------

    def crash(self) -> Dict[str, int]:
        """Power cut: the buffered log, the open commit group, and every
        in-flight transaction are lost; the memory image is garbage.
        The durable log survives.  Returns what was lost."""
        with self._mu:
            lost_records = len(self._log_buffer)
            lost_group = len(self._group)
            self._log_buffer = []
            self._group = []
            killed = 0
            for txn in self._txns.values():
                if txn.state in (TxnState.ACTIVE, TxnState.PRECOMMITTED):
                    txn.state = TxnState.ABORTED
                    txn.abort_reason = "crash"
                    txn.waiting_for = None
                    killed += 1
            self.locks = LockTable()
            self._crashed = True
            self._cond.notify_all()
            return {
                "lost_log_records": lost_records,
                "lost_precommitted": lost_group,
                "killed_txns": killed,
            }

    def recover(self) -> Dict[str, Any]:
        """Restart after :meth:`crash`: redo the durable log's committed
        updates from the initial balances, exactly like the Section 5
        restart, then reopen for business."""
        with self._mu:
            if not self._crashed:
                raise SessionError("recover() without a crash")
            committed_order: List[int] = [
                rec[1] for rec in self.log_durable if rec[0] == "commit"
            ]
            committed = set(committed_order)
            values: List[Any] = [self.initial_balance] * self.n_accounts
            redone = 0
            for rec in self.log_durable:
                if rec[0] == "update" and rec[1] in committed:
                    values[rec[2]] = rec[4]
                    redone += 1
            self.values = values
            self.durable_tids = committed
            self._crashed = False
            self._cond.notify_all()
            return {
                "log_records_scanned": len(self.log_durable),
                "updates_redone": redone,
                "committed": len(committed),
                "commit_order": committed_order,
            }

    def commit_order(self) -> List[int]:
        """Durably committed tids in log (= serialization) order."""
        with self._mu:
            return [rec[1] for rec in self.log_durable if rec[0] == "commit"]

    # -- introspection -----------------------------------------------------------

    def audit_total(self) -> Any:
        """Sum of all balances right now (consistent only at quiescence:
        it reads under the mutex but takes no record locks)."""
        with self._mu:
            return sum(self.values)

    def balances(self) -> List[Any]:
        with self._mu:
            return list(self.values)

    def txn_info(self, tid: int) -> Optional[BankTxn]:
        with self._mu:
            return self._txns.get(tid)

    def bank_stats(self) -> Dict[str, Any]:
        with self._mu:
            return {
                "n_accounts": self.n_accounts,
                "commits": self.commits,
                "aborts": self.aborts,
                "deadlocks": self.deadlocks,
                "lock_waits": self.lock_waits,
                "lock_timeouts": self.lock_timeouts,
                "groups_flushed": self.groups_flushed,
                "mean_group_size": (
                    self.group_txns_flushed / self.groups_flushed
                    if self.groups_flushed
                    else 0.0
                ),
                "flush_reasons": dict(self.flush_reasons),
                "durable_log_records": len(self.log_durable),
                "buffered_log_records": len(self._log_buffer),
                "crashed": self._crashed,
            }

    def close(self) -> None:
        """Flush the open group and stop the flusher thread."""
        with self._cond:
            if not self._crashed and self._group:
                self._flush_locked("barrier")
            self._stop = True
            self._cond.notify_all()
        self._flusher.join(timeout=5.0)

    def __repr__(self) -> str:
        return "BankStore(%d accounts, %d commits, %d aborts)" % (
            self.n_accounts,
            self.commits,
            self.aborts,
        )


__all__ = ["BankStore", "BankTxn", "LogRecord", "TxnState"]
