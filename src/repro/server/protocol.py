"""The wire protocol: length-prefixed JSON statement/result frames.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  The client sends request frames::

    {"id": 7, "stmt": "SELECT name FROM emp WHERE salary > 50000"}

and the server answers each with exactly one response frame, either a
result::

    {"id": 7, "ok": true, "kind": "rows",
     "columns": ["name"], "rows": [["Smith"], ["Jackson"]],
     "counters": {"comparisons": 6, ...}, "meta": {...}}

or a typed error (the taxonomy class name travels with the message, plus
the machine-readable fields clients need: the statement ``position`` for
:class:`~repro.planner.sql.SqlError`, the admission ``reason`` for
:class:`~repro.errors.AdmissionRejected`, the abort ``reason`` for
:class:`~repro.errors.TransactionAborted`, ``retryable`` when the error
carries the :class:`~repro.errors.Retryable` marker so clients know a
resubmit is safe, and ``txn_aborted`` whenever the error also rolled the
session's open transaction back)::

    {"id": 7, "ok": false,
     "error": {"type": "SqlError", "message": "unknown column 'wat'",
               "position": 7}}

Frames are bounded by :data:`MAX_FRAME_BYTES`; anything larger, truncated,
or non-JSON raises :class:`~repro.errors.ProtocolError`.  The framing is
symmetric -- both sides use :func:`encode_frame` and :class:`FrameDecoder`.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Optional

from repro.errors import (
    AdmissionRejected,
    GovernorError,
    PlannerError,
    ProtocolError,
    QueryCancelled,
    QueryTimeout,
    ReproError,
    Retryable,
    SessionError,
    StateError,
    TransactionAborted,
    UnplannableQueryError,
    WouldBlock,
)
from repro.planner.sql import SqlError

#: Hard per-frame ceiling (requests and responses alike).  Statements are
#: human-sized; result sets over the banking workload fit comfortably.
MAX_FRAME_BYTES = 4 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Serialise one message to ``length || utf-8 json`` bytes."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame of %d bytes exceeds the %d-byte limit"
            % (len(body), MAX_FRAME_BYTES)
        )
    return _LENGTH.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    """Parse one frame body (the bytes after the length prefix)."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("frame body is not UTF-8 JSON: %s" % exc) from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            "frame body must be a JSON object, got %s"
            % type(payload).__name__
        )
    return payload


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary byte stream.

    Feed whatever chunks the transport produces; complete messages come
    back in order.  The decoder validates the length prefix eagerly so an
    oversized frame is rejected before its body is buffered.
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Absorb ``data``; return every message it completed."""
        self._buffer.extend(data)
        messages: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < _LENGTH.size:
                return messages
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > self.max_frame:
                raise ProtocolError(
                    "incoming frame of %d bytes exceeds the %d-byte limit"
                    % (length, self.max_frame)
                )
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                return messages
            body = bytes(self._buffer[_LENGTH.size:end])
            del self._buffer[:end]
            messages.append(decode_body(body))

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


# -- typed errors over the wire ------------------------------------------------

#: Taxonomy classes a response error payload can name.  The client
#: re-raises the *same* class, so ``except QueryTimeout`` works identically
#: in-process and across the wire.
_ERROR_TYPES = {
    cls.__name__: cls
    for cls in (
        AdmissionRejected,
        GovernorError,
        PlannerError,
        ProtocolError,
        QueryCancelled,
        QueryTimeout,
        ReproError,
        SessionError,
        SqlError,
        StateError,
        TransactionAborted,
        UnplannableQueryError,
        WouldBlock,
    )
}


def error_payload(exc: BaseException, txn_aborted: bool = False) -> Dict[str, Any]:
    """Encode an exception for the wire (typed fields included)."""
    name = type(exc).__name__
    if name not in _ERROR_TYPES:
        # Unknown subtype: degrade to the nearest named ancestor.
        for cls in type(exc).__mro__:
            if cls.__name__ in _ERROR_TYPES:
                name = cls.__name__
                break
        else:
            name = "ReproError"
    error: Dict[str, Any] = {"type": name, "message": str(exc)}
    position = getattr(exc, "position", None)
    if position is not None:
        error["position"] = position
    qid = getattr(exc, "qid", None)
    if qid is not None:
        error["qid"] = qid
    reason = getattr(exc, "reason", None)
    if reason is not None:
        error["reason"] = reason
    if isinstance(exc, Retryable):
        # Clients may safely resubmit: the server rolled back whatever
        # the statement did (and already spent its own retry budget).
        error["retryable"] = True
    if txn_aborted:
        error["txn_aborted"] = True
    return error


def raise_error(error: Dict[str, Any]) -> None:
    """Re-raise a response's error payload as its taxonomy class."""
    name = error.get("type", "ReproError")
    message = error.get("message", "unknown server error")
    cls = _ERROR_TYPES.get(name, ReproError)
    exc: ReproError
    if cls is SqlError:
        exc = SqlError(message, position=error.get("position"))
    elif cls is AdmissionRejected:
        exc = AdmissionRejected(
            message, qid=error.get("qid"), reason=error.get("reason", "queue-full")
        )
    elif cls is TransactionAborted:
        exc = TransactionAborted(message, reason=error.get("reason", "deadlock"))
    elif issubclass(cls, GovernorError):
        exc = cls(message, qid=error.get("qid"))
    else:
        exc = cls(message)
    for key in ("position", "reason", "retryable", "txn_aborted"):
        if key in error and not hasattr(exc, key):
            setattr(exc, key, error[key])
    raise exc


def request(stmt: str, msg_id: Optional[int] = None) -> Dict[str, Any]:
    """Build a request payload."""
    payload: Dict[str, Any] = {"stmt": stmt}
    if msg_id is not None:
        payload["id"] = msg_id
    return payload


__all__ = [
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "decode_body",
    "encode_frame",
    "error_payload",
    "raise_error",
    "request",
]
