"""A blocking client for the statement/result protocol.

Thin by design: one socket, one in-flight request at a time, typed errors
re-raised as their taxonomy classes (``except QueryTimeout`` behaves the
same over the wire as in-process).  The load driver opens many of these
from worker threads; the differential test uses one to mirror the
in-process path.
"""

from __future__ import annotations

import itertools
import socket
import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.server.protocol import FrameDecoder, encode_frame, raise_error, request

_READ_CHUNK = 64 * 1024
_LINGER_RST = struct.pack("ii", 1, 0)


class ServerClient:
    """One connection; statements go out, results or typed errors come
    back."""

    def __init__(
        self, host: str, port: int, timeout: Optional[float] = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._decoder = FrameDecoder()
        self._ids = itertools.count(1)
        self.closed = False
        hello = self._recv()
        if hello.get("kind") != "hello":
            raise ProtocolError(
                "expected a hello frame, got %r" % (hello.get("kind"),)
            )
        #: Server-assigned session id for this connection.
        self.session_id: int = hello["session"]

    # -- request/response ---------------------------------------------------------

    def _recv(self) -> Dict[str, Any]:
        while True:
            messages = self._decoder.feed(b"")
            if messages:
                return messages[0]
            data = self._sock.recv(_READ_CHUNK)
            if not data:
                raise ProtocolError(
                    "connection closed by server (%d bytes pending)"
                    % self._decoder.pending_bytes
                )
            messages = self._decoder.feed(data)
            if messages:
                return messages[0]

    def execute(self, stmt: str) -> Dict[str, Any]:
        """Run one statement; returns the response payload, or raises the
        server's error as its typed taxonomy class."""
        if self.closed:
            raise ProtocolError("client is closed")
        msg_id = next(self._ids)
        self._sock.sendall(encode_frame(request(stmt, msg_id)))
        response = self._recv()
        if not response.get("ok"):
            raise_error(response.get("error") or {})
        return response

    # -- conveniences --------------------------------------------------------------

    def rows(self, stmt: str) -> List[List[Any]]:
        """The result rows of a SQL statement."""
        return self.execute(stmt).get("rows", [])

    def value(self, stmt: str) -> Any:
        """The scalar result of a bank statement (GET/ADD/SET/AUDIT)."""
        return self.execute(stmt).get("value")

    def counters(self, stmt: str) -> Tuple[List[List[Any]], Dict[str, int]]:
        """Rows plus the per-statement operation-counter deltas."""
        response = self.execute(stmt)
        return response.get("rows", []), response.get("counters", {})

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Orderly goodbye (FIN); the server rolls back any open
        transaction."""
        if not self.closed:
            self.closed = True
            self._sock.close()

    def kill(self) -> None:
        """Abrupt disconnect (RST, no goodbye) -- the chaos tests' client
        that vanishes mid-transaction."""
        if not self.closed:
            self.closed = True
            self._sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, _LINGER_RST
            )
            self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return "ServerClient(session=%d%s)" % (
            self.session_id,
            ", closed" if self.closed else "",
        )


__all__ = ["ServerClient"]
