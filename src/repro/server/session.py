"""Sessions: per-connection transaction state over the shared engine.

A :class:`SessionManager` owns one :class:`~repro.core.MainMemoryDatabase`
(the relational facade) and one :class:`~repro.server.bank.BankStore` (the
Section 5 transactional record store); each connected client gets a
:class:`Session` that executes statements against both.

The statement language is deliberately tiny.  Bank statements drive the
concurrent transactional workload::

    BEGIN                  open a transaction
    GET <record>           read a balance          (S lock)
    ADD <record> <delta>   add to a balance        (X lock)
    SET <record> <value>   overwrite a balance     (X lock)
    COMMIT                 pre-commit, group-commit, wait for durability
    ROLLBACK               undo and release locks
    AUDIT                  sum of all balances (no locks; quiescent only)
    FLUSH                  barrier-flush the open commit group
    PING / STATS           liveness and introspection

and anything else is handed to the SQL front end
(:func:`repro.planner.sql.parse_sql` -> planner -> executor), so the full
``tests/test_sql.py`` corpus runs over the wire.

Concurrency contract:

* **Bank statements interleave freely** -- that is the point.  Each
  record-touching statement (GET/ADD/SET) is first admitted through the
  PR-3 governor (one page, the session's statement timeout), so admission
  control throttles the transactional load exactly like query load.
  Outside an open transaction these statements autocommit (implicit
  BEGIN + COMMIT around the single statement).
* **SQL statements serialize** on the manager's ``_sql_mu``: the
  relational facade (catalog, reuse cache, shared counters) is built
  single-threaded, and serializing here is what makes the per-statement
  counter deltas exact -- the differential test asserts byte-for-byte
  equality between the wire path and in-process execution.  Admission
  still applies (``db.execute`` admits internally).
* **Per-session reuse views**: under ``_sql_mu`` the session diffs the
  shared :class:`~repro.planner.reuse.PlanReuseCache` statistics around
  its statement, accumulating a private view of *its own* hits/misses --
  the shared cache stays shared (that is what makes cross-session reuse
  work), but each session can see what it contributed.

Aborts initiated by the system (deadlock victim, lock-wait timeout,
crash) roll the transaction back inside the store; the session clears its
transaction handle so the client's next statement starts clean, and the
wire layer flags the response with ``txn_aborted``.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.database import MainMemoryDatabase
from repro.errors import (
    QueryTimeout,
    SessionError,
    StateError,
    TransactionAborted,
)
from repro.lint.runtime import tracked_lock
from repro.planner.sql import SqlError
from repro.server.bank import BankStore

#: Reuse-cache statistic keys a session's view accumulates.
_REUSE_KEYS = ("hits", "misses", "invalidations", "evictions")

_TOKEN = re.compile(r"\S+")


@dataclass
class StatementResult:
    """One statement's outcome, ready for the wire or direct use.

    ``kind`` is ``"rows"`` (SQL result set), ``"value"`` (a scalar from a
    bank statement), or ``"ok"`` (an acknowledgement).
    """

    kind: str
    columns: Optional[List[str]] = None
    rows: Optional[List[List[Any]]] = None
    value: Any = None
    counters: Optional[Dict[str, int]] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    def payload(self, msg_id: Optional[int] = None) -> Dict[str, Any]:
        """The JSON-serialisable response body."""
        out: Dict[str, Any] = {"ok": True, "kind": self.kind}
        if msg_id is not None:
            out["id"] = msg_id
        if self.columns is not None:
            out["columns"] = self.columns
            out["rows"] = self.rows if self.rows is not None else []
        if self.kind == "value":
            out["value"] = self.value
        if self.counters is not None:
            out["counters"] = self.counters
        if self.meta:
            out["meta"] = self.meta
        return out


def _tokenize(stmt: str) -> List[Tuple[str, int]]:
    return [(m.group(), m.start()) for m in _TOKEN.finditer(stmt)]


def _int_arg(tokens: List[Tuple[str, int]], index: int, what: str) -> int:
    if index >= len(tokens):
        last = tokens[-1]
        raise SqlError(
            "missing %s" % what, position=last[1] + len(last[0])
        )
    text, pos = tokens[index]
    try:
        return int(text)
    except ValueError:
        raise SqlError(
            "expected integer %s, got %r" % (what, text), position=pos
        ) from None


def _exact_arity(tokens: List[Tuple[str, int]], arity: int) -> None:
    if len(tokens) > arity:
        text, pos = tokens[arity]
        raise SqlError(
            "unexpected trailing token %r" % text, position=pos
        )


class Session:
    """One client's statement-execution context."""

    def __init__(self, manager: "SessionManager", session_id: int) -> None:
        self.manager = manager
        self.session_id = session_id
        #: Open bank transaction id, or None.
        self.txn: Optional[int] = None
        self.closed = False
        self.statements = 0
        self.autocommits = 0
        #: This session's private view of shared reuse-cache activity.
        self.reuse_view: Dict[str, int] = {k: 0 for k in _REUSE_KEYS}

    # -- dispatch ----------------------------------------------------------------

    def execute(self, stmt: str) -> StatementResult:
        """Run one statement; raises taxonomy errors on failure."""
        if self.closed:
            raise SessionError("session %d is closed" % self.session_id)
        self.statements += 1
        tokens = _tokenize(stmt)
        if not tokens:
            raise SqlError("empty statement", position=0)
        verb = tokens[0][0].upper()
        handler = self._HANDLERS.get(verb)
        if handler is not None:
            return handler(self, tokens)
        return self._sql(stmt)

    # -- bank statements ----------------------------------------------------------

    def _require_txn(self) -> int:
        if self.txn is None:
            raise StateError(
                "session %d has no open transaction (BEGIN first)"
                % self.session_id
            )
        return self.txn

    def _do_begin(self, tokens) -> StatementResult:
        _exact_arity(tokens, 1)
        if self.txn is not None:
            raise StateError(
                "session %d already has transaction %d open"
                % (self.session_id, self.txn)
            )
        self.txn = self.manager.bank.begin(self.session_id)
        return StatementResult(kind="ok", meta={"txn": self.txn})

    def _do_commit(self, tokens) -> StatementResult:
        _exact_arity(tokens, 1)
        tid = self._require_txn()
        try:
            info = self.manager.bank.commit(tid)
        finally:
            # Whether the group flushed or the commit was lost to a
            # crash, the transaction is finished either way.
            self.txn = None
        return StatementResult(kind="ok", meta=info)

    def _do_rollback(self, tokens) -> StatementResult:
        _exact_arity(tokens, 1)
        tid = self._require_txn()
        try:
            self.manager.bank.rollback(tid)
        finally:
            self.txn = None
        return StatementResult(kind="ok", meta={"txn": tid})

    def _bank_op(self, record: int, op) -> Tuple[Any, int, bool]:
        """Run one record-touching operation under governor admission,
        autocommitting when no transaction is open."""
        mgr = self.manager
        handle = mgr.db.governor.admit(1, timeout=mgr.statement_timeout)
        try:
            auto = self.txn is None
            if auto:
                self.txn = mgr.bank.begin(self.session_id)
            tid = self.txn
            try:
                value = op(tid, record)
            except (TransactionAborted, QueryTimeout):
                # The store already rolled the transaction back.
                self.txn = None
                raise
            if auto:
                try:
                    mgr.bank.commit(tid)
                    self.autocommits += 1
                finally:
                    self.txn = None
            return value, tid, auto
        finally:
            mgr.db.governor.release(handle)

    def _do_get(self, tokens) -> StatementResult:
        record = _int_arg(tokens, 1, "record id")
        _exact_arity(tokens, 2)
        value, tid, auto = self._bank_op(
            record, lambda t, r: self.manager.bank.read_record(t, r)
        )
        return StatementResult(
            kind="value",
            value=value,
            meta={"record": record, "txn": tid, "autocommit": auto},
        )

    def _do_add(self, tokens) -> StatementResult:
        record = _int_arg(tokens, 1, "record id")
        delta = _int_arg(tokens, 2, "delta")
        _exact_arity(tokens, 3)
        value, tid, auto = self._bank_op(
            record, lambda t, r: self.manager.bank.add_record(t, r, delta)
        )
        return StatementResult(
            kind="value",
            value=value,
            meta={"record": record, "txn": tid, "autocommit": auto},
        )

    def _do_set(self, tokens) -> StatementResult:
        record = _int_arg(tokens, 1, "record id")
        value = _int_arg(tokens, 2, "value")
        _exact_arity(tokens, 3)
        old, tid, auto = self._bank_op(
            record, lambda t, r: self.manager.bank.set_record(t, r, value)
        )
        return StatementResult(
            kind="value",
            value=old,
            meta={"record": record, "txn": tid, "autocommit": auto},
        )

    def _do_audit(self, tokens) -> StatementResult:
        _exact_arity(tokens, 1)
        return StatementResult(
            kind="value", value=self.manager.bank.audit_total()
        )

    def _do_flush(self, tokens) -> StatementResult:
        _exact_arity(tokens, 1)
        flushed = self.manager.bank.flush_now()
        return StatementResult(kind="ok", meta={"flushed": flushed})

    def _do_ping(self, tokens) -> StatementResult:
        _exact_arity(tokens, 1)
        return StatementResult(kind="ok", meta={"session": self.session_id})

    def _do_stats(self, tokens) -> StatementResult:
        _exact_arity(tokens, 1)
        value = dict(self.manager.manager_stats())
        value["session"] = self.info()
        return StatementResult(kind="value", value=value)

    # -- SQL ----------------------------------------------------------------------

    def _sql(self, stmt: str) -> StatementResult:
        mgr = self.manager
        with mgr._sql_mu:
            before = mgr.db.counters.snapshot()
            reuse_before = mgr.db.reuse_stats()
            rel = mgr.db.sql(stmt, timeout=mgr.statement_timeout)
            delta = mgr.db.counters.snapshot() - before
            reuse_after = mgr.db.reuse_stats()
            for key in _REUSE_KEYS:
                self.reuse_view[key] += reuse_after[key] - reuse_before[key]
            return StatementResult(
                kind="rows",
                columns=list(rel.schema.names),
                rows=[list(row) for _, row in rel.scan()],
                counters=delta.as_dict(),
            )

    # -- lifecycle ---------------------------------------------------------------

    def close(self, reason: str = "disconnect") -> None:
        """End the session; an open transaction is rolled back with
        ``reason`` (the mid-transaction-disconnect guarantee)."""
        if self.closed:
            return
        self.closed = True
        tid, self.txn = self.txn, None
        if tid is not None:
            try:
                self.manager.bank.rollback(tid, reason)
            except SessionError:
                # Already dead (aborted by deadlock or lost in a crash).
                pass

    def info(self) -> Dict[str, Any]:
        return {
            "session": self.session_id,
            "txn": self.txn,
            "statements": self.statements,
            "autocommits": self.autocommits,
            "reuse_view": dict(self.reuse_view),
            "closed": self.closed,
        }

    _HANDLERS = {
        "BEGIN": _do_begin,
        "COMMIT": _do_commit,
        "ROLLBACK": _do_rollback,
        "ABORT": _do_rollback,
        "GET": _do_get,
        "ADD": _do_add,
        "SET": _do_set,
        "AUDIT": _do_audit,
        "FLUSH": _do_flush,
        "PING": _do_ping,
        "STATS": _do_stats,
    }

    def __repr__(self) -> str:
        return "Session(%d, txn=%s, %d statements)" % (
            self.session_id,
            self.txn,
            self.statements,
        )


class SessionManager:
    """The shared engine plus the registry of live sessions."""

    def __init__(
        self,
        db: Optional[MainMemoryDatabase] = None,
        bank: Optional[BankStore] = None,
        n_accounts: int = 64,
        initial_balance: int = 100,
        statement_timeout: float = 5.0,
        group_size: int = 8,
        group_delay: float = 0.002,
        lock_wait_timeout: float = 5.0,
    ) -> None:
        self.db = db if db is not None else MainMemoryDatabase()
        self.bank = (
            bank
            if bank is not None
            else BankStore(
                n_accounts,
                initial_balance=initial_balance,
                group_size=group_size,
                group_delay=group_delay,
                lock_wait_timeout=lock_wait_timeout,
            )
        )
        self.statement_timeout = statement_timeout
        self._mu = tracked_lock("repro.server.SessionManager._mu")
        #: Serialises relational (SQL) statements; see the module docstring.
        self._sql_mu = tracked_lock("repro.server.SessionManager._sql_mu")
        self._sids = itertools.count(1)
        self._sessions: Dict[int, Session] = {}

    # -- session registry ---------------------------------------------------------

    def open_session(self) -> Session:
        with self._mu:
            sid = next(self._sids)
            session = Session(self, sid)
            self._sessions[sid] = session
            return session

    def session(self, session_id: int) -> Session:
        with self._mu:
            found = self._sessions.get(session_id)
        if found is None:
            raise SessionError("unknown session id %r" % (session_id,))
        return found

    def close_session(self, session_id: int, reason: str = "disconnect") -> bool:
        """Close (and deregister) a session, rolling back its open
        transaction.  Returns False when the id is unknown."""
        with self._mu:
            session = self._sessions.pop(session_id, None)
        if session is None:
            return False
        session.close(reason)
        return True

    def execute(self, session_id: int, stmt: str) -> StatementResult:
        """Convenience: run ``stmt`` on session ``session_id``."""
        return self.session(session_id).execute(stmt)

    def session_count(self) -> int:
        with self._mu:
            return len(self._sessions)

    # -- faults -------------------------------------------------------------------

    def crash(self) -> Dict[str, int]:
        """Crash the bank store and sever every session (their open
        transactions die with the volatile state)."""
        report = self.bank.crash()
        with self._mu:
            victims = list(self._sessions.values())
            self._sessions.clear()
        for session in victims:
            session.close("crash")
        report["closed_sessions"] = len(victims)
        return report

    def recover(self) -> Dict[str, Any]:
        return self.bank.recover()

    # -- reporting ----------------------------------------------------------------

    def manager_stats(self) -> Dict[str, Any]:
        with self._mu:
            sessions = [s.info() for s in self._sessions.values()]
        return {
            "sessions": sessions,
            "session_count": len(sessions),
            "bank": self.bank.bank_stats(),
            "governor": self.db.governor_stats(),
            "reuse": self.db.reuse_stats(),
        }

    def close(self) -> None:
        """Close every session and stop the bank's flusher."""
        with self._mu:
            victims = list(self._sessions.values())
            self._sessions.clear()
        for session in victims:
            session.close("shutdown")
        self.bank.close()

    def __repr__(self) -> str:
        return "SessionManager(%d sessions)" % self.session_count()


__all__ = ["Session", "SessionManager", "StatementResult"]
