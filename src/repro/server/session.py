"""Sessions: per-connection transaction state over the shared engine.

A :class:`SessionManager` owns one :class:`~repro.core.MainMemoryDatabase`
(the relational facade) and one :class:`~repro.server.bank.BankStore` (the
Section 5 transactional record store); each connected client gets a
:class:`Session` that executes statements against both.

The statement language is deliberately tiny.  Bank statements drive the
concurrent transactional workload::

    BEGIN                  open a transaction
    GET <record>           read a balance          (S lock)
    ADD <record> <delta>   add to a balance        (X lock)
    SET <record> <value>   overwrite a balance     (X lock)
    COMMIT                 pre-commit, group-commit, wait for durability
    ROLLBACK               undo and release locks
    AUDIT                  sum of all balances (no locks; quiescent only)
    FLUSH                  barrier-flush the open commit group
    PING / STATS           liveness and introspection

and anything else is handed to the SQL front end
(:func:`repro.planner.sql.parse_sql` -> planner -> executor), so the full
``tests/test_sql.py`` corpus runs over the wire.

Concurrency contract:

* **Bank statements interleave freely** -- that is the point.  Each
  record-touching statement (GET/ADD/SET) is first admitted through the
  PR-3 governor (one page, the session's statement timeout), so admission
  control throttles the transactional load exactly like query load.
  Outside an open transaction these statements autocommit (implicit
  BEGIN + COMMIT around the single statement).
* **Lock waits are admission-aware**: record operations run in
  non-blocking mode, and when the Section 5 lock table queues the
  request the statement *parks* its governor slot
  (``Governor.begin_wait``), waits for the grant holding no admission
  capacity (:meth:`~repro.server.bank.BankStore.await_grant`), then
  reacquires the slot (``Governor.end_wait``) and retries.  Admission
  measures statements running, not statements blocked, so overload
  degrades into a throughput plateau instead of a collapse.
* **Read-only SQL runs concurrently**: the facade's sharded counters
  attribute charges to the executing thread
  (``counters.thread_snapshot``) and the reuse cache keeps per-thread
  tallies (``reuse.thread_stats``), so per-statement deltas stay exact
  -- byte-for-byte equal to in-process execution, which the
  differential suite asserts -- without a statement-serialising lock.
  The catalog read-write lock lets any number of SELECTs share the read
  side while DDL/DML briefly take the write side.  (With plain
  unsharded counters the manager falls back to serialising SQL under
  ``_sql_serial_mu`` to keep the snapshot diffs exact.)
* **Per-session reuse views**: each session diffs its *thread's* view of
  the shared :class:`~repro.planner.reuse.PlanReuseCache` around its
  statement, accumulating what *it* contributed -- the shared cache
  stays shared (that is what makes cross-session reuse work).
* **Transient failures retry**: a statement that entered with no open
  transaction is idempotent by rollback, so
  :class:`~repro.errors.Retryable` failures (deadlock victimhood) are
  retried inside the server under the manager's
  :class:`~repro.server.retry.RetryPolicy` -- capped exponential
  backoff with seeded full jitter.  Retry exhaustion re-raises the
  original error, reason intact.

Aborts initiated by the system (deadlock victim, lock-wait timeout,
crash) roll the transaction back inside the store; the session clears its
transaction handle so the client's next statement starts clean, and the
wire layer flags the response with ``txn_aborted``.
"""

from __future__ import annotations

import itertools
import random
import re
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.database import MainMemoryDatabase
from repro.errors import (
    QueryTimeout,
    ReproError,
    Retryable,
    SessionError,
    StateError,
    TransactionAborted,
    WouldBlock,
)
from repro.lint.runtime import tracked_lock
from repro.planner.sql import SqlError
from repro.server.bank import BankStore
from repro.server.retry import RetryPolicy

#: Reuse-cache statistic keys a session's view accumulates.
_REUSE_KEYS = ("hits", "misses", "invalidations", "evictions")

_TOKEN = re.compile(r"\S+")


@dataclass
class StatementResult:
    """One statement's outcome, ready for the wire or direct use.

    ``kind`` is ``"rows"`` (SQL result set), ``"value"`` (a scalar from a
    bank statement), or ``"ok"`` (an acknowledgement).
    """

    kind: str
    columns: Optional[List[str]] = None
    rows: Optional[List[List[Any]]] = None
    value: Any = None
    counters: Optional[Dict[str, int]] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    def payload(self, msg_id: Optional[int] = None) -> Dict[str, Any]:
        """The JSON-serialisable response body."""
        out: Dict[str, Any] = {"ok": True, "kind": self.kind}
        if msg_id is not None:
            out["id"] = msg_id
        if self.columns is not None:
            out["columns"] = self.columns
            out["rows"] = self.rows if self.rows is not None else []
        if self.kind == "value":
            out["value"] = self.value
        if self.counters is not None:
            out["counters"] = self.counters
        if self.meta:
            out["meta"] = self.meta
        return out


def _tokenize(stmt: str) -> List[Tuple[str, int]]:
    return [(m.group(), m.start()) for m in _TOKEN.finditer(stmt)]


def _int_arg(tokens: List[Tuple[str, int]], index: int, what: str) -> int:
    if index >= len(tokens):
        last = tokens[-1]
        raise SqlError(
            "missing %s" % what, position=last[1] + len(last[0])
        )
    text, pos = tokens[index]
    try:
        return int(text)
    except ValueError:
        raise SqlError(
            "expected integer %s, got %r" % (what, text), position=pos
        ) from None


def _exact_arity(tokens: List[Tuple[str, int]], arity: int) -> None:
    if len(tokens) > arity:
        text, pos = tokens[arity]
        raise SqlError(
            "unexpected trailing token %r" % text, position=pos
        )


class Session:
    """One client's statement-execution context."""

    def __init__(self, manager: "SessionManager", session_id: int) -> None:
        self.manager = manager
        self.session_id = session_id
        #: Open bank transaction id, or None.
        self.txn: Optional[int] = None
        self.closed = False
        self.statements = 0
        self.autocommits = 0
        #: Times a statement parked its admission slot to wait for a lock.
        self.lock_parks = 0
        #: Automatic server-side retries of idempotent statements.
        self.retries = 0
        #: Seeded per-session jitter source: retry schedules reproduce.
        self._rng = random.Random(0x1984 ^ (session_id * 7919))
        #: This session's private view of shared reuse-cache activity.
        self.reuse_view: Dict[str, int] = {k: 0 for k in _REUSE_KEYS}

    # -- dispatch ----------------------------------------------------------------

    def execute(self, stmt: str) -> StatementResult:
        """Run one statement; raises taxonomy errors on failure.

        A statement that *entered* with no transaction open is idempotent
        by rollback -- whatever it did was undone -- so on a
        :class:`~repro.errors.Retryable` failure (deadlock victimhood)
        the server retries it under the manager's
        :class:`~repro.server.retry.RetryPolicy` with seeded full-jitter
        backoff.  Statements inside an explicit transaction are never
        retried (the client owns that recovery), and exhaustion re-raises
        the *original* error with its reason intact.
        """
        if self.closed:
            raise SessionError("session %d is closed" % self.session_id)
        self.statements += 1
        tokens = _tokenize(stmt)
        if not tokens:
            raise SqlError("empty statement", position=0)
        verb = tokens[0][0].upper()
        handler = self._HANDLERS.get(verb)
        policy = self.manager.retry_policy
        can_retry = policy is not None and self.txn is None
        attempt = 0
        while True:
            try:
                if handler is not None:
                    return handler(self, tokens)
                return self._sql(stmt)
            except ReproError as exc:
                if (
                    not can_retry
                    or not isinstance(exc, Retryable)
                    or self.txn is not None
                    or self.closed
                    or not policy.retries_left(attempt + 1)
                ):
                    raise
                time.sleep(policy.backoff(attempt, self._rng))
                attempt += 1
                self.retries += 1

    # -- bank statements ----------------------------------------------------------

    def _require_txn(self) -> int:
        if self.txn is None:
            raise StateError(
                "session %d has no open transaction (BEGIN first)"
                % self.session_id
            )
        return self.txn

    def _do_begin(self, tokens) -> StatementResult:
        _exact_arity(tokens, 1)
        if self.txn is not None:
            raise StateError(
                "session %d already has transaction %d open"
                % (self.session_id, self.txn)
            )
        self.txn = self.manager.bank.begin(self.session_id)
        return StatementResult(kind="ok", meta={"txn": self.txn})

    def _do_commit(self, tokens) -> StatementResult:
        _exact_arity(tokens, 1)
        tid = self._require_txn()
        try:
            info = self.manager.bank.commit(tid)
        finally:
            # Whether the group flushed or the commit was lost to a
            # crash, the transaction is finished either way.
            self.txn = None
        return StatementResult(kind="ok", meta=info)

    def _do_rollback(self, tokens) -> StatementResult:
        _exact_arity(tokens, 1)
        tid = self._require_txn()
        try:
            self.manager.bank.rollback(tid)
        finally:
            self.txn = None
        return StatementResult(kind="ok", meta={"txn": tid})

    def _bank_op(self, record: int, op) -> Tuple[Any, int, bool]:
        """Run one record-touching operation under governor admission,
        autocommitting when no transaction is open.

        The operation runs in non-blocking mode; on
        :class:`~repro.errors.WouldBlock` the statement parks its
        admission slot, waits for the lock grant holding no capacity,
        reacquires the slot, and retries -- the retried call consumes
        the grant the lock table queued for it.  The single ``finally``
        releases the handle active *or* parked, so no exit path (abort,
        timeout, crash signal) leaks admission capacity.
        """
        mgr = self.manager
        gov = mgr.db.governor
        handle = gov.admit(1, timeout=mgr.statement_timeout)
        try:
            auto = self.txn is None
            if auto:
                self.txn = mgr.bank.begin(self.session_id)
            tid = self.txn
            try:
                while True:
                    try:
                        value = op(tid, record)
                        break
                    except WouldBlock:
                        self.lock_parks += 1
                        gov.begin_wait(handle)
                        mgr.db._chaos_point("bank park %d" % record)
                        mgr.bank.await_grant(tid)
                        mgr.db._chaos_point("bank unpark %d" % record)
                        try:
                            gov.end_wait(
                                handle, timeout=mgr.statement_timeout
                            )
                        except QueryTimeout:
                            # The slot never came back, and the grant we
                            # now hold would run uncounted.  Give it up.
                            mgr.bank.rollback(tid, "admission")
                            raise TransactionAborted(
                                "transaction %d aborted: statement could"
                                " not reacquire its admission slot" % tid,
                                reason="admission",
                            ) from None
            except (TransactionAborted, QueryTimeout):
                # The store already rolled the transaction back.
                self.txn = None
                raise
            if auto:
                try:
                    mgr.bank.commit(tid)
                    self.autocommits += 1
                finally:
                    self.txn = None
            return value, tid, auto
        finally:
            gov.release(handle)

    def _do_get(self, tokens) -> StatementResult:
        record = _int_arg(tokens, 1, "record id")
        _exact_arity(tokens, 2)
        value, tid, auto = self._bank_op(
            record,
            lambda t, r: self.manager.bank.read_record(t, r, wait=False),
        )
        return StatementResult(
            kind="value",
            value=value,
            meta={"record": record, "txn": tid, "autocommit": auto},
        )

    def _do_add(self, tokens) -> StatementResult:
        record = _int_arg(tokens, 1, "record id")
        delta = _int_arg(tokens, 2, "delta")
        _exact_arity(tokens, 3)
        value, tid, auto = self._bank_op(
            record,
            lambda t, r: self.manager.bank.add_record(
                t, r, delta, wait=False
            ),
        )
        return StatementResult(
            kind="value",
            value=value,
            meta={"record": record, "txn": tid, "autocommit": auto},
        )

    def _do_set(self, tokens) -> StatementResult:
        record = _int_arg(tokens, 1, "record id")
        value = _int_arg(tokens, 2, "value")
        _exact_arity(tokens, 3)
        old, tid, auto = self._bank_op(
            record,
            lambda t, r: self.manager.bank.set_record(
                t, r, value, wait=False
            ),
        )
        return StatementResult(
            kind="value",
            value=old,
            meta={"record": record, "txn": tid, "autocommit": auto},
        )

    def _do_audit(self, tokens) -> StatementResult:
        _exact_arity(tokens, 1)
        return StatementResult(
            kind="value", value=self.manager.bank.audit_total()
        )

    def _do_flush(self, tokens) -> StatementResult:
        _exact_arity(tokens, 1)
        flushed = self.manager.bank.flush_now()
        return StatementResult(kind="ok", meta={"flushed": flushed})

    def _do_ping(self, tokens) -> StatementResult:
        _exact_arity(tokens, 1)
        return StatementResult(kind="ok", meta={"session": self.session_id})

    def _do_stats(self, tokens) -> StatementResult:
        _exact_arity(tokens, 1)
        value = dict(self.manager.manager_stats())
        value["session"] = self.info()
        return StatementResult(kind="value", value=value)

    # -- SQL ----------------------------------------------------------------------

    def _sql(self, stmt: str) -> StatementResult:
        mgr = self.manager
        db = mgr.db
        thread_snapshot = getattr(db.counters, "thread_snapshot", None)
        if thread_snapshot is None:
            # Plain shared counters cannot attribute charges to a
            # thread; keep the legacy serialised path so the global
            # snapshot diff stays exact.
            with mgr._sql_serial_mu:
                before = db.counters.snapshot()
                reuse_before = db.reuse_stats()
                # Serialising the whole statement under _sql_serial_mu is
                # the point of this fallback: without per-thread counters
                # the snapshot diff is only exact if nothing interleaves.
                # repro-lint: disable=blocking-under-lock
                rel = db.sql(stmt, timeout=mgr.statement_timeout)
                delta = db.counters.snapshot() - before
                reuse_after = db.reuse_stats()
                for key in _REUSE_KEYS:
                    self.reuse_view[key] += (
                        reuse_after[key] - reuse_before[key]
                    )
        else:
            # Sharded counters: this thread's shard sees exactly this
            # statement's charges and the reuse cache keeps per-thread
            # tallies, so read-only SQL interleaves freely while the
            # per-statement deltas stay byte-exact.
            reuse = db.reuse
            before = thread_snapshot()
            reuse_before = (
                reuse.thread_stats() if reuse is not None else None
            )
            rel = db.sql(stmt, timeout=mgr.statement_timeout)
            delta = thread_snapshot() - before
            if reuse is not None and reuse_before is not None:
                reuse_after = reuse.thread_stats()
                for key in _REUSE_KEYS:
                    self.reuse_view[key] += (
                        reuse_after[key] - reuse_before[key]
                    )
        return StatementResult(
            kind="rows",
            columns=list(rel.schema.names),
            rows=[list(row) for _, row in rel.scan()],
            counters=delta.as_dict(),
        )

    # -- lifecycle ---------------------------------------------------------------

    def close(self, reason: str = "disconnect") -> None:
        """End the session; an open transaction is rolled back with
        ``reason`` (the mid-transaction-disconnect guarantee)."""
        if self.closed:
            return
        self.closed = True
        tid, self.txn = self.txn, None
        if tid is not None:
            try:
                self.manager.bank.rollback(tid, reason)
            except SessionError:
                # Already dead (aborted by deadlock or lost in a crash).
                pass

    def info(self) -> Dict[str, Any]:
        return {
            "session": self.session_id,
            "txn": self.txn,
            "statements": self.statements,
            "autocommits": self.autocommits,
            "lock_parks": self.lock_parks,
            "retries": self.retries,
            "reuse_view": dict(self.reuse_view),
            "closed": self.closed,
        }

    _HANDLERS = {
        "BEGIN": _do_begin,
        "COMMIT": _do_commit,
        "ROLLBACK": _do_rollback,
        "ABORT": _do_rollback,
        "GET": _do_get,
        "ADD": _do_add,
        "SET": _do_set,
        "AUDIT": _do_audit,
        "FLUSH": _do_flush,
        "PING": _do_ping,
        "STATS": _do_stats,
    }

    def __repr__(self) -> str:
        return "Session(%d, txn=%s, %d statements)" % (
            self.session_id,
            self.txn,
            self.statements,
        )


class SessionManager:
    """The shared engine plus the registry of live sessions."""

    def __init__(
        self,
        db: Optional[MainMemoryDatabase] = None,
        bank: Optional[BankStore] = None,
        n_accounts: int = 64,
        initial_balance: int = 100,
        statement_timeout: float = 5.0,
        group_size: int = 8,
        group_delay: float = 0.002,
        lock_wait_timeout: float = 5.0,
        retry_policy: Optional[RetryPolicy] = None,
        auto_retry: bool = True,
    ) -> None:
        self.db = db if db is not None else MainMemoryDatabase()
        self.bank = (
            bank
            if bank is not None
            else BankStore(
                n_accounts,
                initial_balance=initial_balance,
                group_size=group_size,
                group_delay=group_delay,
                lock_wait_timeout=lock_wait_timeout,
            )
        )
        self.statement_timeout = statement_timeout
        #: Server-side retry of idempotent statements; None disables.
        self.retry_policy: Optional[RetryPolicy] = (
            retry_policy
            if retry_policy is not None
            else (RetryPolicy() if auto_retry else None)
        )
        self._mu = tracked_lock("repro.server.SessionManager._mu")
        #: Fallback serialisation for SQL when the facade was built with
        #: plain (unsharded) counters; unused with the default database.
        self._sql_serial_mu = tracked_lock(
            "repro.server.SessionManager._sql_serial_mu"
        )
        self._sids = itertools.count(1)
        self._sessions: Dict[int, Session] = {}

    # -- session registry ---------------------------------------------------------

    def open_session(self) -> Session:
        with self._mu:
            sid = next(self._sids)
            session = Session(self, sid)
            self._sessions[sid] = session
            return session

    def session(self, session_id: int) -> Session:
        with self._mu:
            found = self._sessions.get(session_id)
        if found is None:
            raise SessionError("unknown session id %r" % (session_id,))
        return found

    def close_session(self, session_id: int, reason: str = "disconnect") -> bool:
        """Close (and deregister) a session, rolling back its open
        transaction.  Returns False when the id is unknown."""
        with self._mu:
            session = self._sessions.pop(session_id, None)
        if session is None:
            return False
        session.close(reason)
        return True

    def execute(self, session_id: int, stmt: str) -> StatementResult:
        """Convenience: run ``stmt`` on session ``session_id``."""
        return self.session(session_id).execute(stmt)

    def session_count(self) -> int:
        with self._mu:
            return len(self._sessions)

    # -- faults -------------------------------------------------------------------

    def crash(self) -> Dict[str, int]:
        """Crash the bank store and sever every session (their open
        transactions die with the volatile state)."""
        report = self.bank.crash()
        with self._mu:
            victims = list(self._sessions.values())
            self._sessions.clear()
        for session in victims:
            session.close("crash")
        report["closed_sessions"] = len(victims)
        return report

    def recover(self) -> Dict[str, Any]:
        return self.bank.recover()

    # -- reporting ----------------------------------------------------------------

    def manager_stats(self) -> Dict[str, Any]:
        with self._mu:
            sessions = [s.info() for s in self._sessions.values()]
        return {
            "sessions": sessions,
            "session_count": len(sessions),
            "bank": self.bank.bank_stats(),
            "governor": self.db.governor_stats(),
            "reuse": self.db.reuse_stats(),
            "concurrency": self.db.concurrency_stats(),
        }

    def close(self) -> None:
        """Close every session and stop the bank's flusher."""
        with self._mu:
            victims = list(self._sessions.values())
            self._sessions.clear()
        for session in victims:
            session.close("shutdown")
        self.bank.close()

    def __repr__(self) -> str:
        return "SessionManager(%d sessions)" % self.session_count()


__all__ = ["Session", "SessionManager", "StatementResult"]
