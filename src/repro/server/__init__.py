"""The multi-session server (docs/SERVER.md).

Layers, bottom up:

* :mod:`repro.server.bank` -- the Section 5 transactional record store
  (real threads over the shared lock table, pre-commit, group commit,
  crash/recover).
* :mod:`repro.server.session` -- per-connection sessions: the statement
  language, BEGIN/COMMIT/ROLLBACK, admission-aware lock waits,
  per-session reuse-cache views, automatic retry of idempotent
  statements, and the SQL bridge.
* :mod:`repro.server.retry` -- the capped-jitter
  :class:`~repro.server.retry.RetryPolicy` the sessions retry under.
* :mod:`repro.server.protocol` -- length-prefixed JSON frames and the
  typed-error wire mapping.
* :mod:`repro.server.net` / :mod:`repro.server.client` -- the asyncio
  server and the blocking client.

``python -m repro.server`` starts a standalone server.
"""

from repro.server.bank import BankStore, BankTxn, TxnState
from repro.server.client import ServerClient
from repro.server.net import DatabaseServer
from repro.server.protocol import (
    FrameDecoder,
    MAX_FRAME_BYTES,
    decode_body,
    encode_frame,
    error_payload,
    raise_error,
    request,
)
from repro.server.retry import RetryPolicy
from repro.server.session import Session, SessionManager, StatementResult

__all__ = [
    "BankStore",
    "BankTxn",
    "DatabaseServer",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "RetryPolicy",
    "ServerClient",
    "Session",
    "SessionManager",
    "StatementResult",
    "TxnState",
    "decode_body",
    "encode_frame",
    "error_payload",
    "raise_error",
    "request",
]
