"""Standalone server entry point.

Usage::

    python -m repro.server [--host H] [--port P] [--accounts N]
                           [--balance B] [--workers W]

Starts the asyncio statement server on a demo engine (the banking record
store plus an empty relational catalog) and serves until interrupted.
Port 0 picks a free port; the bound address is printed either way.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from repro.server.net import DatabaseServer


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve the statement/result protocol over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--accounts", type=int, default=64)
    parser.add_argument("--balance", type=int, default=100)
    parser.add_argument("--workers", type=int, default=32)
    args = parser.parse_args(argv)

    server = DatabaseServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        n_accounts=args.accounts,
        initial_balance=args.balance,
    )
    host, port = server.start_in_thread()
    print("serving on %s:%d (%d accounts)" % (host, port, args.accounts))
    sys.stdout.flush()
    try:
        server._thread.join()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
