"""The asyncio socket server: N concurrent connections, one session each.

The event loop owns the sockets; statement execution happens on a thread
pool (statements block -- on record locks, on governor admission, on the
group-commit flush -- and must not stall the loop).  Each accepted
connection gets a fresh :class:`~repro.server.session.Session`; the
server greets it with a ``hello`` frame carrying the session id, then
answers every request frame with exactly one response frame.

Failure semantics (the chaos tests drive all three):

* **Client disconnect** (EOF or reset) mid-transaction: the connection
  handler closes the session, which rolls the open transaction back with
  reason ``"disconnect"`` and releases its locks.
* **Typed errors** never kill the connection: they are encoded with
  :func:`~repro.server.protocol.error_payload` (including the
  ``txn_aborted`` flag when the statement's failure also rolled the
  session's transaction back) and the conversation continues.
* **Server crash** (:meth:`DatabaseServer.crash`): the store loses its
  volatile state mid-commit, every session dies, every connection is
  severed; :meth:`DatabaseServer.recover` restores the durable image and
  new connections proceed.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Set, Tuple

from repro.errors import ProtocolError, ReproError, StateError
from repro.server.protocol import FrameDecoder, encode_frame, error_payload
from repro.server.session import Session, SessionManager

_READ_CHUNK = 64 * 1024


class DatabaseServer:
    """Serve a :class:`SessionManager` over a TCP socket."""

    def __init__(
        self,
        manager: Optional[SessionManager] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 32,
        **manager_kwargs: Any,
    ) -> None:
        self.manager = (
            manager if manager is not None else SessionManager(**manager_kwargs)
        )
        self.host = host
        self.port = port
        #: (host, port) actually bound, available once serving starts.
        self.address: Optional[Tuple[str, int]] = None
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="stmt"
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        # Wire statistics (loop-thread only, no lock needed).
        self.connections_accepted = 0
        self.frames_in = 0
        self.frames_out = 0
        self.errors_returned = 0
        self.disconnects = 0

    # -- connection handling -----------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_accepted += 1
        self._writers.add(writer)
        session = self.manager.open_session()
        decoder = FrameDecoder()
        try:
            await self._send(
                writer,
                {"ok": True, "kind": "hello", "session": session.session_id},
            )
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                try:
                    messages = decoder.feed(data)
                except ProtocolError as exc:
                    # Framing is broken; report once and hang up.
                    await self._send(
                        writer, {"ok": False, "error": error_payload(exc)}
                    )
                    self.errors_returned += 1
                    break
                for message in messages:
                    self.frames_in += 1
                    response = await self._respond(session, message)
                    await self._send(writer, response)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Event-loop teardown (stop()): finish cleanly so the session
            # still gets closed below.
            pass
        finally:
            self.disconnects += 1
            self._writers.discard(writer)
            self.manager.close_session(session.session_id, "disconnect")
            writer.close()

    async def _send(
        self, writer: asyncio.StreamWriter, payload: Dict[str, Any]
    ) -> None:
        writer.write(encode_frame(payload))
        self.frames_out += 1
        await writer.drain()

    async def _respond(
        self, session: Session, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        msg_id = message.get("id")
        stmt = message.get("stmt")
        if not isinstance(stmt, str):
            self.errors_returned += 1
            error = error_payload(
                ProtocolError("request frame needs a string 'stmt' field")
            )
            return {"id": msg_id, "ok": False, "error": error}
        had_txn = session.txn is not None
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                self._pool, session.execute, stmt
            )
            return result.payload(msg_id)
        except ReproError as exc:
            self.errors_returned += 1
            aborted = had_txn and session.txn is None
            return {
                "id": msg_id,
                "ok": False,
                "error": error_payload(exc, txn_aborted=aborted),
            }

    # -- serving -----------------------------------------------------------------

    async def serve(self, started: Optional[threading.Event] = None) -> None:
        """Bind and serve until :meth:`stop` is called."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.address = server.sockets[0].getsockname()[:2]
        if started is not None:
            started.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            for writer in list(self._writers):
                writer.close()
            self._writers.clear()

    def start_in_thread(self, timeout: float = 10.0) -> Tuple[str, int]:
        """Run the event loop on a background thread; returns the bound
        (host, port) once the server is accepting connections."""
        if self._thread is not None:
            raise StateError("the server is already running")
        started = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self.serve(started)),
            name="db-server",
            daemon=True,
        )
        self._thread.start()
        if not started.wait(timeout):
            raise StateError("server failed to start within %.3gs" % timeout)
        if self.address is None:
            raise StateError("server started but never bound an address")
        return self.address

    def stop(self) -> None:
        """Stop serving, sever connections, shut the engine down."""
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None:
            loop.call_soon_threadsafe(event.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._pool.shutdown(wait=False)
        self.manager.close()

    # -- fault injection ----------------------------------------------------------

    def crash(self) -> Dict[str, int]:
        """Crash the store (volatile state lost, sessions severed) and
        drop every connection, as a power cut would."""
        report = self.manager.crash()
        loop = self._loop
        if loop is not None:

            def _sever() -> None:
                for writer in list(self._writers):
                    writer.close()
                self._writers.clear()

            loop.call_soon_threadsafe(_sever)
        return report

    def recover(self) -> Dict[str, Any]:
        """Recover the store from its durable log; the server keeps
        accepting connections throughout."""
        return self.manager.recover()

    # -- reporting ----------------------------------------------------------------

    def wire_stats(self) -> Dict[str, int]:
        return {
            "connections_accepted": self.connections_accepted,
            "frames_in": self.frames_in,
            "frames_out": self.frames_out,
            "errors_returned": self.errors_returned,
            "disconnects": self.disconnects,
        }

    def __repr__(self) -> str:
        return "DatabaseServer(%s, %d connections)" % (
            self.address,
            self.connections_accepted,
        )


__all__ = ["DatabaseServer"]
