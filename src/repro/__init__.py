"""repro -- a reproduction of *Implementation Techniques for Main Memory
Database Systems* (DeWitt, Katz, Olken, Shapiro, Stonebraker, Wood; SIGMOD
1984).

The package is organised by the paper's sections:

* Section 2 (access methods): :mod:`repro.access`, :mod:`repro.cost`
  (``access_model``).
* Section 3 (join and other operators): :mod:`repro.join`,
  :mod:`repro.operators`, :mod:`repro.cost` (``join_model``).
* Section 4 (access planning): :mod:`repro.planner`.
* Section 5 (recovery): :mod:`repro.recovery` over :mod:`repro.sim`.
* Substrate: :mod:`repro.storage`; workloads: :mod:`repro.workload`.
* Facade: :class:`repro.MainMemoryDatabase`.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core.database import MainMemoryDatabase
from repro.cost.counters import CostReport, OperationCounters
from repro.cost.parameters import TABLE2_DEFAULTS, CostParameters
from repro.storage.tuples import DataType, Field, Schema

__version__ = "1.0.0"

__all__ = [
    "CostParameters",
    "CostReport",
    "DataType",
    "Field",
    "MainMemoryDatabase",
    "OperationCounters",
    "Schema",
    "TABLE2_DEFAULTS",
    "__version__",
]
