"""Synthetic workloads for the paper's experiments.

* :mod:`repro.workload.distributions` -- seeded key distributions
  (uniform, zipf, sequential, name-like strings).
* :mod:`repro.workload.generator` -- relation builders: the Wisconsin-style
  join inputs for Section 3 and the employee relation of Section 2's
  example queries.
* :mod:`repro.workload.banking` -- Jim Gray's debit/credit banking mix for
  the Section 5 recovery experiments (the workload the paper cites for its
  400-byte log sizing).
"""

from repro.workload.banking import BankingWorkload
from repro.workload.distributions import (
    name_keys,
    sequential_keys,
    uniform_keys,
    zipf_keys,
)
from repro.workload.generator import (
    employees_relation,
    join_inputs,
    wisconsin_relation,
)

__all__ = [
    "BankingWorkload",
    "employees_relation",
    "join_inputs",
    "name_keys",
    "sequential_keys",
    "uniform_keys",
    "wisconsin_relation",
    "zipf_keys",
]
