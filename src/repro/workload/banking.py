"""Jim Gray's debit/credit banking mix -- the Section 5 workload.

The paper sizes its "typical" transaction (400 bytes of log) on "the
example banking database and transactions in Jim Gray, 'Notes on Database
Operating Systems'".  :class:`BankingWorkload` generates that mix against
the record-array database: transfers between two accounts, single-account
deposits, and balance inquiries (read-only).

Record ids inside one script are accessed in sorted order so strict 2PL
cannot deadlock (a canonical resource ordering).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.recovery.transactions import Operation
from repro.errors import ConfigurationError


class BankingWorkload:
    """Generator of banking transaction scripts over ``n_accounts``."""

    def __init__(
        self,
        n_accounts: int,
        initial_balance: int = 100,
        transfer_fraction: float = 0.7,
        deposit_fraction: float = 0.2,
        seed: int = 1984,
    ) -> None:
        if n_accounts < 2:
            raise ConfigurationError("banking needs at least two accounts")
        if not 0 <= transfer_fraction + deposit_fraction <= 1:
            raise ConfigurationError("fractions must sum to at most 1")
        self.n_accounts = n_accounts
        self.initial_balance = initial_balance
        self.transfer_fraction = transfer_fraction
        self.deposit_fraction = deposit_fraction
        self._rng = random.Random(seed)
        #: Deposits inject money; track the injected total so tests can
        #: assert conservation.
        self.deposited = 0

    @property
    def initial_total(self) -> int:
        return self.n_accounts * self.initial_balance

    def expected_total(self) -> int:
        """Invariant: sum of balances == initial + deposits by committed
        transactions.  (Callers must only count committed deposits; use
        per-script amounts from :meth:`next_script`.)"""
        return self.initial_total + self.deposited

    def next_script(self) -> Tuple[List[Operation], int]:
        """One transaction script plus the money it injects (0 for
        transfers and inquiries)."""
        u = self._rng.random()
        if u < self.transfer_fraction:
            return self._transfer(), 0
        if u < self.transfer_fraction + self.deposit_fraction:
            script, amount = self._deposit()
            return script, amount
        return self._inquiry(), 0

    def scripts(self, count: int) -> List[Tuple[List[Operation], int]]:
        return [self.next_script() for _ in range(count)]

    # -- transaction shapes --------------------------------------------------------

    def _transfer(self) -> List[Operation]:
        a, b = self._rng.sample(range(self.n_accounts), 2)
        amount = self._rng.randrange(1, 50)
        first, second = sorted((a, b))
        ops: List[Operation] = []
        for account in (first, second):
            sign = -amount if account == a else amount
            ops.append(("read", account))
            ops.append(("write", account, _adder(sign)))
        return ops

    def _deposit(self) -> Tuple[List[Operation], int]:
        account = self._rng.randrange(self.n_accounts)
        amount = self._rng.randrange(1, 100)
        self.deposited += amount
        return (
            [("read", account), ("write", account, _adder(amount))],
            amount,
        )

    def _inquiry(self) -> List[Operation]:
        accounts = sorted(self._rng.sample(range(self.n_accounts), 3))
        return [("read", a) for a in accounts]


def _adder(delta: int):
    """A named closure (picklable-ish, debuggable) adding ``delta``."""

    def apply(value):
        return value + delta

    apply.delta = delta
    return apply


__all__ = ["BankingWorkload"]
