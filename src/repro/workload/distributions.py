"""Seeded key distributions.

Everything takes an explicit seed so experiments are exactly reproducible;
nothing touches global random state.
"""

from __future__ import annotations

import math
import random
import string
from typing import Iterator, List
from repro.errors import ConfigurationError


def uniform_keys(count: int, domain: int, seed: int = 1984) -> List[int]:
    """``count`` keys drawn uniformly from ``[0, domain)`` (with repeats)."""
    if domain < 1:
        raise ConfigurationError("domain must be at least 1")
    rng = random.Random(seed)
    return [rng.randrange(domain) for _ in range(count)]


def sequential_keys(count: int, start: int = 0) -> List[int]:
    """``start, start+1, ...`` -- the fully clustered / sorted case."""
    return list(range(start, start + count))


def shuffled_keys(count: int, seed: int = 1984) -> List[int]:
    """A random permutation of ``0..count-1`` -- unique but unordered
    (the classic Wisconsin-benchmark ``unique`` column)."""
    rng = random.Random(seed)
    keys = list(range(count))
    rng.shuffle(keys)
    return keys


def zipf_keys(
    count: int, domain: int, theta: float = 0.8, seed: int = 1984
) -> List[int]:
    """Zipf-skewed keys over ``[0, domain)``.

    Uses the standard inverse-CDF construction with exponent ``theta``
    (0 = uniform, 1 = classic Zipf).  Skewed keys stress the hash
    partitioning assumptions of Section 3.3 -- the central-limit argument
    the paper leans on degrades as ``theta`` grows.
    """
    if not 0 <= theta < 2:
        raise ConfigurationError("theta out of the sensible range [0, 2)")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** theta for rank in range(domain)]
    total = sum(weights)
    cdf: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    keys: List[int] = []
    for _ in range(count):
        u = rng.random()
        lo, hi = 0, domain - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        keys.append(lo)
    return keys


_FIRST = [
    "Jones", "Smith", "Johnson", "Jackson", "James", "Jensen", "Joyce",
    "Miller", "Davis", "Garcia", "Wilson", "Moore", "Taylor", "Anderson",
    "Thomas", "Harris", "Martin", "Thompson", "White", "Lopez", "Lee",
    "Gonzalez", "Clark", "Lewis", "Robinson", "Walker", "Perez", "Hall",
]


def name_keys(count: int, seed: int = 1984) -> List[str]:
    """Name-like string keys (the paper's ``emp.name = "Jones"`` /
    ``emp.name = "J*"`` example needs a prefix-queryable distribution)."""
    rng = random.Random(seed)
    names: List[str] = []
    for i in range(count):
        base = _FIRST[rng.randrange(len(_FIRST))]
        suffix = "".join(rng.choice(string.ascii_lowercase) for _ in range(3))
        names.append("%s_%s%d" % (base, suffix, i % 97))
    return names


__all__ = [
    "name_keys",
    "sequential_keys",
    "shuffled_keys",
    "uniform_keys",
    "zipf_keys",
]
