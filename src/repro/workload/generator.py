"""Relation builders for the experiments and examples.

The join inputs mirror the paper's Table 2 workload shape -- two relations
with a shared key domain and a controllable match rate -- scaled down so
the *executable* joins finish in sensible wall time (the closed-form models
handle the full 10,000-page instances).
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.storage.relation import Relation
from repro.storage.tuples import DataType, Field, Schema
from repro.workload.distributions import name_keys, shuffled_keys, uniform_keys

#: Page size that yields exactly 40 eight-byte-field... see employees below.
DEFAULT_PAGE_BYTES = 4096


def wisconsin_relation(
    name: str,
    cardinality: int,
    seed: int = 1984,
    page_bytes: int = 512,
) -> Relation:
    """A Wisconsin-benchmark-style relation.

    Columns: ``unique1`` (candidate key, shuffled), ``unique2`` (candidate
    key, sequential), ``ten`` / ``hundred`` (uniform small domains), and a
    ``filler`` integer standing in for the padding string.
    """
    schema = Schema(
        [
            Field("unique1", DataType.INTEGER),
            Field("unique2", DataType.INTEGER),
            Field("ten", DataType.INTEGER),
            Field("hundred", DataType.INTEGER),
            Field("filler", DataType.INTEGER),
        ]
    )
    rel = Relation(name, schema, page_bytes)
    u1 = shuffled_keys(cardinality, seed)
    for i in range(cardinality):
        rel.insert_unchecked((u1[i], i, u1[i] % 10, u1[i] % 100, 0))
    return rel


def join_inputs(
    r_tuples: int,
    s_tuples: int,
    key_domain: Optional[int] = None,
    seed: int = 1984,
    page_bytes: int = 256,
) -> Tuple[Relation, Relation]:
    """Two joinable relations R (build) and S (probe).

    ``S.rkey`` draws uniformly from R's key domain, so the expected join
    cardinality is ``s_tuples * (r_tuples / key_domain)`` matches.
    """
    domain = key_domain if key_domain is not None else r_tuples
    r_schema = Schema(
        [Field("rkey", DataType.INTEGER), Field("rpayload", DataType.INTEGER)]
    )
    s_schema = Schema(
        [Field("skey", DataType.INTEGER), Field("spayload", DataType.INTEGER)]
    )
    r = Relation("R", r_schema, page_bytes)
    s = Relation("S", s_schema, page_bytes)
    r_keys = uniform_keys(r_tuples, domain, seed)
    s_keys = uniform_keys(s_tuples, domain, seed + 1)
    for i, k in enumerate(r_keys):
        r.insert_unchecked((k, i))
    for i, k in enumerate(s_keys):
        s.insert_unchecked((k, i))
    return r, s


def employees_relation(
    count: int = 2000, seed: int = 1984, page_bytes: int = 4096
) -> Relation:
    """The Section 2 example relation: employees with names and salaries.

    Supports both paper queries: the exact-match
    ``retrieve (emp.salary) where emp.name = "Jones..."`` and the prefix
    scan ``where emp.name = "J*"``.
    """
    schema = Schema(
        [
            Field("emp_id", DataType.INTEGER),
            Field("name", DataType.STRING, width=24),
            Field("salary", DataType.INTEGER),
            Field("dept", DataType.INTEGER),
        ]
    )
    rel = Relation("emp", schema, page_bytes)
    rng = random.Random(seed)
    names = name_keys(count, seed)
    for i in range(count):
        rel.insert_unchecked(
            (i, names[i], 20_000 + rng.randrange(80_000), rng.randrange(20))
        )
    return rel


__all__ = [
    "DEFAULT_PAGE_BYTES",
    "employees_relation",
    "join_inputs",
    "wisconsin_relation",
]
