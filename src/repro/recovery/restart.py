"""Crash simulation and restart recovery -- Sections 5.1 and 5.5.

``crash()`` freezes what would survive a power failure: the disk snapshot,
the durable portion of the log (completed page writes plus anything in
battery-backed stable memory), and the stable dirty-page table.  Volatile
state -- the in-memory database image, the log buffer, every active or
pre-committed transaction -- is gone.

``recover()`` is the paper's "reload the snapshot on disk, and then apply
the transaction log":

1. reload the snapshot into a fresh database image (sequential page reads);
2. *undo pass* (backward): remove loser updates the fuzzy snapshot may have
   absorbed, using the old values (the reason full logging keeps them);
3. *redo pass* (forward): reapply committed updates newer than each page's
   snapshot LSN, starting from the dirty-page table's minimum first-update
   LSN -- the Section 5.5 bound that makes checkpointing pay off.

The returned outcome carries both the recovered state and the *simulated*
recovery time, so the checkpoint-interval benchmark can sweep the paper's
trade-off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import ReproError
from repro.recovery.checkpoint import Checkpointer
from repro.recovery.log_manager import LogManager
from repro.recovery.records import (
    AbortRecord,
    CommitRecord,
    LogRecord,
    RecordSizing,
    UpdateRecord,
)
from repro.recovery.state import DatabaseState, DiskSnapshot
from repro.recovery.transactions import TransactionEngine

#: Wall-clock timer behind the restart phase timings in
#: ``db.recovery_stats()``.  The timings are observability (how long the
#: *host* took), never charged to the analytic model, so the one escape
#: from the determinism rule is aliased here where the justification can
#: live next to it.
_wall_clock = time.perf_counter  # repro-lint: disable=determinism

#: Cost model for the recovery pass itself.
PAGE_READ_TIME = 0.010       # sequential reload of snapshot / log pages
RECORD_APPLY_TIME = 0.00005  # CPU to interpret and apply one log record


class RecoveryError(ReproError, RuntimeError):
    """The durable state is structurally inconsistent: the log or the
    snapshot references pages outside the disk image being rebuilt.

    Raised instead of letting a bare ``KeyError``/``IndexError`` escape
    from deep inside the redo/undo passes, so callers can distinguish
    "the crash state is corrupt" from a bug in recovery itself."""


@dataclass
class CrashState:
    """Everything that survives the failure."""

    snapshot: DiskSnapshot
    durable_log: List[LogRecord]
    n_records: int
    records_per_page: int
    sizing: RecordSizing
    crashed_at: float
    #: Stable dirty-page table (page -> first-update LSN), including
    #: entries for checkpoint copies that were still in flight.
    dirty_first_lsn: Dict[int, int] = field(default_factory=dict)

    @property
    def committed_tids(self) -> Set[int]:
        return {
            r.tid for r in self.durable_log if isinstance(r, CommitRecord)
        }

    @property
    def resolved_abort_tids(self) -> Set[int]:
        """Transactions whose abort record is durable: their rollback
        history is complete on the log, so recovery *redoes* it rather
        than undoing the transaction."""
        return {
            r.tid for r in self.durable_log if isinstance(r, AbortRecord)
        }


@dataclass
class RecoveryOutcome:
    """The recovered image plus the simulated cost of producing it.

    ``seconds`` is the deterministic simulated cost: the sequential
    reload-and-replay time for one worker, or the straggler stream's
    share of it when parallel redo spreads the partitioned log and the
    snapshot pages over ``workers`` recovery streams (Section 5.5's
    multi-disk restart).  Every other statistic -- values, counters,
    committed set -- is identical for any worker count.
    ``phase_seconds`` is measured wall-clock per phase: analysis
    (validation, snapshot reload, bucketing), commit_resolution (winner
    derivation from the durable log), undo, and redo."""

    state: DatabaseState
    seconds: float
    pages_reloaded: int
    log_records_scanned: int
    updates_redone: int
    updates_undone: int
    committed_tids: Set[int]
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    workers: int = 1
    #: Pages whose snapshot copy already covered every logged update --
    #: skipped in bulk by the parallel path (always 0 on the serial path,
    #: which filters per record instead).
    pages_skipped_clean: int = 0


def crash(
    engine: TransactionEngine, checkpointer: Optional[Checkpointer] = None
) -> CrashState:
    """Capture the durable state at this instant; volatile state is lost."""
    log = engine.log
    snapshot = checkpointer.snapshot if checkpointer is not None else DiskSnapshot()
    dirty = dict(engine.dirty_table.first_update_lsn)
    if checkpointer is not None:
        # Copies dispatched but not completed never reached the snapshot:
        # their pre-dispatch first-update LSNs still bound redo.
        for page_id, lsns in checkpointer.in_flight.items():
            oldest = min(lsns)
            dirty[page_id] = min(oldest, dirty.get(page_id, oldest))
    return CrashState(
        snapshot=snapshot,
        durable_log=log.durable_log(),
        n_records=engine.state.n_records,
        records_per_page=engine.state.records_per_page,
        sizing=log.sizing,
        crashed_at=engine.queue.clock.now,
        dirty_first_lsn=dirty,
    )


def _validate(crash_state: CrashState, state: DatabaseState) -> None:
    """Reject structurally corrupt durable state (shared by both paths)."""
    for page_id in crash_state.snapshot.pages:
        if not 0 <= page_id < state.page_count:
            raise RecoveryError(
                "snapshot holds page %d, outside the %d-page disk image"
                % (page_id, state.page_count)
            )
    for record in crash_state.durable_log:
        if isinstance(record, UpdateRecord) and not (
            0 <= record.record_id < crash_state.n_records
        ):
            raise RecoveryError(
                "log record lsn=%d references record %d, absent from the "
                "%d-record disk image (page %d does not exist in the "
                "snapshot's universe)"
                % (
                    record.lsn,
                    record.record_id,
                    crash_state.n_records,
                    record.record_id // crash_state.records_per_page,
                )
            )


def _redo_start(crash_state: CrashState, use_dirty_page_table: bool) -> int:
    log = crash_state.durable_log
    if use_dirty_page_table and crash_state.dirty_first_lsn:
        return min(crash_state.dirty_first_lsn.values())
    if use_dirty_page_table and not crash_state.dirty_first_lsn:
        # Nothing dirty at crash time: the snapshot covers everything
        # durable, so no redo is needed at all.
        return len(log) and (log[-1].lsn + 1)
    return 0


def _simulated_seconds(
    crash_state: CrashState,
    scanned: int,
    undone: int,
    use_dirty_page_table: bool,
    streams: int = 1,
) -> float:
    # The undo pass also reads the log (backwards); charge the full scan
    # when the table is not in use, the bounded scan when it is.
    #
    # ``streams`` models Section 5.5's parallel restart: k recovery
    # workers, each owning one log partition (the partitioned log keeps
    # sealed groups on independent devices) and an equal share of the
    # snapshot pages, reload and replay concurrently.  Every term of the
    # sequential cost divides by k, rounded up to the straggler's share;
    # one stream is exactly the sequential formula.
    log = crash_state.durable_log
    effective_scan = scanned if use_dirty_page_table else len(log)
    log_bytes = sum(r.size(crash_state.sizing) for r in log[-effective_scan:] if effective_scan)
    log_pages = (log_bytes + crash_state.sizing.page_bytes - 1) // crash_state.sizing.page_bytes
    k = max(1, streams)
    return (
        -(-crash_state.snapshot.page_count // k) * PAGE_READ_TIME
        + -(-log_pages // k) * PAGE_READ_TIME
        + -(-(scanned + undone) // k) * RECORD_APPLY_TIME
    )


def recover(
    crash_state: CrashState,
    initial_value: object = 0,
    use_dirty_page_table: bool = True,
    workers: int = 1,
    injector: object = None,
    governor: object = None,
) -> RecoveryOutcome:
    """Rebuild a consistent database image from the crash state.

    ``workers`` > 1 selects the batched parallel-redo path
    (:mod:`repro.recovery.parallel_restart`): byte-identical image and
    statistics, less wall-clock.  ``injector`` threads a chaos
    :class:`~repro.chaos.FaultInjector` through the parallel path's
    dispatch/merge seams.  ``governor`` (a
    :class:`~repro.governor.Governor`) accounts the rebuilt image's pages
    against the memory grant budget for the duration of the restart.
    """
    from repro.join.parallel import validate_workers

    workers = validate_workers(workers)
    page_count = (
        crash_state.n_records + crash_state.records_per_page - 1
    ) // crash_state.records_per_page
    handle = None
    if governor is not None:
        handle = governor.admit(page_count, qid="restart")
    try:
        if workers > 1:
            return _recover_batched(
                crash_state, initial_value, use_dirty_page_table,
                workers, injector,
            )
        return _recover_serial(crash_state, initial_value, use_dirty_page_table)
    finally:
        if handle is not None:
            governor.release(handle)


def _recover_serial(
    crash_state: CrashState,
    initial_value: object,
    use_dirty_page_table: bool,
) -> RecoveryOutcome:
    """The record-at-a-time reference path (the seed implementation, with
    wall-clock phase timers around the existing passes)."""
    phases: Dict[str, float] = {}
    t0 = _wall_clock()
    state = DatabaseState(
        crash_state.n_records,
        crash_state.records_per_page,
        initial_value=initial_value,
    )
    _validate(crash_state, state)
    crash_state.snapshot.load_into(state)
    snapshot_lsn = list(state.page_lsn)  # per-page LSN as of the snapshot
    phases["analysis"] = _wall_clock() - t0

    t0 = _wall_clock()
    committed = crash_state.committed_tids
    # Winners are redone; losers are undone.  A durably-aborted transaction
    # is a winner: its forward history (updates + compensations) nets to
    # identity, exactly like ARIES CLRs.
    winners = committed | crash_state.resolved_abort_tids
    log = crash_state.durable_log
    phases["commit_resolution"] = _wall_clock() - t0

    # ---- undo pass: strip loser updates the fuzzy snapshot absorbed. ----
    t0 = _wall_clock()
    undone = 0
    for record in reversed(log):
        if not isinstance(record, UpdateRecord) or record.tid in winners:
            continue
        page = state.page_of(record.record_id)
        if record.lsn <= snapshot_lsn[page]:
            state.values[record.record_id] = record.old_value
            undone += 1
    phases["undo"] = _wall_clock() - t0

    # ---- redo pass: reapply committed work missing from the snapshot. ----
    t0 = _wall_clock()
    redo_start = _redo_start(crash_state, use_dirty_page_table)
    scanned = 0
    redone = 0
    for record in log:
        if record.lsn < redo_start:
            continue
        scanned += 1
        if not isinstance(record, UpdateRecord) or record.tid not in winners:
            continue
        page = state.page_of(record.record_id)
        if record.lsn > snapshot_lsn[page]:
            state.values[record.record_id] = record.new_value
            state.page_lsn[page] = record.lsn
            redone += 1
    phases["redo"] = _wall_clock() - t0

    return RecoveryOutcome(
        state=state,
        seconds=_simulated_seconds(
            crash_state, scanned, undone, use_dirty_page_table
        ),
        pages_reloaded=crash_state.snapshot.page_count,
        log_records_scanned=scanned,
        updates_redone=redone,
        updates_undone=undone,
        committed_tids=committed,
        phase_seconds=phases,
        workers=1,
    )


def _recover_batched(
    crash_state: CrashState,
    initial_value: object,
    use_dirty_page_table: bool,
    workers: int,
    injector: object,
) -> RecoveryOutcome:
    """The page-partitioned path: same contract, batched execution."""
    from repro.recovery.parallel_restart import parallel_redo

    phases: Dict[str, float] = {}
    t0 = _wall_clock()
    state = DatabaseState(
        crash_state.n_records,
        crash_state.records_per_page,
        initial_value=initial_value,
    )
    _validate(crash_state, state)
    crash_state.snapshot.load_into(state)
    snapshot_lsn = list(state.page_lsn)
    redo_start = _redo_start(crash_state, use_dirty_page_table)
    phases["analysis"] = _wall_clock() - t0

    t0 = _wall_clock()
    committed = crash_state.committed_tids
    winners = committed | crash_state.resolved_abort_tids
    phases["commit_resolution"] = _wall_clock() - t0

    # Undo and redo are fused in the page workers (per page: undo
    # backward, then redo forward -- the serial rules exactly); both
    # phases' wall-clock therefore lands under "redo", and "undo" is 0.
    t0 = _wall_clock()
    scanned, redone, undone, skipped = parallel_redo(
        state,
        crash_state.durable_log,
        winners,
        snapshot_lsn,
        redo_start,
        workers,
        injector=injector,
    )
    phases["undo"] = 0.0
    phases["redo"] = _wall_clock() - t0

    return RecoveryOutcome(
        state=state,
        seconds=_simulated_seconds(
            crash_state, scanned, undone, use_dirty_page_table,
            streams=workers,
        ),
        pages_reloaded=crash_state.snapshot.page_count,
        log_records_scanned=scanned,
        updates_redone=redone,
        updates_undone=undone,
        committed_tids=committed,
        phase_seconds=phases,
        workers=workers,
        pages_skipped_clean=skipped,
    )


def replay_committed(
    crash_state: CrashState, initial_value: object = 0
) -> DatabaseState:
    """Reference implementation for tests: rebuild the database by applying
    every committed update, in LSN order, to a fresh image (no snapshot).

    Recovery is correct iff its values equal this oracle's.
    """
    state = DatabaseState(
        crash_state.n_records,
        crash_state.records_per_page,
        initial_value=initial_value,
    )
    winners = crash_state.committed_tids | crash_state.resolved_abort_tids
    for record in crash_state.durable_log:
        if isinstance(record, UpdateRecord) and record.tid in winners:
            state.values[record.record_id] = record.new_value
            state.page_lsn[state.page_of(record.record_id)] = record.lsn
    return state


__all__ = [
    "CrashState",
    "PAGE_READ_TIME",
    "RECORD_APPLY_TIME",
    "RecoveryError",
    "RecoveryOutcome",
    "crash",
    "recover",
    "replay_committed",
]
