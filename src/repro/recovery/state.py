"""The memory-resident database image, its disk snapshot, and page LSNs.

For the Section 5 experiments the database is an array of fixed-size
records (the banking workload's account balances) grouped onto pages.
Every page tracks the LSN of the last update applied to it, which is what
lets restart recovery decide, per page, which logged updates the reloaded
snapshot already contains.

:class:`DiskSnapshot` is the checkpoint target: page copies tagged with
their page LSN and the simulated time the copy completed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple
from repro.errors import ConfigurationError


class DatabaseState:
    """``n_records`` fixed-width records packed ``records_per_page`` each."""

    def __init__(
        self,
        n_records: int,
        records_per_page: int = 64,
        initial_value: Any = 0,
    ) -> None:
        if n_records < 1:
            raise ConfigurationError("database needs at least one record")
        if records_per_page < 1:
            raise ConfigurationError("records per page must be positive")
        self.n_records = n_records
        self.records_per_page = records_per_page
        self.values: List[Any] = [initial_value] * n_records
        self.page_count = (n_records + records_per_page - 1) // records_per_page
        #: LSN of the last update applied to each page (-1 = never).
        self.page_lsn: List[int] = [-1] * self.page_count
        self.dirty: Set[int] = set()

    def page_of(self, record_id: int) -> int:
        if not 0 <= record_id < self.n_records:
            raise IndexError("record %d out of range" % record_id)
        return record_id // self.records_per_page

    def read(self, record_id: int) -> Any:
        return self.values[record_id]

    def write(self, record_id: int, value: Any, lsn: int) -> Any:
        """Apply an update; returns the old value (for the log record)."""
        old = self.values[record_id]
        self.values[record_id] = value
        page = self.page_of(record_id)
        self.page_lsn[page] = lsn
        self.dirty.add(page)
        return old

    def page_records(self, page_id: int) -> Tuple[int, int]:
        """Record-id range [start, end) stored on ``page_id``."""
        start = page_id * self.records_per_page
        return start, min(start + self.records_per_page, self.n_records)

    def copy_page(self, page_id: int) -> "PageImage":
        start, end = self.page_records(page_id)
        return PageImage(
            page_id=page_id,
            values=list(self.values[start:end]),
            page_lsn=self.page_lsn[page_id],
        )

    def total_balance(self) -> Any:
        """Sum of all records -- the banking invariant checks use this."""
        return sum(self.values)


@dataclass
class PageImage:
    """An immutable copy of one page at checkpoint time."""

    page_id: int
    values: List[Any]
    page_lsn: int


@dataclass
class DiskSnapshot:
    """The checkpointed on-disk database image."""

    pages: Dict[int, PageImage] = field(default_factory=dict)
    #: Simulated time each page copy completed (for recovery statistics).
    written_at: Dict[int, float] = field(default_factory=dict)

    def install(self, image: PageImage, timestamp: float) -> None:
        """Store ``image``, never regressing to an older copy (checkpoint
        installs can complete out of order when a WAL retry delays one)."""
        current = self.pages.get(image.page_id)
        if current is not None and current.page_lsn > image.page_lsn:
            return
        self.pages[image.page_id] = image
        self.written_at[image.page_id] = timestamp

    def load_into(self, state: DatabaseState) -> None:
        """Reload the snapshot into a zeroed database image."""
        for image in self.pages.values():
            start, end = state.page_records(image.page_id)
            state.values[start:end] = image.values
            state.page_lsn[image.page_id] = image.page_lsn
        state.dirty.clear()

    @property
    def page_count(self) -> int:
        return len(self.pages)


@dataclass
class DirtyPageTable:
    """Convenience view over the stable dirty-page table (Section 5.5).

    Thin wrapper so tests can exercise the table independent of
    :class:`~repro.recovery.stable_memory.StableMemory`.
    """

    first_update_lsn: Dict[int, int] = field(default_factory=dict)

    def note(self, page_id: int, lsn: int) -> None:
        self.first_update_lsn.setdefault(page_id, lsn)

    def checkpointed(self, page_id: int) -> None:
        self.first_update_lsn.pop(page_id, None)

    def redo_start(self) -> Optional[int]:
        if not self.first_update_lsn:
            return None
        return min(self.first_update_lsn.values())


__all__ = ["DatabaseState", "DirtyPageTable", "DiskSnapshot", "PageImage"]
