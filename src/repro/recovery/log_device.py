"""Simulated log devices.

A :class:`LogDevice` writes one log page at a time, each write occupying
the device for ``page_write_time`` (10 ms for a 4096-byte page without a
seek, per Section 5.1) of simulated time; completion callbacks fire through
the shared :class:`~repro.sim.events.EventQueue`.  Queued writes are FIFO,
which is what makes sequentially-appended commit records reach disk in
order -- the property pre-commit correctness rests on.

:class:`PartitionedLog` stripes pages over several devices (Section 5.2's
"partitioning the log across several devices"); the ordering constraints
between commit groups are enforced one level up, in the log manager, via
the topological dependency lattice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.events import EventQueue
from repro.errors import ConfigurationError

#: Time to write one 4096-byte log page without a disk seek (Section 5.1).
DEFAULT_PAGE_WRITE_TIME = 0.010


@dataclass
class WrittenPage:
    """A log page durably on disk: its payload and completion time."""

    device_id: int
    page_number: int
    payload: List[object]
    completed_at: float


class LogDevice:
    """One log disk: FIFO page writes, ``page_write_time`` each."""

    def __init__(
        self,
        queue: EventQueue,
        device_id: int = 0,
        page_write_time: float = DEFAULT_PAGE_WRITE_TIME,
    ) -> None:
        if page_write_time <= 0:
            raise ConfigurationError("page write time must be positive")
        self.queue = queue
        self.device_id = device_id
        self.page_write_time = page_write_time
        self.pages: List[WrittenPage] = []
        self.pages_written = 0
        self.busy_until = 0.0
        self._next_page_number = 0
        #: Optional :class:`repro.chaos.FaultInjector`.  Dispatch is a
        #: crash point, and the injector may stretch an individual write
        #: (a slow sector); FIFO order within the device is preserved
        #: because the delay extends ``busy_until`` too.
        self.fault_injector = None
        #: Payloads dispatched but not yet completed, by page number --
        #: what a crash can tear (a prefix may survive on the platter).
        self._in_flight: Dict[int, List[object]] = {}

    @property
    def is_idle(self) -> bool:
        return self.busy_until <= self.queue.clock.now

    def write_page(
        self,
        payload: List[object],
        on_complete: Optional[Callable[[WrittenPage], None]] = None,
    ) -> float:
        """Queue a page write; return its completion timestamp."""
        extra_delay = 0.0
        if self.fault_injector is not None:
            self.fault_injector.point("log dispatch dev%d" % self.device_id)
            extra_delay = self.fault_injector.write_delay(self.device_id)
        start = max(self.queue.clock.now, self.busy_until)
        done = start + self.page_write_time + extra_delay
        self.busy_until = done
        page_number = self._next_page_number
        self._next_page_number += 1
        self._in_flight[page_number] = list(payload)

        def complete() -> None:
            self._in_flight.pop(page_number, None)
            page = WrittenPage(
                device_id=self.device_id,
                page_number=page_number,
                payload=list(payload),
                completed_at=done,
            )
            self.pages.append(page)
            self.pages_written += 1
            if on_complete is not None:
                on_complete(page)

        self.queue.schedule_at(done, complete, label="log page write")
        return done

    def in_flight_writes(self) -> List[Tuple[int, List[object]]]:
        """Dispatched-but-incomplete writes as ``(page_number, payload)``,
        oldest first -- the pages a crash catches mid-transfer."""
        return [
            (number, list(payload))
            for number, payload in sorted(self._in_flight.items())
        ]

    def crash(self) -> None:
        """Drop writes still in flight (pages list keeps only completed)."""
        # Completed pages are already in self.pages; in-flight events are
        # owned by the queue and become no-ops after a crash because the
        # engine swaps in a fresh queue.  Nothing to do here beyond
        # freezing the busy horizon.
        self.busy_until = self.queue.clock.now


class PartitionedLog:
    """A stripe of log devices with least-busy dispatch."""

    def __init__(
        self,
        queue: EventQueue,
        devices: int = 1,
        page_write_time: float = DEFAULT_PAGE_WRITE_TIME,
    ) -> None:
        if devices < 1:
            raise ConfigurationError("need at least one log device")
        self.devices = [
            LogDevice(queue, device_id=i, page_write_time=page_write_time)
            for i in range(devices)
        ]

    def __len__(self) -> int:
        return len(self.devices)

    def least_busy(self) -> LogDevice:
        """The device that can start a write soonest."""
        return min(self.devices, key=lambda d: (d.busy_until, d.device_id))

    def device_for(self, stream: int) -> LogDevice:
        """The device pinned to ``stream`` (pipelined dispatch): each
        commit stream appends FIFO to its own device, so independent
        streams' sealed groups flush concurrently instead of contending
        for whichever device is momentarily least busy."""
        return self.devices[stream % len(self.devices)]

    @property
    def pages_written(self) -> int:
        return sum(d.pages_written for d in self.devices)

    def attach_fault_injector(self, injector) -> None:
        """Wire a :class:`repro.chaos.FaultInjector` into every device."""
        for device in self.devices:
            device.fault_injector = injector

    def in_flight_writes(self) -> List[Tuple[int, int, List[object]]]:
        """All dispatched-but-incomplete writes as ``(device_id,
        page_number, payload)`` -- torn-page candidates at crash time."""
        writes: List[Tuple[int, int, List[object]]] = []
        for device in self.devices:
            for number, payload in device.in_flight_writes():
                writes.append((device.device_id, number, payload))
        return writes

    def all_pages_in_order(self) -> List[WrittenPage]:
        """Durable pages merged by completion time -- the Section 5.2
        sort-merge reconstruction of a single log from the fragments."""
        merged: List[WrittenPage] = []
        for device in self.devices:
            merged.extend(device.pages)
        merged.sort(key=lambda p: (p.completed_at, p.device_id, p.page_number))
        return merged

    def crash(self) -> None:
        for device in self.devices:
            device.crash()


__all__ = [
    "DEFAULT_PAGE_WRITE_TIME",
    "LogDevice",
    "PartitionedLog",
    "WrittenPage",
]
