"""The transaction engine: scripts, locks, pre-commit, and commit groups.

A transaction is submitted as a *script* of read/write operations over the
record-array :class:`~repro.recovery.state.DatabaseState`.  CPU work is
instantaneous in simulated time (the database is memory resident; Section
5.2: transactions "no longer need to read or write data pages"), so the
only waits are lock queues and the log.  The engine executes a script until
it blocks on a lock, suspends it, and resumes it when the lock-table grant
arrives -- all inside the shared discrete-event simulation.

Commit path (the paper's pre-commit protocol):

1. the commit record goes to the log manager together with the transaction's
   accumulated dependency set (pre-committed former lock holders);
2. locks are released into the pre-committed sets, waking waiters, who
   inherit the dependency edge;
3. when the commit record's page (and every page it depends on) is durable,
   the transaction commits: locks finalize, the completion callback fires,
   and latency statistics are recorded.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.recovery.lock_table import LockMode, LockTable
from repro.recovery.log_manager import CommitPolicy, LogManager
from repro.recovery.records import AbortRecord, BeginRecord, UpdateRecord
from repro.recovery.state import DatabaseState, DirtyPageTable
from repro.sim.events import EventQueue
from repro.errors import ConfigurationError

#: A script step: ("read", record_id), ("write", record_id, new_value)
#: where new_value may be a callable old -> new (for transfers), or
#: ("pause", seconds) -- simulated think/computation time during which the
#: transaction keeps its locks (how long-running transactions exist in the
#: simulation).
Operation = Tuple[str, ...]


class TransactionState(enum.Enum):
    """Lifecycle: ACTIVE/WAITING while running, PRECOMMITTED once the
    commit record is buffered and locks are released, COMMITTED when it
    is durable, ABORTED after rollback."""

    ACTIVE = "active"
    WAITING = "waiting"
    PRECOMMITTED = "precommitted"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    tid: int
    script: List[Operation]
    state: TransactionState = TransactionState.ACTIVE
    step: int = 0
    reads: Dict[int, Any] = field(default_factory=dict)
    undo: List[Tuple[int, Any]] = field(default_factory=list)
    #: Last value this transaction wrote per record (after-images for the
    #: version manager).
    writes: Dict[int, Any] = field(default_factory=dict)
    #: Pre-committed transactions this one depends on (Section 5.2's
    #: dependency list in the transaction descriptor).
    dependencies: Set[int] = field(default_factory=set)
    started_at: float = 0.0
    committed_at: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        if self.committed_at is None:
            return None
        return self.committed_at - self.started_at


class TransactionEngine:
    """Drives transaction scripts against state, locks, and the log."""

    def __init__(
        self,
        state: DatabaseState,
        queue: EventQueue,
        log_manager: LogManager,
        on_committed: Optional[Callable[[Transaction], None]] = None,
    ) -> None:
        self.state = state
        self.queue = queue
        self.log = log_manager
        self.locks = LockTable()
        self.on_committed = on_committed
        self.dirty_table = DirtyPageTable()

        self._next_tid = 1
        self.transactions: Dict[int, Transaction] = {}
        self.committed: List[Transaction] = []
        self.aborted: List[Transaction] = []
        self._in_precommit: Set[int] = set()
        self._early_durable: Set[int] = set()
        self.deadlocks_resolved = 0
        #: Optional multi-version read layer (repro.recovery.versioning).
        self.versions = None

        # The log manager reports durable commits back to us, a whole
        # commit group per callback: the engine finalizes a page of
        # transactions per durable page write.
        assert self.log.on_commit is None, (
            "log manager already has a commit listener"
        )
        assert self.log.on_commit_batch is None, (
            "log manager already has a batch commit listener"
        )
        self.log.on_commit_batch = self._on_durable_commit_batch

    # -- submission ------------------------------------------------------------------

    def submit(self, script: Sequence[Operation]) -> Transaction:
        """Begin a transaction and run its script as far as it can go."""
        txn = Transaction(
            tid=self._next_tid,
            script=list(script),
            started_at=self.queue.clock.now,
        )
        self._next_tid += 1
        self.transactions[txn.tid] = txn
        self.log.append(BeginRecord(tid=txn.tid))
        self._run(txn)
        return txn

    def submit_at(self, delay: float, script: Sequence[Operation]) -> None:
        """Schedule a submission ``delay`` seconds from now."""
        self.queue.schedule(
            delay, lambda: self.submit(script), label="txn arrival"
        )

    # -- script execution ---------------------------------------------------------------

    def _run(self, txn: Transaction) -> None:
        """Execute ``txn`` from its current step until block or pre-commit."""
        while txn.step < len(txn.script):
            op = txn.script[txn.step]
            kind = op[0]
            if kind == "pause":
                # Simulated think time: hold locks, resume later.
                txn.step += 1
                self.queue.schedule(
                    float(op[1]),
                    lambda t=txn: self._resume_paused(t),
                    label="txn think time",
                )
                return
            record_id = op[1]
            mode = LockMode.SHARED if kind == "read" else LockMode.EXCLUSIVE
            grant = self.locks.acquire(txn.tid, record_id, mode)
            if not grant.granted:
                cycle = self.locks.find_deadlock(txn.tid)
                if cycle is not None:
                    # Victim policy: abort the requester -- it closed the
                    # cycle, has done the least work of anyone in it by
                    # construction of FIFO queues, and aborting it is
                    # always safe (it cannot be pre-committed).
                    self.locks.cancel_wait(txn.tid)
                    self.deadlocks_resolved += 1
                    self.abort(txn)
                    return
                txn.state = TransactionState.WAITING
                return
            txn.dependencies.update(grant.dependencies)

            if kind == "read":
                txn.reads[record_id] = self.state.read(record_id)
            elif kind == "write":
                self._apply_write(txn, record_id, op[2])
            else:
                raise ConfigurationError("unknown operation %r" % (kind,))
            txn.step += 1
        self._precommit(txn)

    def _resume_paused(self, txn: Transaction) -> None:
        """Continue a transaction after its simulated think time."""
        if txn.state is TransactionState.ACTIVE:
            self._run(txn)

    def _apply_write(self, txn: Transaction, record_id: int, value: Any) -> None:
        old = self.state.read(record_id)
        new = value(old) if callable(value) else value
        lsn = self.log.next_lsn()
        record = UpdateRecord(
            tid=txn.tid, record_id=record_id, old_value=old, new_value=new
        )
        self.log.append(record)
        self.state.write(record_id, new, record.lsn)
        txn.undo.append((record_id, old))
        txn.writes[record_id] = new
        self.dirty_table.note(self.state.page_of(record_id), record.lsn)

    # -- commit path ----------------------------------------------------------------------

    def _precommit(self, txn: Transaction) -> None:
        txn.state = TransactionState.PRECOMMITTED
        # Discard dependencies that already committed (the paper: "the
        # committed transactions in its dependency list are removed").
        txn.dependencies -= self.log.durable_tids
        # The commit record is appended *before* locks are released, so a
        # dependent transaction's commit record always follows ours in the
        # log.  Under the stable-memory policy the durable callback fires
        # synchronously inside append_commit -- before the locks move to
        # the pre-committed sets -- so completion is deferred until after.
        self._in_precommit.add(txn.tid)
        commit_lsn = self.log.append_commit(txn.tid, txn.dependencies)
        if self.versions is not None:
            # Publish after-images the moment the commit record exists:
            # snapshots order by commit LSN, the 2PL serialization order.
            self.versions.record(txn, commit_lsn)
        granted = self.locks.precommit(txn.tid)
        self._in_precommit.discard(txn.tid)
        if txn.tid in self._early_durable:
            self._early_durable.discard(txn.tid)
            self._complete_commit(txn)
        self._resume_granted(granted)

    def _on_durable_commit(self, tid: int) -> None:
        self._on_durable_commit_batch([tid])

    def _on_durable_commit_batch(self, tids: Sequence[int]) -> None:
        """A durable commit group: complete its transactions together.

        Lock finalization is batched -- one
        :meth:`~repro.recovery.lock_table.LockTable.finalize_batch` pass
        over the whole group instead of one table walk per transaction.
        Completion callbacks still fire per transaction, in commit order.
        """
        ready: List[Transaction] = []
        for tid in tids:
            txn = self.transactions.get(tid)
            if txn is None:
                continue
            if tid in self._in_precommit:
                # Synchronous durability (stable memory): finish
                # pre-commit first, then complete.
                self._early_durable.add(tid)
                continue
            ready.append(txn)
        if not ready:
            return
        self.locks.finalize_batch([t.tid for t in ready])
        for txn in ready:
            self._complete_commit(txn, finalized=True)

    def _complete_commit(
        self, txn: Transaction, finalized: bool = False
    ) -> None:
        txn.state = TransactionState.COMMITTED
        txn.committed_at = self.queue.clock.now
        if not finalized:
            self.locks.finalize(txn.tid)
        self.committed.append(txn)
        if self.on_committed is not None:
            self.on_committed(txn)

    def abort(self, txn: Transaction) -> None:
        """Roll back an *active* transaction (pre-committed never abort)."""
        if txn.state not in (TransactionState.ACTIVE, TransactionState.WAITING):
            raise ConfigurationError(
                "cannot abort a %s transaction (the paper's pre-commit "
                "contract: only a crash kills a pre-committed transaction)"
                % txn.state.value
            )
        for record_id, old in reversed(txn.undo):
            record = UpdateRecord(
                tid=txn.tid,
                record_id=record_id,
                old_value=self.state.read(record_id),
                new_value=old,
            )
            self.log.append(record)
            self.state.write(record_id, old, record.lsn)
            self.dirty_table.note(self.state.page_of(record_id), record.lsn)
        self.log.append_abort(txn.tid)
        txn.state = TransactionState.ABORTED
        self.aborted.append(txn)
        granted = self.locks.abort(txn.tid)
        self._resume_granted(granted)

    def _resume_granted(self, notices) -> None:
        for notice in notices:
            waiter = self.transactions.get(notice.tid)
            if waiter is None or waiter.state is not TransactionState.WAITING:
                continue
            waiter.dependencies.update(notice.dependencies)
            waiter.state = TransactionState.ACTIVE
            # The operation that blocked re-acquires; acquire() is
            # idempotent for a lock already held.
            self._run(waiter)

    # -- statistics --------------------------------------------------------------------------

    @property
    def committed_count(self) -> int:
        return len(self.committed)

    def throughput(self, horizon: float) -> float:
        """Committed transactions per second of simulated time."""
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        return len(self.committed) / horizon

    def mean_commit_latency(self) -> float:
        latencies = [t.latency for t in self.committed if t.latency is not None]
        return sum(latencies) / len(latencies) if latencies else 0.0


__all__ = ["Operation", "Transaction", "TransactionEngine", "TransactionState"]
