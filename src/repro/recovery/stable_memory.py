"""Battery-backed stable memory -- Section 5.4.

A small region of main memory that survives crashes (the paper proposes
CMOS with battery back-up, "too expensive to be used for all of real
memory").  Two users:

* the **stable log tail**: transactions commit the moment their commit
  record lands here, and pages drain to the disk log in the background;
* the **dirty page table** (Section 5.5) recording, per updated page, the
  LSN of the first update since its last checkpoint -- the table's minimum
  bounds where redo must start.

The region enforces its byte budget: exceeding it raises, because sizing
the stable region is exactly the design constraint the paper discusses
("if enough space can be set aside to accommodate the logs of all active
transactions, then only new values of committed transactions are ever
written to disk").
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.recovery.records import LogRecord, RecordSizing, DEFAULT_SIZING
from repro.errors import ConfigurationError, StateError


class StableMemoryFullError(StateError):
    """The stable region's byte budget is exhausted."""


class StableMemory:
    """A crash-surviving byte-budgeted region."""

    def __init__(self, capacity_bytes: int = 256 * 1024) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError("stable memory needs a positive capacity")
        self.capacity_bytes = capacity_bytes
        self._log_bytes = 0
        self._records: List[LogRecord] = []
        #: page id -> LSN of first update since the page's last checkpoint.
        self._dirty_first_lsn: Dict[int, int] = {}
        #: Optional chaos hook fired after each append.  Stable appends
        #: change durable state *synchronously* (no event is involved), so
        #: without this seam a crash-point sweep could never land between
        #: an update reaching stable memory and its commit record.
        self.on_append: Optional[Callable[[LogRecord], None]] = None

    # -- capacity -------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        # The dirty-page table is charged 16 bytes per entry (page id +
        # LSN), a realistic footprint for the Section 5.5 table.
        return self._log_bytes + 16 * len(self._dirty_first_lsn)

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    # -- stable log tail ---------------------------------------------------------

    def append_record(
        self, record: LogRecord, sizing: RecordSizing = DEFAULT_SIZING
    ) -> None:
        """Hold ``record`` stably until the drain writes it to disk."""
        size = record.size(sizing)
        if self.used_bytes + size > self.capacity_bytes:
            raise StableMemoryFullError(
                "stable memory full: %d used + %d requested > %d capacity"
                % (self.used_bytes, size, self.capacity_bytes)
            )
        self._records.append(record)
        self._log_bytes += size
        if self.on_append is not None:
            self.on_append(record)

    def pending_records(self) -> List[LogRecord]:
        """Records not yet drained, oldest first (crash-surviving)."""
        return list(self._records)

    def pending_count(self) -> int:
        """How many records are held, without copying the list."""
        return len(self._records)

    def iter_pending(self, start: int = 0) -> Iterator[LogRecord]:
        """Iterate records from index ``start``, oldest first, without
        materialising a copy -- the drain's batch fast path.  The caller
        must not append or release while iterating."""
        return islice(self._records, start, None)

    def release_records(
        self, count: int, sizing: RecordSizing = DEFAULT_SIZING
    ) -> List[LogRecord]:
        """Drop the oldest ``count`` records once durable on disk."""
        if count > len(self._records):
            raise ConfigurationError("releasing more records than are held")
        released = self._records[:count]
        del self._records[:count]
        self._log_bytes -= sum(r.size(sizing) for r in released)
        return released

    # -- dirty page table (Section 5.5) ------------------------------------------

    def note_page_update(self, page_id: int, lsn: int) -> None:
        """Record the first update to ``page_id`` since its checkpoint."""
        self._dirty_first_lsn.setdefault(page_id, lsn)

    def clear_page(self, page_id: int) -> None:
        """The page was checkpointed: reset its update status."""
        self._dirty_first_lsn.pop(page_id, None)

    def redo_start_lsn(self) -> Optional[int]:
        """"The oldest entry in the table determines the point in the log
        from which recovery should commence." ``None`` = nothing dirty."""
        if not self._dirty_first_lsn:
            return None
        return min(self._dirty_first_lsn.values())

    def dirty_entries(self) -> Dict[int, int]:
        return dict(self._dirty_first_lsn)

    def __repr__(self) -> str:
        return "StableMemory(%d/%d bytes, %d records, %d dirty pages)" % (
            self.used_bytes,
            self.capacity_bytes,
            len(self._records),
            len(self._dirty_first_lsn),
        )


__all__ = ["StableMemory", "StableMemoryFullError"]
