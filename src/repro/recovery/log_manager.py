"""The log manager: conventional WAL, group commit, and stable memory.

Section 5.2's arithmetic, implemented:

* **Conventional** -- every commit forces the current (usually nearly
  empty) log page to disk and waits 10 ms: at most ~100 commits/second on
  one device.
* **Group commit** -- the commit record is appended and the transaction
  *pre-commits*; the page is written when full, so ~10 "typical" (400-byte)
  transactions share one 10 ms write: ~1000 commits/second.
* **Stable memory** -- the commit record lands in battery-backed memory
  and the transaction is durable immediately; pages drain to disk in the
  background, optionally compressed to new-values-only (Section 5.4),
  which stretches the same drain bandwidth over ~1.8x the transactions.

With several log devices, commit groups form the paper's *topological
lattice*: a group may not reach disk before every group it depends on
(through pre-committed lock hand-offs) is durable; independent roots write
simultaneously.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set

from repro.recovery.log_device import PartitionedLog
from repro.recovery.records import (
    DEFAULT_SIZING,
    CommitRecord,
    LogRecord,
    RecordSizing,
    UpdateRecord,
    pack_pages,
)
from repro.recovery.stable_memory import StableMemory
from repro.sim.events import EventQueue
from repro.errors import ConfigurationError


class CommitPolicy(enum.Enum):
    """The three Section 5 commit disciplines (see module docstring)."""

    CONVENTIONAL = "conventional"
    GROUP = "group"
    STABLE = "stable"


@dataclass
class _CommitGroup:
    """The transactions sharing one log page, plus its dependency edges."""

    group_id: int
    stream: int = 0
    records: List[LogRecord] = field(default_factory=list)
    bytes_used: int = 0
    commit_tids: List[int] = field(default_factory=list)
    #: Commit groups that must be durable before this page may be written.
    depends_on: Set[int] = field(default_factory=set)
    sealed: bool = False
    dispatched: bool = False
    #: A group-commit timer is pending for this group.  One timer per
    #: group: the first commit arms it, later commits ride the same bound.
    timer_armed: bool = False


class LogManager:
    """Appends records, packs pages, and enforces commit ordering."""

    def __init__(
        self,
        queue: EventQueue,
        policy: CommitPolicy = CommitPolicy.GROUP,
        devices: int = 1,
        sizing: RecordSizing = DEFAULT_SIZING,
        page_write_time: float = 0.010,
        stable: Optional[StableMemory] = None,
        compress: bool = False,
        on_commit: Optional[Callable[[int], None]] = None,
        max_commit_delay: Optional[float] = None,
        pipeline: bool = False,
    ) -> None:
        """``max_commit_delay`` bounds group-commit latency: a page holding
        a commit record is force-sealed that many seconds after the commit
        was appended even if it never fills -- the timer real group-commit
        implementations add so a lone transaction on an idle system is not
        stranded in the buffer.

        ``pipeline`` pins each commit stream to its own log device, so a
        stream's sealed groups queue FIFO on one device while other
        streams flush concurrently -- instead of every group racing to the
        momentarily least-busy device and the streams advancing in
        lockstep.  Off by default (least-busy dispatch, the seed
        behaviour)."""
        if policy is CommitPolicy.STABLE and stable is None:
            stable = StableMemory()
        if compress and policy is not CommitPolicy.STABLE:
            raise ConfigurationError(
                "new-value-only compression needs the stable-memory policy: "
                "old values may only be dropped once the transaction is "
                "durably committed (Section 5.4)"
            )
        self.queue = queue
        self.policy = policy
        self.sizing = sizing
        self.stable = stable
        self.compress = compress
        self.on_commit = on_commit
        #: Optional batch completion hook: called once per durable commit
        #: group with the list of newly durable tids (in commit order).
        #: When set it replaces ``on_commit``; the engine uses it to
        #: finalize a whole page of transactions per call.
        self.on_commit_batch: Optional[Callable[[List[int]], None]] = None
        self.max_commit_delay = max_commit_delay
        self.pipeline = pipeline
        self.log = PartitionedLog(queue, devices, page_write_time)
        #: Optional :class:`repro.chaos.FaultInjector`; group seals are
        #: schedulable points so crash sweeps can land mid-group.
        self.fault_injector = None

        self._next_lsn = 0
        self._next_group = 0
        # One open commit group per device ("stream"): transactions are
        # assigned to streams by tid, so independent transactions fill
        # independent pages that can be written simultaneously -- the
        # parallelism Section 5.2's partitioned log is after.  A single
        # device degenerates to the classic single append stream.
        self._groups: Dict[int, _CommitGroup] = {}
        self._open_groups: List[_CommitGroup] = [
            self._new_open_group(stream) for stream in range(devices)
        ]
        self._parked: Deque[int] = deque()  # sealed groups awaiting deps
        self._durable_groups: Set[int] = set()
        #: tid -> group carrying its commit/abort record (dependency target).
        self._group_of_tid: Dict[int, int] = {}
        #: tid -> groups carrying any of its records.  A transaction's
        #: commit (or abort) group depends on all of them: the WAL rule
        #: that a commit record may not be durable before the updates it
        #: covers, generalised to the partitioned-log lattice.
        self._record_groups: Dict[int, Set[int]] = {}

        self.durable_tids: Set[int] = set()
        self._drain_cursor = 0  # stable records currently in flight
        #: Full (uncompressed) bytes of stable records not yet dispatched
        #: to disk -- an O(1) drain trigger in place of re-summing the
        #: pending tail on every append.  Full-size accounting is safe:
        #: it can only fire the check *early*, and a non-forced drain
        #: writes nothing unless a genuinely full page has formed.
        self._undrained_full_bytes = 0
        self.committed_count = 0
        self.bytes_appended = 0
        self.bytes_written_to_disk = 0
        # Group-commit statistics (the Section 5.2 batching, measured).
        self.groups_sealed = 0
        self._group_records_total = 0
        self._group_bytes_total = 0
        self._group_commits_total = 0
        self.flush_reasons: Dict[str, int] = {}
        self.compression_savings_bytes = 0
        #: Records durable on the disk log OR in stable memory, in LSN
        #: order -- what restart recovery reads.
        self._durable_records: List[LogRecord] = []

    # -- bookkeeping -------------------------------------------------------------

    def _alloc_group(self) -> int:
        gid = self._next_group
        self._next_group += 1
        return gid

    def _new_open_group(self, stream: int = 0) -> _CommitGroup:
        group = _CommitGroup(group_id=self._alloc_group(), stream=stream)
        self._groups[group.group_id] = group
        return group

    def _stream_of(self, tid: int) -> int:
        return tid % len(self._open_groups)

    def _open_for(self, tid: int) -> _CommitGroup:
        return self._open_groups[self._stream_of(tid)]

    @property
    def page_capacity_bytes(self) -> int:
        return self.sizing.page_bytes

    def next_lsn(self) -> int:
        return self._next_lsn

    # -- appends -----------------------------------------------------------------

    def append(self, record: LogRecord) -> int:
        """Assign an LSN and buffer ``record``; returns the LSN."""
        record.lsn = self._next_lsn
        self._next_lsn += 1
        self.bytes_appended += record.size(self.sizing)

        if self.policy is CommitPolicy.STABLE:
            assert self.stable is not None
            self.stable.append_record(record, self.sizing)
            self._undrained_full_bytes += record.size(self.sizing)
            self._maybe_drain_stable()
            return record.lsn

        size = record.size(self.sizing)
        stream = self._stream_of(record.tid)
        if self._open_groups[stream].bytes_used + size > self.sizing.page_bytes:
            self._seal_open_group(stream, reason="fill")
        group = self._open_groups[stream]
        group.records.append(record)
        group.bytes_used += size
        self._record_groups.setdefault(record.tid, set()).add(group.group_id)
        return record.lsn

    def append_commit(
        self, tid: int, dependencies: Set[int] = frozenset()
    ) -> int:
        """Append ``tid``'s commit record; wire its group dependencies.

        ``dependencies`` are the pre-committed transactions ``tid`` picked
        up through the lock table; the commit group inherits the commit
        groups of any that are not yet durable.
        """
        record = CommitRecord(tid=tid)
        lsn = self.append(record)

        if self.policy is CommitPolicy.STABLE:
            # Durable the instant it is in stable memory.
            self._mark_durable_tid(tid)
            return lsn

        group = self._open_for(tid)
        group.commit_tids.append(tid)
        self._group_of_tid[tid] = group.group_id
        # WAL: every group holding this transaction's own records must be
        # durable first.
        for gid in self._record_groups.get(tid, ()):
            if gid != group.group_id:
                group.depends_on.add(gid)
        # Pre-commit ordering: every not-yet-durable dependency's commit
        # (or abort) group must be durable first.  A dependency whose
        # group is still open gets sealed *now*: edges must always point
        # to already-sealed groups, which makes the lattice a DAG by
        # construction (otherwise two streams could park on each other).
        for dep in dependencies:
            if dep in self.durable_tids:
                continue
            dep_gid = self._group_of_tid.get(dep)
            if dep_gid is None or dep_gid == group.group_id:
                continue
            dep_group = self._groups.get(dep_gid)
            if dep_group is not None and not dep_group.sealed:
                self._seal_open_group(dep_group.stream, reason="dependency")
            group.depends_on.add(dep_gid)

        if self.policy is CommitPolicy.CONVENTIONAL:
            # Force the log: the page goes out now, mostly empty.
            self._seal_open_group(self._stream_of(tid), reason="force")
        elif group.bytes_used >= self.sizing.page_bytes:
            self._seal_open_group(self._stream_of(tid), reason="fill")
        elif self.max_commit_delay is not None and not group.timer_armed:
            # Group-commit timer: make sure this commit's page goes out
            # within the latency bound even if traffic stops.  One timer
            # per group -- the first commit arms it; re-arming on every
            # commit would only schedule no-op events behind it.
            group.timer_armed = True
            gid = group.group_id
            self.queue.schedule(
                self.max_commit_delay,
                lambda: self._seal_if_still_open(gid),
                label="group commit timer",
            )
        return lsn

    def _seal_if_still_open(self, group_id: int) -> None:
        for stream, group in enumerate(self._open_groups):
            if group.group_id == group_id and group.records:
                self._seal_open_group(stream, reason="timer")
                return

    def append_abort(self, tid: int) -> int:
        """Append ``tid``'s abort record, wired like a commit group.

        The abort group depends on the groups carrying the transaction's
        updates and compensations, so a durable abort record certifies the
        whole rollback history is durable -- recovery then *redoes* the
        compensations rather than undoing the transaction.
        """
        from repro.recovery.records import AbortRecord

        record = AbortRecord(tid=tid)
        lsn = self.append(record)
        if self.policy is CommitPolicy.STABLE:
            return lsn
        group = self._open_for(tid)
        self._group_of_tid[tid] = group.group_id
        for gid in self._record_groups.get(tid, ()):
            if gid != group.group_id:
                group.depends_on.add(gid)
        return lsn

    def flush(self) -> None:
        """Seal and dispatch the open page (end of run / idle timeout)."""
        if self.policy is CommitPolicy.STABLE:
            self._drain_stable(force=True)
            return
        for stream, group in enumerate(self._open_groups):
            if group.records:
                self._seal_open_group(stream, reason="flush")

    def commit_barrier(self) -> int:
        """Explicit barrier: seal every open group *now*, ahead of both the
        fill and timer triggers (the third arm of the adaptive policy --
        checkpointers and shutdown paths use it to bound what a crash can
        strand in the buffer).  Returns how many non-empty groups sealed;
        under the stable policy it instead forces a full drain."""
        if self.policy is CommitPolicy.STABLE:
            self._drain_stable(force=True)
            return 0
        sealed = 0
        for stream, group in enumerate(self._open_groups):
            if group.records:
                self._seal_open_group(stream, reason="barrier")
                sealed += 1
        return sealed

    # -- group sealing and dispatch ---------------------------------------------------

    def _note_group(
        self, reason: str, n_records: int, disk_bytes: int, n_commits: int
    ) -> None:
        self.groups_sealed += 1
        self._group_records_total += n_records
        self._group_bytes_total += disk_bytes
        self._group_commits_total += n_commits
        self.flush_reasons[reason] = self.flush_reasons.get(reason, 0) + 1

    def _seal_open_group(self, stream: int, reason: str = "fill") -> None:
        group = self._open_groups[stream]
        if group.records and self.fault_injector is not None:
            # Mid-group crash point: the group is about to leave the
            # buffer; a crash here strands exactly this page's records.
            self.fault_injector.point(
                "group seal g%d %s" % (group.group_id, reason)
            )
        group.sealed = True
        self._open_groups[stream] = self._new_open_group(stream)
        if group.records:
            self._note_group(
                reason, len(group.records), group.bytes_used,
                len(group.commit_tids),
            )
            self._parked.append(group.group_id)
            self._dispatch_ready()
        else:
            # Empty page: trivially durable.
            self._durable_groups.add(group.group_id)
            self._groups.pop(group.group_id, None)

    def _dispatch_ready(self) -> None:
        """Write every parked group whose dependencies are durable.

        "The roots of the topological lattice can be written to disk
        simultaneously" -- each eligible group goes to the least busy
        device.
        """
        still_parked: Deque[int] = deque()
        while self._parked:
            gid = self._parked.popleft()
            group = self._groups[gid]
            if group.dispatched:
                continue
            if group.depends_on - self._durable_groups:
                still_parked.append(gid)
                continue
            group.dispatched = True
            self._write_group(group)
        self._parked = still_parked

    def _write_group(self, group: _CommitGroup) -> None:
        if self.pipeline:
            # Stream affinity: this stream's pages queue FIFO on its own
            # device; other streams' groups flush concurrently on theirs.
            device = self.log.device_for(group.stream)
        else:
            device = self.log.least_busy()

        self.bytes_written_to_disk += group.bytes_used

        def complete(_page) -> None:
            self._durable_groups.add(group.group_id)
            # The group's records are durable; drop the group object so the
            # horizon scan stays proportional to in-flight pages.
            self._groups.pop(group.group_id, None)
            self._durable_records.extend(group.records)
            self._mark_durable_group(group.commit_tids)
            self._dispatch_ready()

        device.write_page(list(group.records), complete)

    def _mark_durable_tid(self, tid: int) -> None:
        self._mark_durable_group([tid])

    def _mark_durable_group(self, tids: List[int]) -> None:
        """The whole group's commits became durable at once: record them
        and notify -- one batch callback when the engine installed one,
        else one ``on_commit`` per tid (seed behaviour)."""
        newly = [t for t in tids if t not in self.durable_tids]
        if not newly:
            return
        self.durable_tids.update(newly)
        self.committed_count += len(newly)
        if self.on_commit_batch is not None:
            self.on_commit_batch(newly)
        elif self.on_commit is not None:
            for tid in newly:
                self.on_commit(tid)

    # -- stable-memory drain ------------------------------------------------------------

    def _record_disk_size(self, record: LogRecord) -> int:
        if (
            self.compress
            and isinstance(record, UpdateRecord)
            and record.tid in self.durable_tids
        ):
            return record.compressed_size(self.sizing)
        return record.size(self.sizing)

    def _maybe_drain_stable(self) -> None:
        # O(1) trigger: a full page cannot have formed while even the
        # *uncompressed* undrained bytes are below one page.
        if self._undrained_full_bytes >= self.sizing.page_bytes:
            self._drain_stable(force=False)

    def _drain_stable(self, force: bool) -> None:
        """Pack pending stable records into pages and write them out.

        Records stay in stable memory until the disk write *completes*
        (releasing them at dispatch would lose them to a crash that lands
        mid-write); ``_drain_cursor`` marks how many are already in
        flight.  The whole undrained tail is encoded in one
        :func:`~repro.recovery.records.pack_pages` pass -- compression
        (Section 5.4, new values only for durably committed transactions)
        is applied per group, not re-derived per record per poke.
        """
        assert self.stable is not None
        compressible = self.durable_tids if self.compress else None
        for page_records, used, closed in pack_pages(
            self.stable.iter_pending(self._drain_cursor),
            self.sizing,
            compressible,
        ):
            if not closed and not force:
                return  # wait for a full page's worth
            full = sum(r.size(self.sizing) for r in page_records)
            self._drain_cursor += len(page_records)
            self._undrained_full_bytes -= full
            self.bytes_written_to_disk += used
            self.compression_savings_bytes += full - used
            n_commits = sum(
                1 for r in page_records if isinstance(r, CommitRecord)
            )
            self._note_group("drain", len(page_records), used, n_commits)
            durable = list(page_records)

            def complete(_page, records=durable) -> None:
                self._durable_records.extend(records)
                self.stable.release_records(len(records), self.sizing)
                self._drain_cursor -= len(records)

            self.log.least_busy().write_page(durable, complete)
            if not force:
                # One page per poke; the next append re-checks.
                return

    def durable_lsn_horizon(self) -> int:
        """Largest LSN L such that every record with lsn <= L is durable.

        The WAL bound the checkpointer needs: a data page may only be
        written to the snapshot disk once the log covering its updates is
        safe.  Stable-memory records are durable the moment they are
        appended, so under that policy the horizon is simply the last
        assigned LSN.
        """
        if self.policy is CommitPolicy.STABLE:
            return self._next_lsn - 1
        horizon = self._next_lsn - 1
        for group in self._groups.values():
            if group.group_id in self._durable_groups or not group.records:
                continue
            first = group.records[0].lsn
            horizon = min(horizon, first - 1)
        return horizon

    # -- recovery interface ---------------------------------------------------------------

    def durable_log(self) -> List[LogRecord]:
        """Every record recovery can see, in LSN order.

        Disk pages plus -- because it survives the crash -- whatever is
        still buffered in stable memory.
        """
        by_lsn: Dict[int, LogRecord] = {r.lsn: r for r in self._durable_records}
        if self.stable is not None:
            # In-flight drains leave records both dispatched and stable;
            # keying by LSN deduplicates them.
            for record in self.stable.pending_records():
                by_lsn[record.lsn] = record
        return [by_lsn[lsn] for lsn in sorted(by_lsn)]

    def truncate_before(self, lsn: int) -> int:
        """Discard durable records with ``lsn < lsn`` -- log space
        management (Section 5.4's theme): once a checkpoint guarantees
        recovery never reads below the dirty-page-table minimum, the
        prefix can be reclaimed.  Returns how many records were dropped.

        Callers are responsible for passing a safe bound (the recovery
        redo start, i.e. ``min`` of the stable dirty-page table, and no
        later than the oldest active transaction's begin record).
        """
        before = len(self._durable_records)
        self._durable_records = [
            r for r in self._durable_records if r.lsn >= lsn
        ]
        dropped = before - len(self._durable_records)
        self.records_truncated = getattr(self, "records_truncated", 0) + dropped
        return dropped

    def stats(self) -> Dict[str, float]:
        return {
            "committed": self.committed_count,
            "pages_written": self.log.pages_written,
            "bytes_appended": self.bytes_appended,
            "bytes_written_to_disk": self.bytes_written_to_disk,
            "groups_sealed": self.groups_sealed,
        }

    def group_commit_stats(self) -> Dict[str, object]:
        """The batching the adaptive flush policy actually achieved:
        groups sealed, mean group size (records / bytes / commits), a
        histogram of why each group left the buffer, and the bytes the
        new-value-only compression fast path saved."""
        sealed = self.groups_sealed
        return {
            "groups_sealed": sealed,
            "mean_group_records": (
                self._group_records_total / sealed if sealed else 0.0
            ),
            "mean_group_bytes": (
                self._group_bytes_total / sealed if sealed else 0.0
            ),
            "mean_commits_per_group": (
                self._group_commits_total / sealed if sealed else 0.0
            ),
            "flush_reasons": dict(self.flush_reasons),
            "compression_savings_bytes": self.compression_savings_bytes,
        }


__all__ = ["CommitPolicy", "LogManager"]
