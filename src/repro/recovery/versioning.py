"""Multi-version reads -- the paper's Section 6 future-work item.

"While locking is generally accepted to be the algorithm of choice for disk
resident databases, a versioning mechanism [REED83] may provide superior
performance for memory resident systems."  This module implements that
mechanism for read-only work: update transactions keep using strict 2PL,
but each pre-commit publishes its after-images into per-record version
chains stamped with the *commit-record LSN*.  Because 2PL's serialization
order equals commit-LSN order (dependents append their commit records
later), a read-only snapshot pinned at LSN ``s`` -- "every transaction
whose commit record has LSN <= s" -- is a transaction-consistent view, and
reading it takes no locks at all.

Snapshots deliberately include *pre-committed* transactions: the same
choice the paper's group-commit design makes for dependent writers.  A
crash can only lose a suffix of the commit order, so any prefix view is
recoverable-consistent.

Version chains are pruned up to the oldest live snapshot (``prune``), so
memory use is bounded by update volume times snapshot lifetime.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Tuple

from repro.recovery.state import DatabaseState
from repro.recovery.transactions import Transaction, TransactionEngine
from repro.errors import ConfigurationError, StateError


class SnapshotView:
    """A lock-free, transaction-consistent read view pinned at one LSN."""

    def __init__(self, manager: "VersionManager", lsn: int) -> None:
        self._manager = manager
        self.lsn = lsn
        self._released = False

    def read(self, record_id: int) -> Any:
        """Value of ``record_id`` as of this snapshot (no locks taken)."""
        if self._released:
            raise StateError("snapshot already released")
        return self._manager.read_at(record_id, self.lsn)

    def read_many(self, record_ids) -> List[Any]:
        return [self.read(rid) for rid in record_ids]

    def total(self) -> Any:
        """Sum over every record -- the consistency audit for banking."""
        return sum(
            self.read(rid) for rid in range(self._manager.n_records)
        )

    def release(self) -> None:
        """Unpin; lets the manager prune versions this view held back."""
        if not self._released:
            self._released = True
            self._manager._release(self.lsn)

    def __enter__(self) -> "SnapshotView":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class VersionManager:
    """Per-record version chains keyed by commit-record LSN."""

    def __init__(self, engine: TransactionEngine) -> None:
        if engine.versions is not None:
            raise ConfigurationError("engine already has a version manager")
        self.engine = engine
        self.n_records = engine.state.n_records
        #: Base (pre-history) values, captured at attach time.
        self._base: List[Any] = list(engine.state.values)
        #: record id -> parallel (lsns, values) lists, ascending by LSN.
        self._chains: Dict[int, Tuple[List[int], List[Any]]] = {}
        #: LSNs of live snapshots (multiset as a sorted list).
        self._pinned: List[int] = []
        self.versions_recorded = 0
        self.versions_pruned = 0
        engine.versions = self

    # -- producer side (called by the engine at pre-commit) ------------------

    def record(self, txn: Transaction, commit_lsn: int) -> None:
        """Publish ``txn``'s after-images under its commit LSN."""
        for record_id, value in txn.writes.items():
            lsns, values = self._chains.setdefault(record_id, ([], []))
            lsns.append(commit_lsn)
            values.append(value)
            self.versions_recorded += 1

    # -- consumer side ---------------------------------------------------------

    def snapshot(self) -> SnapshotView:
        """Pin a view at the current end of the commit order."""
        lsn = self.engine.log.next_lsn() - 1
        bisect.insort(self._pinned, lsn)
        return SnapshotView(self, lsn)

    def read_at(self, record_id: int, lsn: int) -> Any:
        chain = self._chains.get(record_id)
        if chain is None:
            return self._base[record_id]
        lsns, values = chain
        i = bisect.bisect_right(lsns, lsn)
        if i == 0:
            return self._base[record_id]
        return values[i - 1]

    # -- garbage collection --------------------------------------------------------

    def _release(self, lsn: int) -> None:
        i = bisect.bisect_left(self._pinned, lsn)
        if i < len(self._pinned) and self._pinned[i] == lsn:
            del self._pinned[i]

    def oldest_pin(self) -> Optional[int]:
        return self._pinned[0] if self._pinned else None

    def prune(self) -> int:
        """Drop versions no live snapshot can see; returns how many.

        For each record, every version strictly older than the newest
        version at-or-below the oldest pin is unreachable; with no pins,
        only the newest version of each record must survive (it becomes
        the base value).
        """
        horizon = self.oldest_pin()
        dropped = 0
        for record_id, (lsns, values) in list(self._chains.items()):
            if horizon is None:
                keep_from = len(lsns) - 1
            else:
                keep_from = max(0, bisect.bisect_right(lsns, horizon) - 1)
            if keep_from <= 0:
                continue
            # Fold the newest dropped version into the base value.
            self._base[record_id] = values[keep_from - 1]
            del lsns[:keep_from]
            del values[:keep_from]
            dropped += keep_from
            if not lsns:
                del self._chains[record_id]
        self.versions_pruned += dropped
        return dropped

    @property
    def live_versions(self) -> int:
        return sum(len(lsns) for lsns, _ in self._chains.values())

    def __repr__(self) -> str:
        return "VersionManager(%d live versions, %d pins)" % (
            self.live_versions,
            len(self._pinned),
        )


__all__ = ["SnapshotView", "VersionManager"]
