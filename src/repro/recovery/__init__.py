"""Recovery for memory-resident databases -- Section 5 of the paper.

The package implements the paper's full recovery stack over the simulated
clock/event queue:

* :mod:`repro.recovery.records` -- begin/update/commit/abort log records
  with the paper's byte sizing (a "typical" transaction logs ~400 bytes).
* :mod:`repro.recovery.log_device` -- a log disk writing 4 KB pages in
  10 ms, plus multi-device partitioned logs.
* :mod:`repro.recovery.log_manager` -- the three commit disciplines:
  conventional WAL (force the log per commit), **group commit** with
  pre-committed transactions, and **stable memory** (battery-backed log
  tail, optional new-value-only compression).
* :mod:`repro.recovery.lock_table` -- locks extended with the paper's
  third set: pre-committed holders, feeding commit-dependency tracking.
* :mod:`repro.recovery.state` -- the memory-resident database image with
  page LSNs, its disk snapshot, and the stable dirty-page table.
* :mod:`repro.recovery.transactions` -- the transaction engine tying the
  above together.
* :mod:`repro.recovery.checkpoint` -- the fuzzy background checkpointer.
* :mod:`repro.recovery.restart` -- crash simulation and restart recovery
  (snapshot reload, undo losers, redo winners from the dirty-page bound).
"""

from repro.recovery.checkpoint import Checkpointer
from repro.recovery.lock_table import LockMode, LockTable
from repro.recovery.log_device import LogDevice, PartitionedLog
from repro.recovery.log_manager import CommitPolicy, LogManager
from repro.recovery.parallel_restart import parallel_redo
from repro.recovery.records import (
    AbortRecord,
    BeginRecord,
    CommitRecord,
    GroupEncoding,
    LogRecord,
    RecordSizing,
    UpdateRecord,
    encode_group,
    pack_pages,
)
from repro.recovery.restart import (
    CrashState,
    RecoveryError,
    RecoveryOutcome,
    crash,
    recover,
)
from repro.recovery.stable_memory import StableMemory
from repro.recovery.state import DatabaseState, DiskSnapshot, DirtyPageTable
from repro.recovery.transactions import (
    Transaction,
    TransactionEngine,
    TransactionState,
)
from repro.recovery.versioning import SnapshotView, VersionManager

__all__ = [
    "AbortRecord",
    "BeginRecord",
    "Checkpointer",
    "CommitPolicy",
    "CommitRecord",
    "CrashState",
    "DatabaseState",
    "DirtyPageTable",
    "DiskSnapshot",
    "GroupEncoding",
    "LockMode",
    "LockTable",
    "LogDevice",
    "LogManager",
    "LogRecord",
    "PartitionedLog",
    "RecordSizing",
    "RecoveryError",
    "RecoveryOutcome",
    "SnapshotView",
    "StableMemory",
    "Transaction",
    "TransactionEngine",
    "TransactionState",
    "UpdateRecord",
    "VersionManager",
    "crash",
    "encode_group",
    "pack_pages",
    "parallel_redo",
    "recover",
]
