"""Parallel partitioned-log redo -- the batched restart hot path.

The serial :func:`repro.recovery.restart.recover` interprets the log one
record at a time: per record it classifies the type, looks up the winner
set, maps the record to its page, and compares LSNs.  This module replays
the same log as *batches over page partitions*:

* the **coordinator** buckets the relevant update records by page in one
  sweep, dropping whole pages whose snapshot copy already covers every
  logged update (the bulk clean-page skip the stable dirty-page table
  enables);
* **partitions** of pages are replayed independently: per page, undo
  qualifying loser updates backward then redo winner updates forward --
  exactly the serial per-record rules, restricted to that page.  Pages
  are disjoint (a record lives on one page; per-page LSN guards are
  per-page state), so partitions replay without coordination;
* when a fork pool is worth it -- multiple cores and enough bucketed
  records to amortize the fork + pickle round trip -- partitions go to
  worker processes (the PR 2 join-pool idiom) which pickle back only the
  applied deltas, and the coordinator **merges** them.  Partitions are
  disjoint and each worker applied its records in log order, so the
  merge preserves the topological commit ordering the commit-group
  lattice wrote the log in.  Otherwise the identical partition tasks run
  inline, writing deltas straight into the image -- same result and
  statistics for any worker count, and the layout the *simulated*
  multi-stream restart cost is modelled on.

Workers inherit the bucketed log through the fork (module-global
:data:`_CTX`); only a partition index is pickled in and only the applied
deltas are pickled out.

The recovered image and every statistic except the modelled parallel
restart time are byte-identical to the serial path for any crash state
-- including structurally corrupt ones, which raise the same
:class:`~repro.recovery.restart.RecoveryError`.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from repro.join.parallel import make_pool
from repro.recovery.records import UpdateRecord

#: Bucketed work inherited by forked workers: (undo_by_page, redo_by_page,
#: snapshot_lsn).  Set only for the duration of the pool's lifetime; the
#: per-call task argument is just a list of page ids.
_CTX: Optional[Tuple[Dict, Dict, List[int]]] = None

#: Below this many bucketed update records the fork + pickle round trip
#: costs more than the replay it distributes; the partition tasks then
#: run inline.  Forking also never pays on a single-core host, however
#: large the log.
MIN_RECORDS_FOR_POOL = 65536


def _replay_pages(
    pages: List[int],
    undo_by_page: Dict[int, List[UpdateRecord]],
    redo_by_page: Dict[int, List[UpdateRecord]],
    snapshot_lsn: List[int],
    values,
    page_lsn,
) -> Tuple[int, int]:
    """Replay one partition into ``values``/``page_lsn``: per page, undo
    backward then redo forward.  The output containers only need item
    assignment, so the inline path passes the image's own arrays and the
    pool task passes delta dicts.  Returns ``(redone, undone)``."""
    redone = 0
    undone = 0
    for page in pages:
        losers = undo_by_page.get(page)
        if losers:
            # Backward: the earliest qualifying old value wins, and every
            # application counts (the serial pass applies each one).
            for record in reversed(losers):
                values[record.record_id] = record.old_value
            undone += len(losers)
        winners = redo_by_page.get(page)
        if winners:
            floor = snapshot_lsn[page]
            for record in winners:
                if record.lsn > floor:
                    values[record.record_id] = record.new_value
                    page_lsn[page] = record.lsn
                    redone += 1
    return redone, undone


def _partition_task(
    pages: List[int],
) -> Tuple[Dict[int, Any], Dict[int, int], int, int]:
    """Pool task: replay the pages of one partition from the forked
    context.  Pure CPU over inherited memory; nothing global mutates."""
    assert _CTX is not None
    undo_by_page, redo_by_page, snapshot_lsn = _CTX
    values: Dict[int, Any] = {}
    page_lsn: Dict[int, int] = {}
    redone, undone = _replay_pages(
        pages, undo_by_page, redo_by_page, snapshot_lsn, values, page_lsn
    )
    return values, page_lsn, redone, undone


def parallel_redo(
    state,
    log,
    winners,
    snapshot_lsn: List[int],
    redo_start: int,
    workers: int,
    injector=None,
) -> Tuple[int, int, int, int]:
    """Batched undo + redo of ``log`` into ``state`` across ``workers``.

    Returns ``(scanned, redone, undone, pages_skipped_clean)``.  The
    caller (:func:`repro.recovery.restart.recover`) has already validated
    the crash state, loaded the snapshot, and resolved winners.
    """
    global _CTX

    # ---- bucket the log by page, one sweep (the analysis tail). ----
    rpp = state.records_per_page
    # Loser updates the fuzzy snapshot may have absorbed: qualify by the
    # page's snapshot LSN now so partitions never see a non-applying
    # loser record.
    undo_by_page: Dict[int, List[UpdateRecord]] = {}
    redo_by_page: Dict[int, List[UpdateRecord]] = {}
    scanned = 0
    for record in log:
        in_suffix = record.lsn >= redo_start
        if in_suffix:
            scanned += 1
        if not isinstance(record, UpdateRecord):
            continue
        page = record.record_id // rpp
        if record.tid in winners:
            if in_suffix:
                redo_by_page.setdefault(page, []).append(record)
        elif record.lsn <= snapshot_lsn[page]:
            undo_by_page.setdefault(page, []).append(record)

    # ---- bulk clean-page skip: a page whose logged updates are all ----
    # ---- covered by its snapshot copy never reaches a partition.   ----
    pages_skipped_clean = 0
    for page in list(redo_by_page):
        records = redo_by_page[page]
        if max(r.lsn for r in records) <= snapshot_lsn[page]:
            del redo_by_page[page]
            pages_skipped_clean += 1

    touched = sorted(set(undo_by_page) | set(redo_by_page))
    if not touched:
        return scanned, 0, 0, pages_skipped_clean

    # ---- partition pages round-robin and replay. ----
    workers = max(1, min(workers, len(touched)))
    partitions: List[List[int]] = [
        touched[i::workers] for i in range(workers)
    ]
    total_records = sum(len(v) for v in undo_by_page.values()) + sum(
        len(v) for v in redo_by_page.values()
    )
    pool = None
    if (
        workers > 1
        and total_records >= MIN_RECORDS_FOR_POOL
        and (os.cpu_count() or 1) > 1
    ):
        _CTX = (undo_by_page, redo_by_page, snapshot_lsn)
        pool = make_pool(workers)

    redone = 0
    undone = 0
    if pool is not None:
        try:
            if injector is not None:
                for idx in range(len(partitions)):
                    injector.point("redo partition %d dispatch" % idx)
            results = pool.map(_partition_task, partitions)
        finally:
            pool.terminate()
            pool.join()
            _CTX = None
        # ---- coordinator merge: disjoint partitions, log order ----
        # ---- within each page, so commit order is preserved.   ----
        if injector is not None:
            injector.point("parallel redo merge")
        values = state.values
        lsns = state.page_lsn
        for part_values, part_lsn, part_redone, part_undone in results:
            for record_id, value in part_values.items():
                values[record_id] = value
            for page, lsn in part_lsn.items():
                lsns[page] = lsn
            redone += part_redone
            undone += part_undone
    else:
        # Inline: the same partition tasks, writing deltas straight into
        # the image (partitions are disjoint, so no merge is needed).
        for idx, pages in enumerate(partitions):
            if injector is not None:
                injector.point("redo partition %d dispatch" % idx)
            part_redone, part_undone = _replay_pages(
                pages,
                undo_by_page,
                redo_by_page,
                snapshot_lsn,
                state.values,
                state.page_lsn,
            )
            redone += part_redone
            undone += part_undone
        # Keep the chaos-point schedule identical to the pool path.
        if injector is not None:
            injector.point("parallel redo merge")
    return scanned, redone, undone, pages_skipped_clean


__all__ = ["MIN_RECORDS_FOR_POOL", "parallel_redo"]
