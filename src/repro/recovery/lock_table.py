"""The lock table, extended for pre-committed transactions -- Section 5.2.

"Associated with each lock are three sets of transactions: active
transactions that currently hold the lock, transactions that are waiting to
be granted the lock, and pre-committed transactions that have released the
lock but have not yet committed.  When a transaction is granted a lock, it
becomes dependent on the pre-committed transactions that formerly held the
lock."

This module implements exactly that: per-lock ``holders`` / ``waiters`` /
``precommitted`` sets, shared/exclusive modes, FIFO grant order, and the
dependency reporting the transaction engine folds into commit groups.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Hashable, List, Optional, Sequence, Set, Tuple


class LockMode(enum.Enum):
    """Shared (readers coexist) vs exclusive (sole owner) lock modes."""

    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


@dataclass
class _Lock:
    """State for one lockable object."""

    holders: Dict[int, LockMode] = field(default_factory=dict)
    waiters: Deque[Tuple[int, LockMode]] = field(default_factory=deque)
    #: Pre-committed former holders that have not yet durably committed.
    precommitted: Set[int] = field(default_factory=set)


@dataclass(frozen=True)
class GrantNotice:
    """A waiter that just received its lock, with inherited dependencies."""

    tid: int
    obj: Hashable
    mode: LockMode
    dependencies: Tuple[int, ...] = ()


@dataclass(frozen=True)
class LockGrant:
    """Outcome of a lock request."""

    granted: bool
    #: Pre-committed transactions the requester now depends on (only
    #: meaningful when granted).
    dependencies: Tuple[int, ...] = ()


class LockTable:
    """Strict 2PL lock manager with pre-committed tracking."""

    def __init__(self) -> None:
        self._locks: Dict[Hashable, _Lock] = {}
        self._held_by_txn: Dict[int, Set[Hashable]] = {}

    def _lock(self, obj: Hashable) -> _Lock:
        lock = self._locks.get(obj)
        if lock is None:
            lock = _Lock()
            self._locks[obj] = lock
        return lock

    # -- acquisition ---------------------------------------------------------------

    def acquire(self, tid: int, obj: Hashable, mode: LockMode) -> LockGrant:
        """Request ``obj`` in ``mode``; FIFO queue when incompatible."""
        lock = self._lock(obj)
        current = lock.holders.get(tid)
        if current is not None:
            if current is mode or current is LockMode.EXCLUSIVE:
                return LockGrant(True, tuple(sorted(lock.precommitted)))
            # Upgrade S -> X: allowed only when sole holder and no waiters
            # ahead (otherwise queue the upgrade like a fresh request).
            if len(lock.holders) == 1 and not lock.waiters:
                lock.holders[tid] = LockMode.EXCLUSIVE
                return LockGrant(True, tuple(sorted(lock.precommitted)))
            lock.waiters.append((tid, mode))
            return LockGrant(False)

        if self._grantable(lock, mode):
            lock.holders[tid] = mode
            self._held_by_txn.setdefault(tid, set()).add(obj)
            return LockGrant(True, tuple(sorted(lock.precommitted)))
        lock.waiters.append((tid, mode))
        return LockGrant(False)

    def _grantable(self, lock: _Lock, mode: LockMode) -> bool:
        if lock.waiters:
            return False  # FIFO fairness: no barging past the queue
        return all(mode.compatible(m) for m in lock.holders.values())

    # -- pre-commit / commit / abort ---------------------------------------------------

    def precommit(self, tid: int) -> List["GrantNotice"]:
        """Move ``tid`` from the holder set to the pre-committed set on all
        its locks, releasing them for waiters.

        Returns a :class:`GrantNotice` per newly granted waiter, carrying
        the pre-committed dependencies the grantee picks up (which include
        ``tid`` itself -- that is the commit-ordering edge).
        """
        return self.precommit_batch([tid])

    def precommit_batch(self, tids: Sequence[int]) -> List["GrantNotice"]:
        """Pre-commit several transactions in one call: release every lock
        they hold into the pre-committed sets *first*, then resolve each
        affected object's wait queue once.

        One promotion sweep per object instead of one per (tid, object)
        pair means a page of waiters resolves per call, and a waiter
        blocked behind two members of the batch is granted in the single
        sweep rather than examined (and skipped) once per member.  For a
        single tid this degenerates to exactly the sequential release.
        """
        affected: Dict[Hashable, None] = {}
        for tid in tids:
            for obj in list(self._held_by_txn.get(tid, ())):
                lock = self._locks.get(obj)
                if lock is None or tid not in lock.holders:
                    continue
                del lock.holders[tid]
                lock.precommitted.add(tid)
                affected[obj] = None
        granted: List["GrantNotice"] = []
        for obj in affected:
            granted.extend(self._promote_waiters(obj, self._locks[obj]))
        # _held_by_txn is kept so finalize() can find the locks whose
        # precommitted sets mention each tid.
        return granted

    def finalize(self, tid: int) -> None:
        """``tid`` durably committed: drop it from pre-committed sets."""
        self.finalize_batch([tid])

    def finalize_batch(self, tids: Sequence[int]) -> None:
        """Finalize a whole durable commit group in one call (finalize
        never grants locks, so batching is pure bookkeeping: one pass over
        the union of the group's lock sets)."""
        for tid in tids:
            for obj in list(self._held_by_txn.get(tid, ())):
                lock = self._locks.get(obj)
                if lock is not None:
                    lock.precommitted.discard(tid)
                    self._gc(obj, lock)
            self._held_by_txn.pop(tid, None)

    def abort(self, tid: int) -> List["GrantNotice"]:
        """Release everything without entering the pre-committed state
        (aborts happen before pre-commit; a pre-committed transaction
        "never" aborts, per the paper).

        Waiters granted a lock this way still inherit a dependency on the
        aborter: their commit groups must not reach disk before the abort
        record (and the compensation updates it certifies) -- otherwise a
        crash could recover the dependent's commit but lose the rollback
        it was built on.
        """
        return self._release_all(tid, to_precommitted=False)

    def _release_all(
        self, tid: int, to_precommitted: bool
    ) -> List["GrantNotice"]:
        granted: List["GrantNotice"] = []
        extra_dep = None if to_precommitted else tid
        for obj in list(self._held_by_txn.get(tid, ())):
            lock = self._locks.get(obj)
            if lock is None or tid not in lock.holders:
                continue
            del lock.holders[tid]
            if to_precommitted:
                lock.precommitted.add(tid)
            granted.extend(self._promote_waiters(obj, lock, extra_dep))
            if not to_precommitted:
                self._gc(obj, lock)
        if not to_precommitted:
            self._held_by_txn.pop(tid, None)
        # When pre-committing we keep _held_by_txn so finalize() can find
        # the locks whose precommitted sets mention tid.
        return granted

    def _promote_waiters(
        self, obj: Hashable, lock: _Lock, extra_dep: Optional[int] = None
    ) -> List["GrantNotice"]:
        granted: List["GrantNotice"] = []
        while lock.waiters:
            tid, mode = lock.waiters[0]
            if not all(mode.compatible(m) for m in lock.holders.values()):
                break
            lock.waiters.popleft()
            lock.holders[tid] = mode
            self._held_by_txn.setdefault(tid, set()).add(obj)
            deps = set(lock.precommitted)
            if extra_dep is not None:
                deps.add(extra_dep)
            granted.append(GrantNotice(tid, obj, mode, tuple(sorted(deps))))
            if mode is LockMode.EXCLUSIVE:
                break
        return granted

    def _gc(self, obj: Hashable, lock: _Lock) -> None:
        if not lock.holders and not lock.waiters and not lock.precommitted:
            del self._locks[obj]

    def cancel_wait(self, tid: int) -> None:
        """Remove ``tid`` from every wait queue (deadlock-victim path)."""
        for obj, lock in list(self._locks.items()):
            before = len(lock.waiters)
            lock.waiters = type(lock.waiters)(
                (t, m) for t, m in lock.waiters if t != tid
            )
            if len(lock.waiters) != before:
                self._gc(obj, lock)

    # -- deadlock detection -----------------------------------------------------------

    def wait_for_edges(self) -> Dict[int, Set[int]]:
        """The wait-for graph: each waiter waits for every current holder
        of the lock it is queued on (and for waiters ahead of it, which
        FIFO fairness makes an implicit dependency)."""
        edges: Dict[int, Set[int]] = {}
        for lock in self._locks.values():
            ahead: List[int] = list(lock.holders)
            for tid, _ in lock.waiters:
                edges.setdefault(tid, set()).update(
                    t for t in ahead if t != tid
                )
                ahead.append(tid)
        return edges

    def find_deadlock(self, start: int) -> Optional[List[int]]:
        """A wait-for cycle through ``start``, or ``None``.

        Returns the cycle as a list of tids (``start`` first) so the
        engine can pick a victim.
        """
        edges = self.wait_for_edges()
        path: List[int] = []
        on_path: Set[int] = set()
        visited: Set[int] = set()

        def dfs(tid: int) -> Optional[List[int]]:
            if tid in on_path:
                return path[path.index(tid):]
            if tid in visited:
                return None
            visited.add(tid)
            path.append(tid)
            on_path.add(tid)
            for nxt in edges.get(tid, ()):
                cycle = dfs(nxt)
                if cycle is not None:
                    return cycle
            path.pop()
            on_path.discard(tid)
            return None

        cycle = dfs(start)
        if cycle and start in cycle:
            i = cycle.index(start)
            return cycle[i:] + cycle[:i]
        return cycle

    # -- introspection ----------------------------------------------------------------

    def holders(self, obj: Hashable) -> Dict[int, LockMode]:
        lock = self._locks.get(obj)
        return dict(lock.holders) if lock else {}

    def waiters(self, obj: Hashable) -> List[Tuple[int, LockMode]]:
        lock = self._locks.get(obj)
        return list(lock.waiters) if lock else []

    def precommitted(self, obj: Hashable) -> Set[int]:
        lock = self._locks.get(obj)
        return set(lock.precommitted) if lock else set()

    def locks_held(self, tid: int) -> Set[Hashable]:
        return set(self._held_by_txn.get(tid, ()))

    def __len__(self) -> int:
        return len(self._locks)


__all__ = ["GrantNotice", "LockGrant", "LockMode", "LockTable"]
