"""Fuzzy checkpointing -- Section 5.3 and 5.5.

"Data pages are periodically written to disk by a background process that
sweeps through data buffers to find dirty pages.  The disk arms are kept as
busy as possible."  The :class:`Checkpointer` does exactly that against the
simulated clock: every ``interval`` it captures images of the currently
dirty pages and streams them to the snapshot disk back to back at
``page_write_time`` each.  Images are captured at dispatch (so a page
updated while its copy is in flight re-dirties and will be swept again),
and each completed copy resets the page's entry in the stable dirty-page
table, advancing the redo start point recovery will use.
"""

from __future__ import annotations

from typing import List, Optional

from repro.recovery.state import DatabaseState, DirtyPageTable, DiskSnapshot, PageImage
from repro.recovery.transactions import TransactionEngine
from repro.sim.events import EventQueue
from repro.errors import ConfigurationError


class Checkpointer:
    """Background dirty-page sweeper writing to a :class:`DiskSnapshot`."""

    def __init__(
        self,
        engine: TransactionEngine,
        snapshot: DiskSnapshot,
        interval: float = 1.0,
        page_write_time: float = 0.010,
        batch_pages: int = 1,
    ) -> None:
        """``batch_pages`` groups that many page copies per install event:
        the sweep still charges ``page_write_time`` per page, but a batch
        lands in the snapshot as one unit (an incremental fuzzy checkpoint
        installing page batches).  ``1`` -- the default -- reproduces the
        one-event-per-page seed schedule exactly."""
        if interval <= 0:
            raise ConfigurationError("checkpoint interval must be positive")
        if batch_pages < 1:
            raise ConfigurationError("batch_pages must be at least 1")
        self.engine = engine
        self.snapshot = snapshot
        self.interval = interval
        self.page_write_time = page_write_time
        self.batch_pages = batch_pages
        self.sweeps = 0
        self.pages_checkpointed = 0
        self.installs_dropped = 0
        self._disk_free_at = 0.0
        self._running = False
        #: Optional :class:`repro.chaos.FaultInjector`: per-copy dispatch
        #: is a crash point, copies can be individually slowed, and an
        #: install can be dropped outright (a failed snapshot write).  A
        #: dropped install keeps the page's in-flight dirty-table entry,
        #: so the redo bound stays conservative -- the invariant chaos
        #: testing verifies.
        self.fault_injector = None
        #: page id -> FIFO of first-update LSNs for copies dispatched but
        #: not yet on disk.  Conceptually part of the stable dirty-page
        #: table: if the system crashes mid-copy these entries still bound
        #: redo (the image never landed, so recovery must start at the old
        #: LSN).  A FIFO because sweeps can overlap when the sweep takes
        #: longer than the interval -- two copies of the same page may be
        #: in flight, and each install retires only its own entry.
        self.in_flight: dict = {}

    @property
    def queue(self) -> EventQueue:
        return self.engine.queue

    @property
    def state(self) -> DatabaseState:
        return self.engine.state

    def start(self) -> None:
        """Begin periodic sweeping (idempotent)."""
        if self._running:
            return
        self._running = True
        self.queue.schedule(self.interval, self._sweep, label="checkpoint sweep")

    def stop(self) -> None:
        self._running = False

    def checkpoint_now(self, pages: Optional[List[int]] = None) -> int:
        """Sweep immediately; returns how many page copies were queued.

        Images are captured *now* (fuzzy), and the WAL rule is honoured at
        install time: a copy only lands in the snapshot once the durable
        log covers its ``page_lsn``.  To make that happen promptly for hot
        pages the sweep forces the log, the way a real checkpointer flushes
        the WAL up to the page LSN before writing the page.
        """
        dirty = sorted(self.state.dirty) if pages is None else pages
        if dirty and self.engine.log.durable_lsn_horizon() < max(
            self.state.page_lsn[p] for p in dirty
        ):
            self.engine.log.flush()
        done = max(self.queue.clock.now, self._disk_free_at)
        batch: List[PageImage] = []
        for page_id in dirty:
            if self.fault_injector is not None:
                self.fault_injector.point("checkpoint dispatch p%d" % page_id)
            image = self.state.copy_page(page_id)
            # The page image is consistent as of *now*; later updates
            # re-dirty the page and re-enter the dirty table.  The page's
            # first-update LSN parks in ``in_flight`` until the copy is
            # durable, so a crash mid-copy still bounds redo correctly.
            self.state.dirty.discard(page_id)
            entry = self.engine.dirty_table.first_update_lsn.pop(page_id, None)
            if entry is not None:
                self.in_flight.setdefault(page_id, []).append(entry)
            done += self.page_write_time
            if self.fault_injector is not None:
                done += self.fault_injector.write_delay(-1)
            batch.append(image)
            if len(batch) >= self.batch_pages:
                self._schedule_install(batch, done)
                batch = []
        if batch:
            self._schedule_install(batch, done)
        self._disk_free_at = done
        self.sweeps += 1
        return len(dirty)

    def _schedule_install(self, images: List[PageImage], done: float) -> None:
        """One install event per batch, at the batch's completion time."""
        self.queue.schedule_at(
            done,
            lambda imgs=list(images), t=done: self._install_batch(imgs, t),
            label="checkpoint page write",
        )

    def _install_batch(self, images: List[PageImage], timestamp: float) -> None:
        for image in images:
            self._install(image, timestamp)

    def _install(self, image: PageImage, timestamp: float) -> None:
        if self.fault_injector is not None and self.fault_injector.drop_checkpoint_write(
            image.page_id
        ):
            # The copy never lands and its in-flight dirty-table entry is
            # never retired: recovery keeps the pre-copy redo bound.
            self.installs_dropped += 1
            return
        if self.engine.log.durable_lsn_horizon() < image.page_lsn:
            # WAL: the log covering this image is still in flight.  The
            # sweep already forced it, so retry shortly.
            self.queue.schedule(
                self.page_write_time,
                lambda: self._install(image, self.queue.clock.now),
                label="checkpoint install retry (WAL)",
            )
            return
        self.snapshot.install(image, timestamp)
        # Retire the oldest in-flight entry for the page.  Out-of-order
        # installs are safe: a newer image covers everything an older
        # entry guarded, and the snapshot refuses to regress (below).
        entries = self.in_flight.get(image.page_id)
        if entries:
            entries.pop(0)
            if not entries:
                del self.in_flight[image.page_id]
        self.pages_checkpointed += 1

    def _sweep(self) -> None:
        if not self._running:
            return
        self.checkpoint_now()
        self.queue.schedule(self.interval, self._sweep, label="checkpoint sweep")


__all__ = ["Checkpointer"]
