"""Log records and their byte sizing.

Section 5.1 sizes a "typical" transaction at 400 bytes of log: 40 bytes of
begin/end records and 360 bytes of old/new values, which at one 4096-byte
page per 10 ms write yields the paper's throughput arithmetic (ten such
transactions fit a log page).  :class:`RecordSizing` captures those numbers
so benchmarks can vary them.

An :class:`UpdateRecord` carries both the old and the new value; Section
5.4's compression drops the old value ("only needed if the transaction must
be undone") once the transaction is known committed, roughly halving the
disk log -- :meth:`UpdateRecord.compressed_size` is that saving.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True)
class RecordSizing:
    """Byte sizes used when packing records into log pages."""

    begin_bytes: int = 20
    commit_bytes: int = 20
    abort_bytes: int = 20
    update_overhead_bytes: int = 24  # LSN, tid, record id, lengths
    value_bytes: int = 60            # one before- or after-image
    page_bytes: int = 4096

    @property
    def update_bytes(self) -> int:
        """A full old+new update record."""
        return self.update_overhead_bytes + 2 * self.value_bytes

    @property
    def compressed_update_bytes(self) -> int:
        """An update record with the old value stripped (Section 5.4)."""
        return self.update_overhead_bytes + self.value_bytes

    def typical_transaction_bytes(self, updates: int = 3) -> int:
        """Paper's ballpark: begin + end + ``updates`` old/new images.

        With the defaults, three updates come to 472 bytes -- the paper
        rounds to "400 bytes".
        """
        return self.begin_bytes + self.commit_bytes + updates * self.update_bytes


#: Module-default sizing (the paper's Table in prose).
DEFAULT_SIZING = RecordSizing()


@dataclass
class LogRecord:
    """Base log record; ``lsn`` is assigned by the log manager."""

    tid: int
    lsn: int = field(default=-1, compare=False)

    def size(self, sizing: RecordSizing) -> int:
        raise NotImplementedError


@dataclass
class BeginRecord(LogRecord):
    def size(self, sizing: RecordSizing) -> int:
        return sizing.begin_bytes


@dataclass
class CommitRecord(LogRecord):
    def size(self, sizing: RecordSizing) -> int:
        return sizing.commit_bytes


@dataclass
class AbortRecord(LogRecord):
    def size(self, sizing: RecordSizing) -> int:
        return sizing.abort_bytes


@dataclass
class UpdateRecord(LogRecord):
    """Before/after image of one record update."""

    record_id: int = 0
    old_value: Any = None
    new_value: Any = None

    def size(self, sizing: RecordSizing) -> int:
        return sizing.update_bytes

    def compressed_size(self, sizing: RecordSizing) -> int:
        return sizing.compressed_update_bytes


__all__ = [
    "AbortRecord",
    "BeginRecord",
    "CommitRecord",
    "DEFAULT_SIZING",
    "LogRecord",
    "RecordSizing",
    "UpdateRecord",
]
