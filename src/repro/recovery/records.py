"""Log records and their byte sizing.

Section 5.1 sizes a "typical" transaction at 400 bytes of log: 40 bytes of
begin/end records and 360 bytes of old/new values, which at one 4096-byte
page per 10 ms write yields the paper's throughput arithmetic (ten such
transactions fit a log page).  :class:`RecordSizing` captures those numbers
so benchmarks can vary them.

An :class:`UpdateRecord` carries both the old and the new value; Section
5.4's compression drops the old value ("only needed if the transaction must
be undone") once the transaction is known committed, roughly halving the
disk log -- :meth:`UpdateRecord.compressed_size` is that saving.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class RecordSizing:
    """Byte sizes used when packing records into log pages."""

    begin_bytes: int = 20
    commit_bytes: int = 20
    abort_bytes: int = 20
    update_overhead_bytes: int = 24  # LSN, tid, record id, lengths
    value_bytes: int = 60            # one before- or after-image
    page_bytes: int = 4096

    @property
    def update_bytes(self) -> int:
        """A full old+new update record."""
        return self.update_overhead_bytes + 2 * self.value_bytes

    @property
    def compressed_update_bytes(self) -> int:
        """An update record with the old value stripped (Section 5.4)."""
        return self.update_overhead_bytes + self.value_bytes

    def typical_transaction_bytes(self, updates: int = 3) -> int:
        """Paper's ballpark: begin + end + ``updates`` old/new images.

        With the defaults, three updates come to 472 bytes -- the paper
        rounds to "400 bytes".
        """
        return self.begin_bytes + self.commit_bytes + updates * self.update_bytes


#: Module-default sizing (the paper's Table in prose).
DEFAULT_SIZING = RecordSizing()


@dataclass
class LogRecord:
    """Base log record; ``lsn`` is assigned by the log manager."""

    tid: int
    lsn: int = field(default=-1, compare=False)

    def size(self, sizing: RecordSizing) -> int:
        raise NotImplementedError


@dataclass
class BeginRecord(LogRecord):
    def size(self, sizing: RecordSizing) -> int:
        return sizing.begin_bytes


@dataclass
class CommitRecord(LogRecord):
    def size(self, sizing: RecordSizing) -> int:
        return sizing.commit_bytes


@dataclass
class AbortRecord(LogRecord):
    def size(self, sizing: RecordSizing) -> int:
        return sizing.abort_bytes


@dataclass
class UpdateRecord(LogRecord):
    """Before/after image of one record update."""

    record_id: int = 0
    old_value: Any = None
    new_value: Any = None

    def size(self, sizing: RecordSizing) -> int:
        return sizing.update_bytes

    def compressed_size(self, sizing: RecordSizing) -> int:
        return sizing.compressed_update_bytes


@dataclass(frozen=True)
class GroupEncoding:
    """The byte layout of one sealed commit group, computed in one pass.

    ``disk_bytes`` is what actually goes to the log device: update records
    of transactions in the compressible set are charged at the Section 5.4
    new-value-only size, everything else at full size.  ``full_bytes`` is
    the uncompressed total, so ``full_bytes - disk_bytes`` is the bandwidth
    the compression fast path saved for this group.
    """

    records: int
    full_bytes: int
    disk_bytes: int
    compressed_records: int

    @property
    def bytes_saved(self) -> int:
        return self.full_bytes - self.disk_bytes


def encode_group(
    records: Sequence[LogRecord],
    sizing: RecordSizing = DEFAULT_SIZING,
    compressible_tids: Optional[Set[int]] = None,
) -> GroupEncoding:
    """Size a whole sealed group in one pass (the batch fast path).

    The record-at-a-time drain used to re-derive each record's disk size on
    every poke; this encodes the group once, with the per-record-type sizes
    hoisted out of the loop.  ``compressible_tids`` names the transactions
    whose old values may be dropped (durably committed under the
    stable-memory policy); ``None`` disables compression entirely.
    """
    update_bytes = sizing.update_bytes
    compressed_bytes = sizing.compressed_update_bytes
    full = 0
    disk = 0
    compressed = 0
    for record in records:
        size = record.size(sizing)
        full += size
        if (
            compressible_tids is not None
            and size == update_bytes
            and isinstance(record, UpdateRecord)
            and record.tid in compressible_tids
        ):
            disk += compressed_bytes
            compressed += 1
        else:
            disk += size
    return GroupEncoding(
        records=len(records),
        full_bytes=full,
        disk_bytes=disk,
        compressed_records=compressed,
    )


def pack_pages(
    records: Iterable[LogRecord],
    sizing: RecordSizing = DEFAULT_SIZING,
    compressible_tids: Optional[Set[int]] = None,
) -> Iterator[Tuple[List[LogRecord], int, bool]]:
    """Split ``records`` into page-sized runs, greedily, in one pass.

    Yields ``(page_records, page_disk_bytes, closed)`` tuples where
    ``closed`` is True when the page was ended by overflow (a further
    record exists) rather than by input exhaustion -- the drain uses it to
    decide whether a trailing partial page should wait for more traffic.
    """
    update_bytes = sizing.update_bytes
    compressed_bytes = sizing.compressed_update_bytes
    page_bytes = sizing.page_bytes

    def generate():
        page: list = []
        used = 0
        for record in records:
            size = record.size(sizing)
            if (
                compressible_tids is not None
                and size == update_bytes
                and isinstance(record, UpdateRecord)
                and record.tid in compressible_tids
            ):
                size = compressed_bytes
            if page and used + size > page_bytes:
                yield page, used, True
                page, used = [], 0
            page.append(record)
            used += size
        if page:
            yield page, used, False

    return generate()


__all__ = [
    "AbortRecord",
    "BeginRecord",
    "CommitRecord",
    "DEFAULT_SIZING",
    "GroupEncoding",
    "LogRecord",
    "RecordSizing",
    "UpdateRecord",
    "encode_group",
    "pack_pages",
]
