"""Simulation primitives: a virtual clock and a discrete-event queue.

The paper's numbers come from analytic simulation on 1984 hardware, so the
reproduction never trusts the Python wall clock.  Everything time-like runs
against :class:`~repro.sim.clock.SimulatedClock`, and the recovery
experiments (Section 5) are driven by the discrete-event
:class:`~repro.sim.events.EventQueue`.
"""

from repro.sim.clock import SimulatedClock
from repro.sim.events import Event, EventQueue

__all__ = ["Event", "EventQueue", "SimulatedClock"]
