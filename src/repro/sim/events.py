"""A minimal discrete-event queue for the Section 5 recovery experiments.

Transactions arrive, acquire locks, write log records, and commit at
simulated timestamps.  The queue orders callbacks by time (ties broken by
insertion order, so the simulation is fully deterministic) and drives the
shared :class:`~repro.sim.clock.SimulatedClock`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.clock import SimulatedClock
from repro.errors import ConfigurationError, StateError


@dataclass(frozen=True)
class Event:
    """One scheduled callback."""

    time: float
    sequence: int
    action: Callable[[], None]
    label: str = ""


class EventQueue:
    """Time-ordered event loop over a :class:`SimulatedClock`.

    Typical use::

        clock = SimulatedClock()
        queue = EventQueue(clock)
        queue.schedule(0.010, lambda: ..., label="log page write")
        queue.run_until(1.0)
    """

    def __init__(self, clock: SimulatedClock) -> None:
        self.clock = clock
        self._heap: List[Tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._processed = 0
        #: Optional :class:`repro.chaos.FaultInjector`.  When set, every
        #: event boundary is a schedulable crash point: the injector is
        #: consulted after the clock advances but before the action runs,
        #: and may raise :class:`repro.chaos.CrashSignal` to freeze the
        #: simulation exactly there.
        self.fault_injector = None

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ConfigurationError("cannot schedule an event in the past")
        return self.schedule_at(self.clock.now + delay, action, label)

    def schedule_at(
        self, timestamp: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` at an absolute virtual timestamp."""
        if timestamp < self.clock.now:
            raise ConfigurationError(
                "event at %.6f is before current time %.6f"
                % (timestamp, self.clock.now)
            )
        event = Event(
            time=timestamp, sequence=next(self._counter), action=action, label=label
        )
        heapq.heappush(self._heap, (event.time, event.sequence, event))
        return event

    def step(self) -> Optional[Event]:
        """Execute the next event; return it, or ``None`` if idle."""
        if not self._heap:
            return None
        _, _, event = heapq.heappop(self._heap)
        self.clock.advance_to(event.time)
        if self.fault_injector is not None:
            self.fault_injector.on_event(event)
        event.action()
        self._processed += 1
        return event

    def run_until(self, deadline: float) -> int:
        """Run events with ``time <= deadline``; return how many ran.

        The clock finishes exactly at ``deadline`` even if the queue drains
        early, so throughput denominators are well defined.
        """
        ran = 0
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
            ran += 1
        if self.clock.now < deadline:
            self.clock.advance_to(deadline)
        return ran

    def run_to_completion(self, max_events: int = 10_000_000) -> int:
        """Drain the queue entirely (bounded against runaway loops)."""
        ran = 0
        while self._heap:
            if ran >= max_events:
                raise StateError("event queue did not drain (runaway simulation?)")
            self.step()
            ran += 1
        return ran


__all__ = ["Event", "EventQueue"]
