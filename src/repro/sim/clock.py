"""A deterministic virtual clock.

All components that "take time" (disks, log devices, transactions) advance a
shared :class:`SimulatedClock` instead of sleeping.  This makes every
experiment exactly reproducible and immune to interpreter speed -- the same
reason the paper reports analytic rather than measured seconds.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class SimulatedClock:
    """Monotonic virtual time in seconds.

    The clock only moves when a component calls :meth:`advance` (relative)
    or :meth:`advance_to` (absolute).  Attempts to move backwards raise --
    time travel is always a bug in a simulation.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ConfigurationError("clock cannot start before time zero")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ConfigurationError("cannot advance the clock by a negative amount")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move forward to ``timestamp`` (no-op if already past it is an
        error: simulations must never lose causality)."""
        if timestamp < self._now:
            raise ConfigurationError(
                "clock is at %.6f, cannot rewind to %.6f" % (self._now, timestamp)
            )
        self._now = float(timestamp)
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Restart the clock (used between benchmark repetitions)."""
        if start < 0:
            raise ConfigurationError("clock cannot start before time zero")
        self._now = float(start)

    def __repr__(self) -> str:
        return "SimulatedClock(now=%.6f)" % self._now


__all__ = ["SimulatedClock"]
