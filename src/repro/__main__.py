"""Command-line interface: regenerate the paper's results from a shell.

Usage::

    python -m repro table1                # Section 2 breakeven table
    python -m repro figure1 [--points N]  # Section 3 join-cost curves
    python -m repro throughput            # Section 5 commit-policy ladder
    python -m repro recovery              # checkpoint-interval sweep
    python -m repro sql "SELECT ..."      # query the demo employee database
    python -m repro list                  # available commands

Each command prints the regenerated rows; the benchmark suite
(``pytest benchmarks/ --benchmark-only``) additionally asserts the paper's
qualitative claims against them.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List


def _format_table(headers, rows) -> str:
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return "%.3g" % value
        return "%.3f" % value
    return str(value)


def cmd_table1(args) -> int:
    """Section 2: AVL vs B+-tree breakeven residence fractions."""
    from repro.cost.access_model import table1

    rows = table1()
    print("Table 1 -- minimum memory-resident fraction for the AVL tree")
    print(
        _format_table(
            ["Z", "Y", "random H", "sequential H"],
            [
                (r["Z"], r["Y"], "%.1f%%" % (100 * r["random_H"]),
                 "%.1f%%" % (100 * r["sequential_H"]))
                for r in rows
            ],
        )
    )
    return 0


def cmd_figure1(args) -> int:
    """Section 3: join algorithm costs vs memory (Table 2 settings)."""
    from repro.cost.join_model import figure1_series
    from repro.cost.parameters import TABLE2_DEFAULTS

    rows = figure1_series(TABLE2_DEFAULTS, points=args.points)
    algos = ["sort-merge", "simple-hash", "grace-hash", "hybrid-hash"]
    print("Figure 1 -- execution time (s) vs |M| / (|R| * F)")
    print(
        _format_table(
            ["ratio"] + algos,
            [
                ["%.3f" % r["ratio"]] + ["%.0f" % r[a] for a in algos]
                for r in rows
            ],
        )
    )
    return 0


def cmd_throughput(args) -> int:
    """Section 5.2: commit-policy throughput ladder."""
    from repro.recovery.log_manager import CommitPolicy, LogManager
    from repro.recovery.stable_memory import StableMemory
    from repro.recovery.state import DatabaseState
    from repro.recovery.transactions import TransactionEngine
    from repro.sim import EventQueue, SimulatedClock
    from repro.workload.banking import BankingWorkload

    def run(policy, devices=1, compress=False, rate=8000):
        queue = EventQueue(SimulatedClock())
        state = DatabaseState(20_000, records_per_page=64, initial_value=100)
        stable = (
            StableMemory(64 * 1024 * 1024)
            if policy is CommitPolicy.STABLE
            else None
        )
        lm = LogManager(queue, policy=policy, devices=devices,
                        stable=stable, compress=compress)
        engine = TransactionEngine(state, queue, lm)
        bank = BankingWorkload(20_000, transfer_fraction=1.0,
                               deposit_fraction=0.0, seed=17)
        t = 0.0
        while t < args.seconds:
            script, _ = bank.next_script()
            engine.submit_at(t, script)
            t += 1.0 / rate
        queue.run_until(args.seconds)
        return engine.throughput(args.seconds)

    print("Section 5.2 -- committed transactions/second "
          "(%.1f s simulated)" % args.seconds)
    rows = [
        ("conventional, 1 device", run(CommitPolicy.CONVENTIONAL, rate=2000)),
        ("group commit, 1 device", run(CommitPolicy.GROUP)),
        ("group commit, 2 devices", run(CommitPolicy.GROUP, devices=2)),
        ("group commit, 4 devices", run(CommitPolicy.GROUP, devices=4)),
        ("stable memory", run(CommitPolicy.STABLE, rate=1400)),
        ("stable + compression", run(CommitPolicy.STABLE, compress=True,
                                     rate=2200)),
    ]
    print(_format_table(["configuration", "tps"],
                        [(n, "%.0f" % v) for n, v in rows]))
    return 0


def cmd_recovery(args) -> int:
    """Sections 5.3/5.5: recovery time vs checkpoint interval."""
    from repro.recovery.checkpoint import Checkpointer
    from repro.recovery.log_manager import CommitPolicy, LogManager
    from repro.recovery.restart import crash, recover
    from repro.recovery.state import DatabaseState, DiskSnapshot
    from repro.recovery.transactions import TransactionEngine
    from repro.sim import EventQueue, SimulatedClock
    from repro.workload.banking import BankingWorkload

    def run(interval):
        queue = EventQueue(SimulatedClock())
        state = DatabaseState(2000, records_per_page=64, initial_value=100)
        lm = LogManager(queue, policy=CommitPolicy.GROUP)
        engine = TransactionEngine(state, queue, lm)
        ck = Checkpointer(engine, DiskSnapshot(), interval=interval or 1.0)
        if interval:
            ck.start()
        bank = BankingWorkload(2000, seed=31)
        t = 0.0
        while t < args.seconds:
            script, _ = bank.next_script()
            engine.submit_at(t, script)
            t += 0.001
        queue.run_until(args.seconds)
        out = recover(crash(engine, ck), initial_value=100)
        return out.log_records_scanned, out.seconds

    print("Recovery cost after %.1f s of ~1000 tps banking:" % args.seconds)
    rows = []
    for interval in (None, 2.0, 0.5):
        scanned, seconds = run(interval)
        rows.append(
            ("never" if interval is None else "%.1f s" % interval,
             scanned, "%.3f s" % seconds)
        )
    print(_format_table(["checkpoint interval", "records scanned",
                         "recovery time"], rows))
    return 0


def cmd_sql(args) -> int:
    """Run a SQL query against the built-in demo employee database."""
    from repro import MainMemoryDatabase
    from repro.storage.relation import Relation
    from repro.storage.tuples import DataType, Field, Schema
    from repro.workload import employees_relation

    db = MainMemoryDatabase()
    db.register_table(employees_relation(200, seed=7))
    dept = Relation(
        "dept",
        Schema([Field("dept_id", DataType.INTEGER),
                Field("dname", DataType.STRING)]),
    )
    for i in range(20):
        dept.insert_unchecked((i, "dept%02d" % i))
    db.register_table(dept)
    db.create_index("emp", "name", kind="btree")
    db.analyze()

    print(db.sql_explain(args.query))
    print()
    result = db.sql(args.query)
    print("  ".join(result.schema.names))
    for i, row in enumerate(result):
        if i >= args.limit:
            print("... (%d more rows)" % (result.cardinality - args.limit))
            break
        print("  ".join(str(v) for v in row))
    print("\n%d row(s); %s" % (result.cardinality, db.cost_report("query")))
    return 0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate results from 'Implementation Techniques "
        "for Main Memory Database Systems' (SIGMOD 1984).",
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("table1", help=cmd_table1.__doc__)

    p_fig = sub.add_parser("figure1", help=cmd_figure1.__doc__)
    p_fig.add_argument("--points", type=int, default=12)

    p_tput = sub.add_parser("throughput", help=cmd_throughput.__doc__)
    p_tput.add_argument("--seconds", type=float, default=2.0)

    p_rec = sub.add_parser("recovery", help=cmd_recovery.__doc__)
    p_rec.add_argument("--seconds", type=float, default=2.0)

    p_sql = sub.add_parser("sql", help=cmd_sql.__doc__)
    p_sql.add_argument("query")
    p_sql.add_argument("--limit", type=int, default=20)

    args = parser.parse_args(argv)
    commands: Dict[str, Callable] = {
        "table1": cmd_table1,
        "figure1": cmd_figure1,
        "throughput": cmd_throughput,
        "recovery": cmd_recovery,
        "sql": cmd_sql,
    }
    if args.command is None:
        parser.print_help()
        return 2
    return commands[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
