"""Materialised-subplan reuse -- caching plan results across queries.

A main memory database pays no IO to keep an intermediate result around,
so a repeated subplan (the same filter over the same table, the same join
of the same inputs) can return its previous materialisation instead of
recomputing -- the MMDB analogue of a materialized-view / common-
subexpression cache.

Entries are keyed by a **canonical fingerprint** of the subplan: a nested
tuple of operator kinds, their parameters, and -- crucially -- the
``version`` stamp of every base relation the subplan reads.  A relation
bumps its version on every mutation, so a stale entry simply stops being
addressable the moment any of its inputs changes.  On top of that,
:meth:`PlanReuseCache.invalidate` eagerly drops entries touching a table
(the database facade calls it on insert/delete/drop), which keeps the
cache from accumulating unreachable results and guards against a dropped
table being recreated at an old version number.

The cache is shared by every session thread, so all operations are
serialised under one internal mutex (registered with the lock-order
recorder; the governor's pressure valve calls :meth:`shrink_to` while
holding its own lock, which makes ``Governor._lock -> PlanReuseCache._mu``
a deliberate, acyclic edge in the lock-order graph).  Alongside the
shared totals each thread accumulates a private tally of *its own*
hits/misses/invalidations/evictions, exposed by :meth:`thread_stats`:
sessions diff it around a statement to build their per-session reuse
views without serialising the statements themselves.

Cache hits return the previously materialised
:class:`~repro.storage.relation.Relation` *object*; treat it as
read-only, exactly like the relation a base-table scan returns.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, Iterable, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.lint.runtime import tracked_lock
from repro.storage.relation import Relation

Fingerprint = Hashable

#: The statistic keys tracked both globally and per-thread.
_STAT_KEYS = ("hits", "misses", "invalidations", "evictions")


class PlanReuseCache:
    """Fingerprint-addressed store of materialised subplan results."""

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ConfigurationError("cache needs room for at least one entry")
        self.max_entries = max_entries
        self._mu = tracked_lock("repro.planner.PlanReuseCache._mu")
        self._entries: Dict[Fingerprint, Relation] = {}
        self._tables: Dict[Fingerprint, Tuple[str, ...]] = {}
        self._by_table: Dict[str, Set[Fingerprint]] = {}
        #: Lookup statistics, exposed through ``stats()``.
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self._local = threading.local()

    def __len__(self) -> int:
        with self._mu:
            return len(self._entries)

    def _thread_tally(self) -> Dict[str, int]:
        tally = getattr(self._local, "tally", None)
        if tally is None:
            tally = {key: 0 for key in _STAT_KEYS}
            self._local.tally = tally
        return tally

    # -- lookup ------------------------------------------------------------------

    def get(self, fingerprint: Fingerprint) -> Optional[Relation]:
        """The cached result, or ``None`` (counts a hit or a miss)."""
        with self._mu:
            found = self._entries.get(fingerprint)
            if found is None:
                self.misses += 1
                self._thread_tally()["misses"] += 1
            else:
                self.hits += 1
                self._thread_tally()["hits"] += 1
                # LRU: a hit refreshes the entry's position, so the
                # governor's shrink_to evicts cold subplans first.
                self._entries[fingerprint] = self._entries.pop(fingerprint)
            return found

    def put(
        self,
        fingerprint: Fingerprint,
        result: Relation,
        tables: Iterable[str],
    ) -> None:
        """Store ``result`` for ``fingerprint``, tagged with its base tables."""
        with self._mu:
            if fingerprint in self._entries:
                self._entries.pop(fingerprint)
                self._entries[fingerprint] = result
                return
            while len(self._entries) >= self.max_entries:
                self._evict_oldest_locked()
            names = tuple(sorted(set(tables)))
            self._entries[fingerprint] = result
            self._tables[fingerprint] = names
            for name in names:
                self._by_table.setdefault(name, set()).add(fingerprint)

    def _evict_oldest_locked(self) -> None:
        # Dicts iterate in insertion order and ``get`` moves hits to the
        # end, so the first entry is the least recently used.
        oldest = next(iter(self._entries))
        self._drop_locked(oldest)
        self.evictions += 1
        self._thread_tally()["evictions"] += 1

    def shrink_to(self, target_entries: int) -> int:
        """Evict LRU entries until at most ``target_entries`` remain.

        The governor registers this as the cache's pressure valve: under
        memory pressure cached materialisations are the cheapest thing to
        give back (they can always be recomputed).  Returns the number of
        entries evicted.
        """
        target = max(0, int(target_entries))
        evicted = 0
        with self._mu:
            while len(self._entries) > target:
                self._evict_oldest_locked()
                evicted += 1
        return evicted

    def _drop_locked(self, fingerprint: Fingerprint) -> None:
        self._entries.pop(fingerprint, None)
        for name in self._tables.pop(fingerprint, ()):
            members = self._by_table.get(name)
            if members is not None:
                members.discard(fingerprint)
                if not members:
                    del self._by_table[name]

    # -- invalidation ------------------------------------------------------------

    def invalidate(self, table: str) -> int:
        """Drop every entry whose subplan reads ``table``; return count."""
        with self._mu:
            victims = list(self._by_table.get(table, ()))
            for fingerprint in victims:
                self._drop_locked(fingerprint)
            self.invalidations += len(victims)
            self._thread_tally()["invalidations"] += len(victims)
            return len(victims)

    def clear(self) -> None:
        with self._mu:
            self._entries.clear()
            self._tables.clear()
            self._by_table.clear()

    # -- reporting ---------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        with self._mu:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
            }

    def thread_stats(self) -> Dict[str, int]:
        """The calling thread's private monotonic tallies.

        Diffing two calls around a statement on the executing thread
        yields exactly that statement's contribution, even while other
        threads hit the shared cache concurrently.
        """
        return dict(self._thread_tally())

    def __repr__(self) -> str:
        with self._mu:
            return "PlanReuseCache(%d entries, %d hits, %d misses)" % (
                len(self._entries),
                self.hits,
                self.misses,
            )


__all__ = ["PlanReuseCache"]
