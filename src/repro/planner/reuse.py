"""Materialised-subplan reuse -- caching plan results across queries.

A main memory database pays no IO to keep an intermediate result around,
so a repeated subplan (the same filter over the same table, the same join
of the same inputs) can return its previous materialisation instead of
recomputing -- the MMDB analogue of a materialized-view / common-
subexpression cache.

Entries are keyed by a **canonical fingerprint** of the subplan: a nested
tuple of operator kinds, their parameters, and -- crucially -- the
``version`` stamp of every base relation the subplan reads.  A relation
bumps its version on every mutation, so a stale entry simply stops being
addressable the moment any of its inputs changes.  On top of that,
:meth:`PlanReuseCache.invalidate` eagerly drops entries touching a table
(the database facade calls it on insert/delete/drop), which keeps the
cache from accumulating unreachable results and guards against a dropped
table being recreated at an old version number.

Cache hits return the previously materialised
:class:`~repro.storage.relation.Relation` *object*; treat it as
read-only, exactly like the relation a base-table scan returns.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.storage.relation import Relation

Fingerprint = Hashable


class PlanReuseCache:
    """Fingerprint-addressed store of materialised subplan results."""

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ConfigurationError("cache needs room for at least one entry")
        self.max_entries = max_entries
        self._entries: Dict[Fingerprint, Relation] = {}
        self._tables: Dict[Fingerprint, Tuple[str, ...]] = {}
        self._by_table: Dict[str, Set[Fingerprint]] = {}
        #: Lookup statistics, exposed through ``stats()``.
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookup ------------------------------------------------------------------

    def get(self, fingerprint: Fingerprint) -> Optional[Relation]:
        """The cached result, or ``None`` (counts a hit or a miss)."""
        found = self._entries.get(fingerprint)
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
            # LRU: a hit refreshes the entry's position, so the governor's
            # shrink_to evicts cold subplans first.
            self._entries[fingerprint] = self._entries.pop(fingerprint)
        return found

    def put(
        self,
        fingerprint: Fingerprint,
        result: Relation,
        tables: Iterable[str],
    ) -> None:
        """Store ``result`` for ``fingerprint``, tagged with its base tables."""
        if fingerprint in self._entries:
            self._entries.pop(fingerprint)
            self._entries[fingerprint] = result
            return
        while len(self._entries) >= self.max_entries:
            self._evict_oldest()
        names = tuple(sorted(set(tables)))
        self._entries[fingerprint] = result
        self._tables[fingerprint] = names
        for name in names:
            self._by_table.setdefault(name, set()).add(fingerprint)

    def _evict_oldest(self) -> None:
        # Dicts iterate in insertion order and ``get`` moves hits to the
        # end, so the first entry is the least recently used.
        oldest = next(iter(self._entries))
        self._drop(oldest)
        self.evictions += 1

    def shrink_to(self, target_entries: int) -> int:
        """Evict LRU entries until at most ``target_entries`` remain.

        The governor registers this as the cache's pressure valve: under
        memory pressure cached materialisations are the cheapest thing to
        give back (they can always be recomputed).  Returns the number of
        entries evicted.
        """
        target = max(0, int(target_entries))
        evicted = 0
        while len(self._entries) > target:
            self._evict_oldest()
            evicted += 1
        return evicted

    def _drop(self, fingerprint: Fingerprint) -> None:
        self._entries.pop(fingerprint, None)
        for name in self._tables.pop(fingerprint, ()):
            members = self._by_table.get(name)
            if members is not None:
                members.discard(fingerprint)
                if not members:
                    del self._by_table[name]

    # -- invalidation ------------------------------------------------------------

    def invalidate(self, table: str) -> int:
        """Drop every entry whose subplan reads ``table``; return count."""
        victims = list(self._by_table.get(table, ()))
        for fingerprint in victims:
            self._drop(fingerprint)
        self.invalidations += len(victims)
        return len(victims)

    def clear(self) -> None:
        self._entries.clear()
        self._tables.clear()
        self._by_table.clear()

    # -- reporting ---------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return "PlanReuseCache(%d entries, %d hits, %d misses)" % (
            len(self._entries),
            self.hits,
            self.misses,
        )


__all__ = ["PlanReuseCache"]
