"""Logical query description consumed by the planner.

A :class:`Query` is a conjunctive select-project-join block with optional
grouping -- the fragment Section 4 discusses: base tables, per-table
selection predicates, equijoin clauses, and a final projection or
aggregation.  It carries no physical choices; those belong to the plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.operators.aggregate import AggregateSpec
from repro.operators.selection import Predicate
from repro.errors import PlannerError


@dataclass(frozen=True)
class JoinClause:
    """An equijoin ``left.column = right.column`` between two tables."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def involves(self, table: str) -> bool:
        return table in (self.left_table, self.right_table)

    def other(self, table: str) -> str:
        if table == self.left_table:
            return self.right_table
        if table == self.right_table:
            return self.left_table
        raise PlannerError("%r is not part of this join clause" % table)

    def column_of(self, table: str) -> str:
        if table == self.left_table:
            return self.left_column
        if table == self.right_table:
            return self.right_column
        raise PlannerError("%r is not part of this join clause" % table)

    def __str__(self) -> str:
        return "%s.%s = %s.%s" % (
            self.left_table,
            self.left_column,
            self.right_table,
            self.right_column,
        )


@dataclass
class Query:
    """A select-project-join(-aggregate) query over named catalog tables."""

    tables: List[str]
    predicates: List[Tuple[str, Predicate]] = field(default_factory=list)
    joins: List[JoinClause] = field(default_factory=list)
    projection: Optional[List[str]] = None
    distinct: bool = False
    group_by: List[str] = field(default_factory=list)
    aggregates: List[AggregateSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.tables:
            raise PlannerError("a query references at least one table")
        if len(set(self.tables)) != len(self.tables):
            raise PlannerError("self-joins need distinct aliases; duplicate "
                             "table in %r" % (self.tables,))
        names = set(self.tables)
        for table, _ in self.predicates:
            if table not in names:
                raise PlannerError("predicate on unknown table %r" % table)
        for clause in self.joins:
            if clause.left_table not in names or clause.right_table not in names:
                raise PlannerError("join clause %s references unknown table" % clause)
        if self.aggregates and self.projection is not None:
            raise PlannerError("use group_by/aggregates or projection, not both")

    def predicates_on(self, table: str) -> List[Predicate]:
        return [p for t, p in self.predicates if t == table]

    def joins_between(
        self, placed: Sequence[str], candidate: str
    ) -> List[JoinClause]:
        """Join clauses connecting ``candidate`` to the tables in ``placed``."""
        placed_set = set(placed)
        return [
            c
            for c in self.joins
            if c.involves(candidate) and c.other(candidate) in placed_set
        ]


__all__ = ["JoinClause", "Query"]
