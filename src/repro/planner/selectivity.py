"""Selinger-style selectivity estimation from catalog statistics.

The estimates follow the classic access-path-selection rules [SELI79] the
paper builds on: ``1/distinct`` for equality against a constant, the
covered fraction of the value range for inequalities, independence for
conjunctions, inclusion-exclusion for disjunctions, and fixed fallbacks
when statistics are missing.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.operators.selection import And, Comparison, Not, Or, Predicate, Prefix
from repro.storage.catalog import ColumnStats, RelationStats

#: Fallbacks from the Selinger paper for un-analyzable predicates.
DEFAULT_EQUALITY_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0


def estimate_selectivity(predicate: Predicate, stats: RelationStats) -> float:
    """Fraction of tuples expected to satisfy ``predicate``."""
    if isinstance(predicate, Comparison):
        return _comparison_selectivity(predicate, stats)
    if isinstance(predicate, Prefix):
        return _prefix_selectivity(predicate, stats)
    if isinstance(predicate, And):
        return estimate_selectivity(predicate.left, stats) * estimate_selectivity(
            predicate.right, stats
        )
    if isinstance(predicate, Or):
        left = estimate_selectivity(predicate.left, stats)
        right = estimate_selectivity(predicate.right, stats)
        return min(1.0, left + right - left * right)
    if isinstance(predicate, Not):
        return max(0.0, 1.0 - estimate_selectivity(predicate.inner, stats))
    return 0.5


def _comparison_selectivity(pred: Comparison, stats: RelationStats) -> float:
    col = stats.column(pred.column)
    if pred.op == "=":
        if col.distinct > 0:
            return 1.0 / col.distinct
        return DEFAULT_EQUALITY_SELECTIVITY
    if pred.op == "!=":
        return 1.0 - _comparison_selectivity(
            Comparison(pred.column, "=", pred.value), stats
        )
    if col.histogram is not None and isinstance(pred.value, (int, float)):
        # Equi-depth histogram: robust to skew.
        below = col.histogram.fraction_below(pred.value)
        if pred.op in ("<", "<="):
            return below
        return max(0.0, 1.0 - below)
    if (
        col.minimum is None
        or col.maximum is None
        or not isinstance(pred.value, (int, float))
    ):
        return DEFAULT_RANGE_SELECTIVITY
    lo, hi = col.minimum, col.maximum
    if hi == lo:
        # Single-valued column: the comparison either keeps all or nothing.
        import operator as _op

        keeps = {"<": _op.lt, "<=": _op.le, ">": _op.gt, ">=": _op.ge}[pred.op]
        return 1.0 if keeps(lo, pred.value) else 0.0
    span = hi - lo
    if pred.op in ("<", "<="):
        return max(0.0, min(1.0, (pred.value - lo) / span))
    return max(0.0, min(1.0, (hi - pred.value) / span))


def _prefix_selectivity(pred: Prefix, stats: RelationStats) -> float:
    """Prefix matches shrink geometrically with prefix length: assume each
    leading character splits the value space ~20 ways (letters are not
    uniform; 20 is the Selinger-flavoured guess used absent histograms)."""
    return max(1e-4, min(1.0, 20.0 ** -len(pred.prefix) * 4.0))


def _measured_distinct(d: Union[int, ColumnStats]) -> int:
    """Distinct count behind a join-selectivity argument.

    A :class:`ColumnStats` carries the measured count from ``analyze``;
    when a histogram was built the measurement is exact over the analyzed
    sample and is used as-is.  Plain ints pass through unchanged (the
    historical calling convention).
    """
    if isinstance(d, ColumnStats):
        return d.distinct
    return int(d)


def join_selectivity(
    left_distinct: Union[int, ColumnStats],
    right_distinct: Union[int, ColumnStats],
) -> float:
    """Equijoin selectivity ``1 / max(d_left, d_right)`` [SELI79].

    Either argument may be a measured :class:`ColumnStats` (preferred --
    the planner passes the analyzed column when statistics exist) or a
    bare distinct count; missing statistics (``distinct == 0``) fall back
    to the historical denominator floor of 1.
    """
    denom = max(
        _measured_distinct(left_distinct), _measured_distinct(right_distinct), 1
    )
    return 1.0 / denom


__all__ = [
    "DEFAULT_EQUALITY_SELECTIVITY",
    "DEFAULT_RANGE_SELECTIVITY",
    "estimate_selectivity",
    "join_selectivity",
]
