"""The optimizer: Section 4's "push the most selective operations down".

Planning proceeds exactly as the paper argues a large-memory system should:

1. **Access paths.**  Per-table predicates are pushed below the joins.  An
   indexed comparison becomes an index scan when the ``W*CPU + IO``
   estimate beats the full scan (with everything memory resident the index
   usually wins for selective predicates, matching Section 2).
2. **Operator ordering.**  Joins are ordered greedily by estimated output
   cardinality -- the most selective join is performed first.  Because the
   hash algorithms are insensitive to input order, no "interesting order"
   bookkeeping [SELI79] is needed; this is the paper's simplification.
3. **Algorithm choice.**  Each join picks the cheapest of the five
   executable algorithms under the Section 3 cost model.  With a large
   memory grant this is hybrid hash essentially always -- benchmark E11
   asserts it -- but the comparison is genuinely cost-based, so shrinking
   the grant exposes the crossovers of Figure 1 inside the planner, too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cost.parameters import CostParameters
from repro.errors import PlannerError, UnplannableQueryError
from repro.join import ALL_JOINS
from repro.operators.selection import And, Comparison, Predicate, Prefix
from repro.planner.plan import (
    AggregateNode,
    FilterNode,
    IndexScanNode,
    JoinNode,
    PlanContext,
    PlanNode,
    ProjectNode,
    ScanNode,
    estimate_join_cost,
)
from repro.planner.query import JoinClause, Query
from repro.planner.selectivity import estimate_selectivity, join_selectivity
from repro.storage.catalog import Catalog, ColumnStats


@dataclass
class PlannerConfig:
    """Optimizer knobs (all default to the paper's large-memory setting)."""

    memory_pages: int = 1000
    params: CostParameters = field(default_factory=CostParameters)
    w: float = 1.0
    #: Restrict the join algorithms considered (None = all five).
    join_algorithms: Optional[List[str]] = None
    #: Force hash (or sort) engines for aggregation/projection.
    aggregate_method: str = "hash"

    def candidate_joins(self) -> List[str]:
        if self.join_algorithms is None:
            # Preference order breaks cost ties: when R's hash table fits
            # in memory, hybrid and simple hash cost the same and the
            # paper's recommendation (hybrid) should win.
            return [
                "hybrid-hash",
                "simple-hash",
                "grace-hash",
                "sort-merge",
                "nested-loops",
            ]
        unknown = set(self.join_algorithms) - set(ALL_JOINS)
        if unknown:
            raise PlannerError("unknown join algorithms: %r" % sorted(unknown))
        return list(self.join_algorithms)


class _SubPlan:
    """A planned subtree plus the bookkeeping the greedy search needs."""

    def __init__(
        self, node: PlanNode, tables: Set[str], distinct: Dict[str, ColumnStats]
    ) -> None:
        self.node = node
        self.tables = tables
        #: column name -> the column's analyzed statistics.
        self.distinct = distinct

    def distinct_of(self, column: str) -> int:
        col = self.distinct.get(column)
        d = col.distinct if col is not None else 0
        if col is not None and col.histogram is not None and d > 0:
            # Measured (histogram-backed) distinct counts are trusted
            # as-is; the min() damping below exists for the guessy
            # no-histogram estimates, and applying it here would undo the
            # point of analyzing with histograms on skewed columns.
            return max(1, d)
        return max(1, min(d if d else 10, int(self.node.estimated_rows) or 1))


class Planner:
    """Produces executable plans for :class:`~repro.planner.query.Query`."""

    def __init__(self, catalog: Catalog, config: Optional[PlannerConfig] = None):
        self.catalog = catalog
        self.config = config or PlannerConfig()

    def context(self) -> PlanContext:
        """A fresh execution context matching the planner's configuration."""
        return PlanContext(
            catalog=self.catalog,
            memory_pages=self.config.memory_pages,
            params=self.config.params,
            w=self.config.w,
        )

    # -- public API ---------------------------------------------------------------

    def plan(self, query: Query) -> PlanNode:
        """Optimize ``query`` into an executable plan tree."""
        self._check_column_uniqueness(query)
        subplans = {t: self._access_path(query, t) for t in query.tables}

        joined = self._order_joins(query, subplans)
        node = joined.node

        if query.group_by or query.aggregates:
            node = AggregateNode(
                node,
                query.group_by,
                query.aggregates,
                method=self.config.aggregate_method,
                group_ratio=self._group_ratio(joined, query.group_by),
            )
        elif query.projection is not None:
            node = ProjectNode(
                node,
                query.projection,
                distinct=query.distinct,
                method=self.config.aggregate_method,
                distinct_ratio=self._group_ratio(joined, query.projection),
            )
        return node

    def explain(self, query: Query) -> str:
        """The plan tree with per-node cost estimates, as text."""
        return self.plan(query).explain(self.context())

    # -- step 1: access paths ---------------------------------------------------------

    def _access_path(self, query: Query, table: str) -> _SubPlan:
        stats = self.catalog.stats(table)
        predicates = query.predicates_on(table)
        scan: PlanNode = ScanNode(table, self.catalog)

        best: PlanNode = self._apply_filters(scan, predicates, stats)
        ctx = self.context()

        # Try serving one indexed comparison with an index scan, filtering
        # the rest on top; keep whichever estimate is cheaper.
        for i, pred in enumerate(predicates):
            comparison = self._indexable(pred, table)
            if comparison is None:
                continue
            sel = estimate_selectivity(comparison, stats)
            index_scan: PlanNode = IndexScanNode(
                table, comparison, self.catalog, sel
            )
            rest = predicates[:i] + predicates[i + 1 :]
            candidate = self._apply_filters(index_scan, rest, stats)
            if candidate.total_cost(ctx) < best.total_cost(ctx):
                best = candidate

        distinct = {
            name: stats.column(name)
            for name in self.catalog.relation(table).schema.names
        }
        return _SubPlan(best, {table}, distinct)

    def _indexable(self, pred: Predicate, table: str):
        if isinstance(pred, Prefix):
            index = self.catalog.index(table, pred.column)
            if index is not None and index.supports_range_scan:
                return pred
            return None
        if not isinstance(pred, Comparison) or pred.op == "!=":
            return None
        index = self.catalog.index(table, pred.column)
        if index is None:
            return None
        if not pred.is_equality and not index.supports_range_scan:
            return None
        return pred

    def _apply_filters(
        self, node: PlanNode, predicates: List[Predicate], stats
    ) -> PlanNode:
        for pred in predicates:
            node = FilterNode(node, pred, estimate_selectivity(pred, stats))
        return node

    # -- step 2+3: join ordering and algorithm choice -----------------------------------

    def _order_joins(
        self, query: Query, subplans: Dict[str, _SubPlan]
    ) -> _SubPlan:
        remaining = dict(subplans)
        if len(remaining) == 1:
            return next(iter(remaining.values()))

        # Seed with the most selective (smallest) access path -- "pushed
        # towards the bottom of the query tree".  Ties break on the table
        # name so the chosen plan is invariant to the order tables were
        # listed in the query (dict order would otherwise leak through).
        seed = min(
            remaining, key=lambda t: (remaining[t].node.estimated_rows, t)
        )
        current = remaining.pop(seed)

        while remaining:
            best_choice: Optional[Tuple[float, str, JoinClause]] = None
            for table, sub in sorted(remaining.items()):
                clauses = query.joins_between(sorted(current.tables), table)
                if not clauses:
                    continue
                clause = clauses[0]
                rows = self._join_rows(current, sub, clause)
                if best_choice is None or (rows, table) < best_choice[:2]:
                    best_choice = (rows, table, clause)
            if best_choice is None:
                raise UnplannableQueryError(
                    "query graph is disconnected: %r cannot join %r without "
                    "a cross product" % (sorted(remaining), sorted(current.tables))
                )
            rows, table, clause = best_choice
            current = self._make_join(current, remaining.pop(table), clause, rows)
        return current

    def _join_rows(
        self, left: _SubPlan, right: _SubPlan, clause: JoinClause
    ) -> float:
        if clause.left_table in left.tables:
            left_col, right_col = clause.left_column, clause.right_column
        else:
            left_col, right_col = clause.right_column, clause.left_column
        sel = join_selectivity(
            left.distinct_of(left_col), right.distinct_of(right_col)
        )
        return left.node.estimated_rows * right.node.estimated_rows * sel

    def _make_join(
        self, left: _SubPlan, right: _SubPlan, clause: JoinClause, rows: float
    ) -> _SubPlan:
        if clause.left_table in left.tables:
            left_col, right_col = clause.left_column, clause.right_column
        else:
            left_col, right_col = clause.right_column, clause.left_column

        ctx = self.context()
        best_alg, best_cost = None, math.inf
        for algorithm in self.config.candidate_joins():
            cost = estimate_join_cost(
                algorithm,
                left.node.estimated_rows,
                right.node.estimated_rows,
                left.node.estimated_pages,
                right.node.estimated_pages,
                ctx,
            )
            # Relative tolerance so float noise cannot override the
            # preference order on genuine ties (hybrid == simple when R's
            # table fits: the same arithmetic in a different order).
            if cost < best_cost * (1.0 - 1e-9):
                best_alg, best_cost = algorithm, cost
        if best_alg is None:
            raise UnplannableQueryError(
                "no join algorithm is feasible at %d pages"
                % self.config.memory_pages
            )

        node = JoinNode(left.node, right.node, left_col, right_col, best_alg, rows)
        distinct = dict(right.distinct)
        distinct.update(left.distinct)
        return _SubPlan(node, left.tables | right.tables, distinct)

    # -- helpers ------------------------------------------------------------------------

    def _group_ratio(self, sub: _SubPlan, columns: List[str]) -> float:
        """Estimated groups / input rows for grouping-style operators."""
        rows = max(1.0, sub.node.estimated_rows)
        if not columns:
            return 1.0 / rows
        groups = 1.0
        for col in columns:
            groups *= sub.distinct_of(col)
        return min(1.0, groups / rows)

    def _check_column_uniqueness(self, query: Query) -> None:
        seen: Dict[str, str] = {}
        for table in query.tables:
            for name in self.catalog.relation(table).schema.names:
                if name in seen and len(query.tables) > 1:
                    raise PlannerError(
                        "column %r appears in both %r and %r; the planner "
                        "requires distinct column names across joined tables"
                        % (name, seen[name], table)
                    )
                seen[name] = table


__all__ = ["Planner", "PlannerConfig"]
