"""Executable physical plan nodes with ``W * CPU + IO`` cost estimates.

Every node both *estimates* (cardinality, pages, weighted cost -- what the
optimizer compares) and *executes* (producing a real
:class:`~repro.storage.relation.Relation`, charging the shared counters --
what the benchmarks measure).  The weighting function is Selinger's
``W * |CPU| + |I/O|`` with CPU expressed in seconds through the Table 2
constants and IO in operations times their cost.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.cost.counters import OperationCounters
from repro.cost.join_model import ALGORITHMS as JOIN_COST_MODELS
from repro.errors import PlannerError, StateError
from repro.cost.parameters import CostParameters
from repro.cost.join_model import JoinWorkload
from repro.join import ALL_JOINS, JoinSpec
from repro.join.base import join_schema
from repro.operators.aggregate import AggregateSpec, hash_aggregate, sort_aggregate
from repro.operators.projection import hash_project, sort_project
from repro.operators.selection import (
    Comparison,
    Predicate,
    Prefix,
    select,
    select_via_index,
)
from repro.planner.reuse import PlanReuseCache
from repro.storage.catalog import Catalog
from repro.storage.disk import SimulatedDisk
from repro.storage.relation import Relation
from repro.storage.tuples import Schema


@dataclass
class PlanContext:
    """Everything a plan needs to run: catalog, memory, instrumentation."""

    catalog: Catalog
    memory_pages: int = 1000
    params: CostParameters = field(default_factory=CostParameters)
    w: float = 1.0
    counters: OperationCounters = field(default_factory=OperationCounters)
    disk: Optional[SimulatedDisk] = None
    #: Page-at-a-time operator execution (see docs/PERF.md); ``False``
    #: selects the historical tuple-at-a-time loops.  Results and counted
    #: costs are identical either way.
    batch: bool = True
    #: Columnar batch kernels over the packed page buffers; ``False``
    #: keeps the PR-2 row-view batch loops.  Results and counted costs
    #: are identical either way (tests/test_batch_equivalence.py).
    columnar: bool = True
    #: Worker processes for the partitioned hash joins (1 = serial).
    join_workers: int = 1
    #: Materialised-subplan cache; ``None`` disables reuse.
    reuse_cache: Optional[PlanReuseCache] = None
    #: The governor's per-query :class:`repro.governor.QueryGuard`
    #: (cancellation token, revocable memory grant, worker-fault policy).
    #: ``None`` executes ungoverned, exactly as before.
    guard: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.disk is None:
            self.disk = SimulatedDisk(self.counters)

    @property
    def token(self) -> Optional[Any]:
        """The cancellation token operators should check, if any."""
        return self.guard.token if self.guard is not None else None


class PlanNode(abc.ABC):
    """One operator of a physical plan tree."""

    #: Whether the node's materialised output may be served from the
    #: reuse cache.  Base-table scans return the live relation and are
    #: never cached.
    cacheable = True

    def __init__(self, schema: Schema, estimated_rows: float) -> None:
        self.schema = schema
        self.estimated_rows = max(0.0, estimated_rows)

    @property
    def estimated_pages(self) -> float:
        """Output size in 4 KB pages under the node's schema."""
        per_page = max(1, 4096 // self.schema.tuple_bytes)
        return self.estimated_rows / per_page

    def execute(self, ctx: PlanContext) -> Relation:
        """Run the subtree, serving it from the reuse cache when possible.

        The cache key is the node's canonical :meth:`fingerprint` (which
        embeds the version of every base relation read, so mutation makes
        old entries unaddressable) plus the memory grant, which changes
        spill behaviour and therefore the charged costs.
        """
        if ctx.guard is not None:
            # One cancellation check per plan node, including cache hits:
            # a cancelled query must not keep returning cached subtrees.
            ctx.guard.checkpoint()
        cache = ctx.reuse_cache
        if cache is None or not self.cacheable:
            return self._run(ctx)
        key = (self.fingerprint(ctx), ctx.memory_pages)
        found = cache.get(key)
        if found is not None:
            return found
        result = self._run(ctx)
        cache.put(key, result, self.tables())
        return result

    @abc.abstractmethod
    def _run(self, ctx: PlanContext) -> Relation:
        """Operator body: materialise this subtree's output."""

    @abc.abstractmethod
    def fingerprint(self, ctx: PlanContext) -> Tuple[Any, ...]:
        """Canonical identity of this subplan over current table versions."""

    def tables(self) -> List[str]:
        """Names of every base table this subtree reads."""
        seen: List[str] = []
        for child in self.children():
            for name in child.tables():
                if name not in seen:
                    seen.append(name)
        return seen

    @abc.abstractmethod
    def estimated_cost(self, ctx: PlanContext) -> float:
        """``W * CPU + IO`` seconds for this node alone."""

    def total_cost(self, ctx: PlanContext) -> float:
        """Node cost plus its inputs' (overridden by inner nodes)."""
        return self.estimated_cost(ctx)

    def children(self) -> List["PlanNode"]:
        return []

    # -- explain -------------------------------------------------------------

    def label(self) -> str:
        return type(self).__name__

    def explain(self, ctx: Optional[PlanContext] = None, indent: int = 0) -> str:
        pad = "  " * indent
        cost = ""
        if ctx is not None:
            cost = "  cost=%.4fs" % self.total_cost(ctx)
        lines = ["%s%s  rows~%d%s" % (pad, self.label(), self.estimated_rows, cost)]
        for child in self.children():
            lines.append(child.explain(ctx, indent + 1))
        return "\n".join(lines)


class ScanNode(PlanNode):
    """Full scan of a memory-resident base table."""

    # Returns the live base relation; caching it would alias mutations.
    cacheable = False

    def __init__(self, table: str, catalog: Catalog) -> None:
        stats = catalog.stats(table)
        super().__init__(catalog.relation(table).schema, stats.cardinality)
        self.table = table

    def label(self) -> str:
        return "Scan(%s)" % self.table

    def fingerprint(self, ctx: PlanContext) -> Tuple[Any, ...]:
        return (
            "scan",
            self.table,
            ctx.catalog.relation(self.table).version,
            ctx.catalog.access_epoch(self.table),
        )

    def tables(self) -> List[str]:
        return [self.table]

    def _run(self, ctx: PlanContext) -> Relation:
        return ctx.catalog.relation(self.table)

    def estimated_cost(self, ctx: PlanContext) -> float:
        # Memory resident: one comparison-equivalent touch per tuple, no IO.
        return ctx.w * self.estimated_rows * ctx.params.comp


class IndexScanNode(PlanNode):
    """Selection served by an index (Section 2's access path)."""

    def __init__(
        self,
        table: str,
        predicate: Comparison,
        catalog: Catalog,
        selectivity: float,
    ) -> None:
        stats = catalog.stats(table)
        super().__init__(
            catalog.relation(table).schema, stats.cardinality * selectivity
        )
        self.table = table
        self.predicate = predicate
        self.input_rows = stats.cardinality

    def label(self) -> str:
        if isinstance(self.predicate, Prefix):
            return "IndexScan(%s.%s = %r*)" % (
                self.table, self.predicate.column, self.predicate.prefix,
            )
        return "IndexScan(%s.%s %s %r)" % (
            self.table,
            self.predicate.column,
            self.predicate.op,
            self.predicate.value,
        )

    def fingerprint(self, ctx: PlanContext) -> Tuple[Any, ...]:
        return (
            "idxscan",
            self.table,
            ctx.catalog.relation(self.table).version,
            ctx.catalog.access_epoch(self.table),
            self.predicate.fingerprint(),
        )

    def tables(self) -> List[str]:
        return [self.table]

    def _run(self, ctx: PlanContext) -> Relation:
        index = ctx.catalog.index(self.table, self.predicate.column)
        if index is None:
            raise StateError(
                "plan expected an index on %s.%s"
                % (self.table, self.predicate.column)
            )
        return select_via_index(
            ctx.catalog.relation(self.table),
            index,
            self.predicate,
            ctx.counters,
            token=ctx.token,
            columnar=ctx.batch and ctx.columnar,
        )

    def estimated_cost(self, ctx: PlanContext) -> float:
        # log2(n) descent, then per qualifying tuple a comparison plus a
        # TID dereference (a tuple move).  The move term is what makes a
        # full scan win for unselective predicates.
        descent = math.log2(self.input_rows + 2) * ctx.params.comp
        per_row = ctx.params.comp + ctx.params.move
        return ctx.w * (descent + self.estimated_rows * per_row)


class FilterNode(PlanNode):
    """Predicate applied to a child's output."""

    def __init__(
        self, child: PlanNode, predicate: Predicate, selectivity: float
    ) -> None:
        super().__init__(child.schema, child.estimated_rows * selectivity)
        self.child = child
        self.predicate = predicate

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return "Filter(%s)" % (self.predicate,)

    def fingerprint(self, ctx: PlanContext) -> Tuple[Any, ...]:
        return (
            "filter",
            self.child.fingerprint(ctx),
            self.predicate.fingerprint(),
        )

    def _run(self, ctx: PlanContext) -> Relation:
        return select(
            self.child.execute(ctx),
            self.predicate,
            ctx.counters,
            batch=ctx.batch,
            token=ctx.token,
            columnar=ctx.columnar,
        )

    def estimated_cost(self, ctx: PlanContext) -> float:
        per_tuple = self.predicate.comparisons()
        return ctx.w * self.child.estimated_rows * per_tuple * ctx.params.comp

    def total_cost(self, ctx: PlanContext) -> float:
        return self.estimated_cost(ctx) + self.child.total_cost(ctx)


class JoinNode(PlanNode):
    """Equijoin of two subplans with an explicit algorithm choice."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_column: str,
        right_column: str,
        algorithm: str,
        estimated_rows: float,
    ) -> None:
        if algorithm not in ALL_JOINS:
            raise PlannerError("unknown join algorithm %r" % algorithm)
        schema = _join_output_schema(left.schema, right.schema)
        super().__init__(schema, estimated_rows)
        self.left = left
        self.right = right
        self.left_column = left_column
        self.right_column = right_column
        self.algorithm = algorithm

    def children(self) -> List[PlanNode]:
        return [self.left, self.right]

    def label(self) -> str:
        return "Join[%s](%s = %s)" % (
            self.algorithm,
            self.left_column,
            self.right_column,
        )

    def fingerprint(self, ctx: PlanContext) -> Tuple[Any, ...]:
        return (
            "join",
            self.algorithm,
            self.left.fingerprint(ctx),
            self.right.fingerprint(ctx),
            self.left_column,
            self.right_column,
            # Statistics epochs of every base table under this join: the
            # order and algorithm were chosen from those statistics, so a
            # re-analyze must make the cached subtree unaddressable (the
            # access-path epoch plays the same role for scans).
            tuple(ctx.catalog.stats_epoch(t) for t in self.tables()),
        )

    def _run(self, ctx: PlanContext) -> Relation:
        left_rel = self.left.execute(ctx)
        right_rel = self.right.execute(ctx)
        algo = ALL_JOINS[self.algorithm](
            counters=ctx.counters,
            disk=ctx.disk,
            batch=ctx.batch,
            columnar=ctx.columnar,
            workers=ctx.join_workers,
        )
        if ctx.guard is not None:
            algo.set_guard(ctx.guard)
        spec = JoinSpec(
            r=left_rel,
            s=right_rel,
            r_field=self.left_column,
            s_field=self.right_column,
            memory_pages=ctx.memory_pages,
            params=ctx.params,
        )
        return algo.join(spec).relation

    def estimated_cost(self, ctx: PlanContext) -> float:
        return estimate_join_cost(
            self.algorithm,
            self.left.estimated_rows,
            self.right.estimated_rows,
            self.left.estimated_pages,
            self.right.estimated_pages,
            ctx,
        )

    def total_cost(self, ctx: PlanContext) -> float:
        return (
            self.estimated_cost(ctx)
            + self.left.total_cost(ctx)
            + self.right.total_cost(ctx)
        )


class ProjectNode(PlanNode):
    """Projection, optionally duplicate-eliminating."""

    def __init__(
        self,
        child: PlanNode,
        columns: Sequence[str],
        distinct: bool,
        method: str = "hash",
        distinct_ratio: float = 1.0,
    ) -> None:
        rows = child.estimated_rows * (distinct_ratio if distinct else 1.0)
        super().__init__(child.schema.project(list(columns)), rows)
        self.child = child
        self.columns = list(columns)
        self.distinct = distinct
        self.method = method

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        tag = "distinct " if self.distinct else ""
        return "Project[%s](%s%s)" % (self.method, tag, ", ".join(self.columns))

    def fingerprint(self, ctx: PlanContext) -> Tuple[Any, ...]:
        return (
            "project",
            self.child.fingerprint(ctx),
            tuple(self.columns),
            self.distinct,
            self.method,
        )

    def _run(self, ctx: PlanContext) -> Relation:
        child = self.child.execute(ctx)
        if self.method == "sort":
            return sort_project(
                child,
                self.columns,
                self.distinct,
                ctx.counters,
                batch=ctx.batch,
                token=ctx.token,
                columnar=ctx.columnar,
            )
        return hash_project(
            child,
            self.columns,
            self.distinct,
            ctx.counters,
            memory_pages=ctx.memory_pages,
            fudge=ctx.params.fudge,
            disk=ctx.disk,
            batch=ctx.batch,
            token=ctx.token,
            columnar=ctx.columnar,
        )

    def estimated_cost(self, ctx: PlanContext) -> float:
        n = self.child.estimated_rows
        p = ctx.params
        if not self.distinct:
            return ctx.w * n * p.move
        if self.method == "sort":
            return ctx.w * n * math.log2(n + 2) * (p.comp + p.swap)
        return ctx.w * n * (p.hash + p.comp * p.fudge + p.move)

    def total_cost(self, ctx: PlanContext) -> float:
        return self.estimated_cost(ctx) + self.child.total_cost(ctx)


class AggregateNode(PlanNode):
    """Grouped aggregation via the hash (default) or sort engine."""

    def __init__(
        self,
        child: PlanNode,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        method: str = "hash",
        group_ratio: float = 0.1,
    ) -> None:
        from repro.operators.aggregate import _output_schema

        schema = _output_schema(child.schema, list(group_by), list(aggregates))
        rows = max(1.0, child.estimated_rows * group_ratio) if group_by else 1.0
        super().__init__(schema, rows)
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        self.method = method

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        aggs = ", ".join(a.output_name for a in self.aggregates)
        return "Aggregate[%s](by %s: %s)" % (
            self.method,
            ", ".join(self.group_by) or "<all>",
            aggs,
        )

    def fingerprint(self, ctx: PlanContext) -> Tuple[Any, ...]:
        return (
            "agg",
            self.child.fingerprint(ctx),
            tuple(self.group_by),
            tuple(
                (a.function.value, a.column, a.alias) for a in self.aggregates
            ),
            self.method,
        )

    def _run(self, ctx: PlanContext) -> Relation:
        child = self.child.execute(ctx)
        if self.method == "sort":
            return sort_aggregate(
                child, self.group_by, self.aggregates, ctx.counters,
                batch=ctx.batch,
                token=ctx.token,
                columnar=ctx.columnar,
            )
        return hash_aggregate(
            child,
            self.group_by,
            self.aggregates,
            ctx.counters,
            memory_pages=ctx.memory_pages,
            fudge=ctx.params.fudge,
            disk=ctx.disk,
            batch=ctx.batch,
            token=ctx.token,
            columnar=ctx.columnar,
        )

    def estimated_cost(self, ctx: PlanContext) -> float:
        n = self.child.estimated_rows
        p = ctx.params
        if self.method == "sort":
            return ctx.w * n * math.log2(n + 2) * (p.comp + p.swap)
        return ctx.w * n * (p.hash + p.comp)

    def total_cost(self, ctx: PlanContext) -> float:
        return self.estimated_cost(ctx) + self.child.total_cost(ctx)


# ---------------------------------------------------------------------------
# Shared estimation helpers
# ---------------------------------------------------------------------------

def _join_output_schema(left: Schema, right: Schema) -> Schema:
    clash = set(left.names) & set(right.names)
    if clash:
        return left.concat(right, prefix_self="r_", prefix_other="s_")
    return left.concat(right)


def estimate_join_cost(
    algorithm: str,
    left_rows: float,
    right_rows: float,
    left_pages: float,
    right_pages: float,
    ctx: PlanContext,
) -> float:
    """Cost one join algorithm on estimated input sizes.

    Uses the Section 3 closed forms for the paper's four algorithms and a
    direct formula for nested loops.  ``inf`` when the algorithm's
    assumptions do not hold at this memory grant (e.g. a two-pass method
    needing ``sqrt(|S|*F)`` pages).
    """
    r_pages = max(1, math.ceil(min(left_pages, right_pages)))
    s_pages = max(r_pages, math.ceil(max(left_pages, right_pages)))
    r_rows = min(left_rows, right_rows)
    s_rows = max(left_rows, right_rows)
    r_density = max(1, int(r_rows / r_pages)) if r_pages else 1
    s_density = max(1, int(s_rows / s_pages)) if s_pages else 1

    if algorithm == "nested-loops":
        blocks = max(1.0, r_pages * ctx.params.fudge / ctx.memory_pages)
        cpu = r_rows * s_rows * ctx.params.comp
        io = max(0.0, blocks - 1.0) * s_pages * ctx.params.io_seq
        return ctx.w * cpu + io

    params = ctx.params.with_updates(
        r_pages=r_pages,
        s_pages=s_pages,
        r_tuples_per_page=r_density,
        s_tuples_per_page=s_density,
    )
    workload = JoinWorkload(params=params, memory_pages=ctx.memory_pages)
    try:
        seconds = JOIN_COST_MODELS[algorithm](workload)
    except ValueError:
        return math.inf
    # The closed forms mix CPU and IO; weight is applied to the whole
    # figure, consistent with the paper's single execution-time axis.
    return ctx.w * seconds


__all__ = [
    "AggregateNode",
    "FilterNode",
    "IndexScanNode",
    "JoinNode",
    "PlanContext",
    "PlanNode",
    "ProjectNode",
    "ScanNode",
    "estimate_join_cost",
]
