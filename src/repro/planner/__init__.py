"""Access planning and query optimization -- Section 4 of the paper.

Selinger-style optimization minimizes ``W * CPU + IO`` over operator
orderings, algorithms, and access paths.  The paper's observation is that
large memory collapses most of that search space: hash-based algorithms are
fastest for join / aggregate / projection, their cost does not depend on
input order, so "query optimization is reduced to simply ordering the
operators so that the most selective operations are pushed towards the
bottom of the query tree".

This package implements both sides of that argument:

* :mod:`repro.planner.query` -- the logical query description.
* :mod:`repro.planner.selectivity` -- Selinger-style selectivity estimates
  from catalog statistics.
* :mod:`repro.planner.plan` -- executable physical plan nodes with
  ``W * CPU + IO`` cost estimates.
* :mod:`repro.planner.planner` -- the optimizer: selection pushdown,
  greedy most-selective-first join ordering, cost-based join algorithm and
  access-path choice (which, with large memory, always lands on hashing).
* :mod:`repro.planner.reuse` -- the materialised-subplan reuse cache
  (fingerprint-addressed, invalidated on base-table mutation).
"""

from repro.planner.plan import (
    AggregateNode,
    FilterNode,
    IndexScanNode,
    JoinNode,
    PlanContext,
    PlanNode,
    ProjectNode,
    ScanNode,
)
from repro.planner.planner import Planner, PlannerConfig
from repro.planner.query import JoinClause, Query
from repro.planner.reuse import PlanReuseCache
from repro.planner.selectivity import estimate_selectivity
from repro.planner.sql import SqlError, parse_sql

__all__ = [
    "AggregateNode",
    "FilterNode",
    "IndexScanNode",
    "JoinClause",
    "JoinNode",
    "PlanContext",
    "PlanNode",
    "PlanReuseCache",
    "Planner",
    "PlannerConfig",
    "ProjectNode",
    "Query",
    "ScanNode",
    "SqlError",
    "estimate_selectivity",
    "parse_sql",
]
