"""A small SQL front end over the Section 4 planner.

Supports the query fragment the paper's planner handles -- conjunctive
select-project-join with grouping:

.. code-block:: sql

    SELECT dname, AVG(salary) AS avg_sal
    FROM emp JOIN dept ON emp.dept = dept.dept_id
    WHERE salary > 50000 AND name LIKE 'J%'
    GROUP BY dname

Grammar (case-insensitive keywords)::

    query     := SELECT [DISTINCT] items FROM tables [WHERE conj]
                 [GROUP BY columns]
    items     := '*' | item (',' item)*
    item      := aggregate '(' ('*' | column) ')' [AS name] | column
    tables    := name (',' name)* | name (JOIN name ON eq)*
    conj      := term (AND term)*                 -- top level is a conjunction
    term      := '(' orterm ')' | predicate | eq  -- eq = equijoin condition
    orterm    := predicate ((AND|OR) predicate)*  -- single-table only
    predicate := column op literal | column LIKE 'prefix%' | NOT predicate
    eq        := qualified '=' qualified

Bare column names resolve through the catalog (they must be unambiguous,
which the planner requires anyway).  ``LIKE`` supports prefix patterns
(``'J%'``) only -- the paper's ``emp.name = "J*"`` query.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import PlannerError
from repro.operators.aggregate import AggregateFunction, AggregateSpec
from repro.operators.selection import And, Comparison, Not, Or, Predicate, Prefix
from repro.planner.query import JoinClause, Query
from repro.storage.catalog import Catalog


class SqlError(PlannerError):
    """Raised for syntax or resolution errors, with position context.

    ``position`` is the 0-based character offset of the offending token in
    the statement text (``None`` when the error has no single anchor, e.g.
    a GROUP BY / select-list mismatch).  The server protocol forwards it so
    clients can point at the exact spot in the statement they sent.
    """

    def __init__(self, message: str, position: Optional[int] = None) -> None:
        super().__init__(message)
        self.position = position


_KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "and", "or",
    "not", "join", "on", "as", "like",
}
_AGGREGATES = {
    "count": AggregateFunction.COUNT,
    "sum": AggregateFunction.SUM,
    "avg": AggregateFunction.AVG,
    "min": AggregateFunction.MIN,
    "max": AggregateFunction.MAX,
}

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<number>-?\d+\.\d+|-?\d+)
      | (?P<string>'(?:[^']|'')*')
      | (?P<name>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)?)
      | (?P<op><=|>=|!=|<>|=|<|>)
      | (?P<punct>[(),*])
    )
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind: str, value: str, pos: int) -> None:
        self.kind = kind
        self.value = value
        self.pos = pos

    def __repr__(self) -> str:
        return "%s(%r)" % (self.kind, self.value)


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise SqlError(
                "cannot tokenize SQL at position %d: %r"
                % (pos, text[pos:pos + 20]),
                position=pos,
            )
        pos = match.end()
        for kind in ("number", "string", "name", "op", "punct"):
            value = match.group(kind)
            if value is None:
                continue
            if kind == "name" and value.lower() in _KEYWORDS:
                tokens.append(_Token("keyword", value.lower(), match.start(kind)))
            else:
                tokens.append(_Token(kind, value, match.start(kind)))
            break
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str, catalog: Catalog) -> None:
        self.text = text
        self.catalog = catalog
        self.tokens = _tokenize(text)
        self.i = 0
        self.tables: List[str] = []

    # -- token plumbing -----------------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.i]

    def next(self) -> _Token:
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[_Token]:
        tok = self.peek()
        if tok.kind == kind and (value is None or tok.value == value):
            return self.next()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> _Token:
        tok = self.accept(kind, value)
        if tok is None:
            got = self.peek()
            raise SqlError(
                "expected %s at position %d, got %r"
                % (value or kind, got.pos, got.value or "<end>"),
                position=got.pos,
            )
        return tok

    # -- resolution -----------------------------------------------------------------

    def resolve_column(
        self, name: str, pos: Optional[int] = None
    ) -> Tuple[str, str]:
        """Resolve ``col`` or ``table.col`` to (table, column)."""
        if "." in name:
            table, column = name.split(".", 1)
            if table not in self.tables:
                raise SqlError(
                    "unknown table %r in %r" % (table, name), position=pos
                )
            if not self.catalog.relation(table).schema.has_field(column):
                raise SqlError(
                    "table %r has no column %r" % (table, column),
                    position=pos,
                )
            return table, column
        owners = [
            t
            for t in self.tables
            if self.catalog.relation(t).schema.has_field(name)
        ]
        if not owners:
            raise SqlError("unknown column %r" % name, position=pos)
        if len(owners) > 1:
            raise SqlError(
                "ambiguous column %r (in tables %s)" % (name, sorted(owners)),
                position=pos,
            )
        return owners[0], name

    # -- grammar ---------------------------------------------------------------------

    def parse(self) -> Query:
        self.expect("keyword", "select")
        distinct = self.accept("keyword", "distinct") is not None
        items = self._select_items()
        self.expect("keyword", "from")
        joins = self._tables_and_joins()
        predicates: List[Tuple[str, Predicate]] = []
        if self.accept("keyword", "where"):
            more_joins = self._where(predicates)
            joins.extend(more_joins)
        group_by: List[str] = []
        group_tok = self.accept("keyword", "group")
        if group_tok is not None:
            self.expect("keyword", "by")
            group_by = self._column_list()
        self.expect("eof")
        return self._build_query(
            items,
            distinct,
            joins,
            predicates,
            group_by,
            group_pos=group_tok.pos if group_tok is not None else None,
        )

    def _select_items(self) -> List[Tuple[str, Any, int]]:
        """Each item is ('star', None, pos) | ('column', name, pos) |
        ('agg', raw aggregate, pos)."""
        star = self.accept("punct", "*")
        if star is not None:
            return [("star", None, star.pos)]
        items: List[Tuple[str, Any, int]] = []
        while True:
            tok = self.peek()
            if tok.kind == "name" and tok.value.lower() in _AGGREGATES:
                nxt = self.tokens[self.i + 1]
                if nxt.kind == "punct" and nxt.value == "(":
                    items.append(("agg", self._aggregate(), tok.pos))
                else:
                    items.append(("column", self.next().value, tok.pos))
            elif tok.kind == "name":
                items.append(("column", self.next().value, tok.pos))
            else:
                raise SqlError(
                    "expected a column or aggregate at position %d" % tok.pos,
                    position=tok.pos,
                )
            if not self.accept("punct", ","):
                return items

    def _aggregate(self) -> Tuple[AggregateFunction, Optional[str], Optional[str]]:
        """Raw (func, column name, alias); the column resolves later,
        once FROM has populated the table list."""
        func_tok = self.next()
        func = _AGGREGATES[func_tok.value.lower()]
        self.expect("punct", "(")
        if self.accept("punct", "*"):
            if func is not AggregateFunction.COUNT:
                raise SqlError(
                    "%s(*) is not valid SQL here" % func.value,
                    position=func_tok.pos,
                )
            column: Optional[str] = None
        else:
            column = self.expect("name").value
        self.expect("punct", ")")
        alias = None
        if self.accept("keyword", "as"):
            alias = self.expect("name").value
        return func, column, alias

    def _resolved_column_name(self) -> str:
        tok = self.expect("name")
        _, column = self.resolve_column(tok.value, pos=tok.pos)
        return column

    def _tables_and_joins(self) -> List[JoinClause]:
        joins: List[JoinClause] = []
        self._register_table(self.expect("name"))
        while True:
            if self.accept("punct", ","):
                self._register_table(self.expect("name"))
            elif self.accept("keyword", "join"):
                self._register_table(self.expect("name"))
                self.expect("keyword", "on")
                joins.append(self._equijoin())
            else:
                return joins

    def _register_table(self, tok: _Token) -> None:
        name = tok.value
        if not self.catalog.has_relation(name):
            raise SqlError("unknown table %r" % name, position=tok.pos)
        if name in self.tables:
            raise SqlError(
                "table %r listed twice (aliases unsupported)" % name,
                position=tok.pos,
            )
        self.tables.append(name)

    def _equijoin(self) -> JoinClause:
        left = self.expect("name")
        self.expect("op", "=")
        right = self.expect("name")
        lt, lc = self.resolve_column(left.value, pos=left.pos)
        rt, rc = self.resolve_column(right.value, pos=right.pos)
        if lt == rt:
            raise SqlError(
                "join condition %s = %s stays within one table"
                % (left.value, right.value),
                position=left.pos,
            )
        return JoinClause(lt, lc, rt, rc)

    # -- WHERE ------------------------------------------------------------------------

    def _where(
        self, predicates: List[Tuple[str, Predicate]]
    ) -> List[JoinClause]:
        """Top-level conjunction of predicates and equijoin conditions."""
        joins: List[JoinClause] = []
        while True:
            self._where_term(predicates, joins)
            if not self.accept("keyword", "and"):
                return joins

    def _where_term(self, predicates, joins) -> None:
        if self.accept("punct", "("):
            table, pred = self._or_expression()
            self.expect("punct", ")")
            predicates.append((table, pred))
            return
        # Lookahead: column op column (both names) is an equijoin.
        tok = self.peek()
        if tok.kind == "name":
            nxt = self.tokens[self.i + 1]
            after = self.tokens[self.i + 2]
            if (
                nxt.kind == "op"
                and nxt.value == "="
                and after.kind == "name"
                and after.value.lower() not in _KEYWORDS
            ):
                lt, _ = self.resolve_column(tok.value, pos=tok.pos)
                rt, _ = self.resolve_column(after.value, pos=after.pos)
                if lt != rt:
                    joins.append(self._equijoin())
                    return
        table, pred = self._predicate()
        predicates.append((table, pred))

    def _or_expression(self) -> Tuple[str, Predicate]:
        """Parenthesised OR/AND chain; all legs must hit one table."""
        table, pred = self._predicate()
        while True:
            if self.accept("keyword", "or"):
                combine = Or
            elif self.accept("keyword", "and"):
                combine = And
            else:
                return table, pred
            leg_pos = self.peek().pos
            table2, pred2 = self._predicate()
            if table2 != table:
                raise SqlError(
                    "predicates inside parentheses must reference one "
                    "table; got %r and %r" % (table, table2),
                    position=leg_pos,
                )
            pred = combine(pred, pred2)

    def _predicate(self) -> Tuple[str, Predicate]:
        if self.accept("keyword", "not"):
            table, inner = self._predicate()
            return table, Not(inner)
        if self.accept("punct", "("):
            table, pred = self._or_expression()
            self.expect("punct", ")")
            return table, pred
        name_tok = self.expect("name")
        table, column = self.resolve_column(name_tok.value, pos=name_tok.pos)
        if self.accept("keyword", "like"):
            pattern_tok = self.expect("string")
            pattern = pattern_tok.value[1:-1].replace("''", "'")
            if not pattern.endswith("%") or "%" in pattern[:-1] or not pattern[:-1]:
                raise SqlError(
                    "only prefix LIKE patterns ('J%%') are supported; "
                    "got %r" % pattern,
                    position=pattern_tok.pos,
                )
            return table, Prefix(column, pattern[:-1])
        op_tok = self.expect("op")
        op = "!=" if op_tok.value == "<>" else op_tok.value
        value = self._literal()
        return table, Comparison(column, op, value)

    def _literal(self) -> Any:
        tok = self.next()
        if tok.kind == "number":
            return float(tok.value) if "." in tok.value else int(tok.value)
        if tok.kind == "string":
            return tok.value[1:-1].replace("''", "'")
        raise SqlError(
            "expected a literal at position %d" % tok.pos, position=tok.pos
        )

    def _string_literal(self) -> str:
        tok = self.expect("string")
        return tok.value[1:-1].replace("''", "'")

    def _column_list(self) -> List[str]:
        columns = [self._resolved_column_name()]
        while self.accept("punct", ","):
            columns.append(self._resolved_column_name())
        return columns

    # -- assembly -------------------------------------------------------------------------

    def _build_query(
        self, items, distinct, joins, predicates, group_by, group_pos=None
    ) -> Query:
        aggregates = [
            AggregateSpec(
                func,
                self.resolve_column(col, pos=pos)[1] if col is not None else None,
                alias,
            )
            for (func, col, alias), pos in (
                (v, p) for k, v, p in items if k == "agg"
            )
        ]
        column_items = [
            (self.resolve_column(name, pos=pos)[1], pos)
            for kind, name, pos in items
            if kind == "column"
        ]
        columns = [name for name, _ in column_items]
        is_star = any(kind == "star" for kind, _, _ in items)

        if aggregates:
            if is_star:
                star_pos = next(p for k, _, p in items if k == "star")
                raise SqlError(
                    "SELECT * cannot be mixed with aggregates",
                    position=star_pos,
                )
            implied = group_by or columns
            if sorted(columns) != sorted(implied if not group_by else group_by):
                if group_by and sorted(columns) != sorted(group_by):
                    offenders = [
                        pos
                        for name, pos in column_items
                        if name not in group_by
                    ]
                    raise SqlError(
                        "non-aggregated columns %r must match GROUP BY %r"
                        % (columns, group_by),
                        position=offenders[0] if offenders else group_pos,
                    )
            return Query(
                tables=self.tables,
                predicates=predicates,
                joins=joins,
                group_by=group_by or columns,
                aggregates=aggregates,
            )
        if group_by:
            raise SqlError(
                "GROUP BY without aggregates; add one or drop it",
                position=group_pos,
            )
        projection = None if is_star else columns
        return Query(
            tables=self.tables,
            predicates=predicates,
            joins=joins,
            projection=projection,
            distinct=distinct,
        )


def parse_sql(text: str, catalog: Catalog) -> Query:
    """Parse ``text`` into a :class:`~repro.planner.query.Query`."""
    return _Parser(text, catalog).parse()


__all__ = ["SqlError", "parse_sql"]
