"""Machine and workload parameters from Section 3 of the paper.

Table 2 of the paper fixes the per-primitive costs used by the analytic
simulation of the four join algorithms; Table 3 gives the ranges over which
the authors swept those parameters to check that the qualitative conclusions
are robust.  Both are encoded here so every benchmark uses the published
numbers by name rather than magic constants.

All times are stored in **seconds** (the paper quotes microseconds and
milliseconds; conversion happens once, here).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Sequence, Tuple
from repro.errors import ConfigurationError

MICROSECOND = 1e-6
MILLISECOND = 1e-3


@dataclass(frozen=True)
class CostParameters:
    """The machine/workload parameter set of the paper's Table 2.

    Attributes mirror the paper's notation:

    * ``comp``   -- time to compare two keys.
    * ``hash``   -- time to hash a key.
    * ``move``   -- time to move a tuple.
    * ``swap``   -- time to swap two tuples.
    * ``io_seq`` -- time for one sequential page IO.
    * ``io_rand``-- time for one random page IO.
    * ``fudge``  -- the universal "F" factor: a hash table or sort structure
      for ``|R|`` pages of tuples occupies ``|R| * F`` pages.
    * ``r_pages`` / ``s_pages`` -- sizes of the two join inputs in pages
      (the paper requires ``|R| <= |S|``).
    * ``r_tuples_per_page`` / ``s_tuples_per_page`` -- tuple densities.
    """

    comp: float = 3 * MICROSECOND
    hash: float = 9 * MICROSECOND
    move: float = 20 * MICROSECOND
    swap: float = 60 * MICROSECOND
    io_seq: float = 10 * MILLISECOND
    io_rand: float = 25 * MILLISECOND
    fudge: float = 1.2
    r_pages: int = 10_000
    s_pages: int = 10_000
    r_tuples_per_page: int = 40
    s_tuples_per_page: int = 40

    def __post_init__(self) -> None:
        if self.r_pages > self.s_pages:
            raise ConfigurationError(
                "the paper assumes |R| <= |S|; got |R|=%d > |S|=%d"
                % (self.r_pages, self.s_pages)
            )
        if self.fudge < 1.0:
            raise ConfigurationError("fudge factor F must be >= 1.0")
        for name in ("comp", "hash", "move", "swap", "io_seq", "io_rand"):
            if getattr(self, name) <= 0:
                raise ConfigurationError("%s must be positive" % name)
        if self.r_tuples_per_page <= 0 or self.s_tuples_per_page <= 0:
            raise ConfigurationError("tuples per page must be positive")

    @property
    def r_tuples(self) -> int:
        """``||R||`` -- the number of tuples in R."""
        return self.r_pages * self.r_tuples_per_page

    @property
    def s_tuples(self) -> int:
        """``||S||`` -- the number of tuples in S."""
        return self.s_pages * self.s_tuples_per_page

    @property
    def minimum_memory_pages(self) -> int:
        """The smallest ``|M|`` the two-pass algorithms tolerate.

        The paper assumes ``sqrt(|S| * F) <= |M|`` so that sort-merge, GRACE
        and hybrid hash never need a third pass.
        """
        return int((self.s_pages * self.fudge) ** 0.5) + 1

    def memory_for_ratio(self, ratio: float) -> int:
        """Convert Figure 1's x-axis ``|M| / (|R| * F)`` into pages."""
        if ratio <= 0:
            raise ConfigurationError("memory ratio must be positive")
        return max(1, int(round(ratio * self.r_pages * self.fudge)))

    def with_updates(self, **changes: float) -> "CostParameters":
        """Return a copy with some fields replaced (sweep helper)."""
        return replace(self, **changes)


#: The exact Table 2 of the paper.
TABLE2_DEFAULTS = CostParameters()

#: Table 3 of the paper -- the ranges swept to test robustness.  Each entry
#: maps a :class:`CostParameters` field to the (low, high) endpoints the
#: authors report, in seconds / pages / tuples as appropriate.
TABLE3_RANGES: Dict[str, Tuple[float, float]] = {
    "comp": (1 * MICROSECOND, 10 * MICROSECOND),
    "hash": (2 * MICROSECOND, 50 * MICROSECOND),
    "move": (10 * MICROSECOND, 50 * MICROSECOND),
    "swap": (60 * MICROSECOND, 250 * MICROSECOND),
    "io_seq": (5 * MILLISECOND, 10 * MILLISECOND),
    "io_rand": (15 * MILLISECOND, 35 * MILLISECOND),
    "fudge": (1.0, 1.4),
    "s_pages": (10_000, 200_000),
    "r_tuples": (100_000, 1_000_000),
}


def _swap_floor(comp: float, move: float) -> float:
    """A swap can never be cheaper than three moves or one comparison."""
    return max(3 * move, comp)


def table3_grid(points_per_axis: int = 2) -> Iterator[CostParameters]:
    """Yield :class:`CostParameters` over the Table 3 sweep lattice.

    The paper reports scanning "the range of parameter values shown in
    Table 3" and observing the same qualitative Figure 1 on each setting.
    This generator enumerates the corners (``points_per_axis=2``) or a denser
    lattice of that box.  ``r_tuples`` is realised by varying ``r_pages`` at
    40 tuples/page, and ``|R| <= |S|`` is enforced by clamping.
    """
    if points_per_axis < 2:
        raise ConfigurationError("need at least the two endpoints per axis")

    def axis(lo: float, hi: float) -> List[float]:
        step = (hi - lo) / (points_per_axis - 1)
        return [lo + i * step for i in range(points_per_axis)]

    comps = axis(*TABLE3_RANGES["comp"])
    hashes = axis(*TABLE3_RANGES["hash"])
    moves = axis(*TABLE3_RANGES["move"])
    io_seqs = axis(*TABLE3_RANGES["io_seq"])
    io_rands = axis(*TABLE3_RANGES["io_rand"])
    fudges = axis(*TABLE3_RANGES["fudge"])
    s_sizes = axis(*TABLE3_RANGES["s_pages"])
    r_tuple_counts = axis(*TABLE3_RANGES["r_tuples"])

    for comp, hsh, move, io_seq, io_rand, fudge, s_pg, r_tup in itertools.product(
        comps, hashes, moves, io_seqs, io_rands, fudges, s_sizes, r_tuple_counts
    ):
        r_pages = max(1, int(r_tup) // 40)
        s_pages = max(int(s_pg), r_pages)
        yield CostParameters(
            comp=comp,
            hash=hsh,
            move=move,
            swap=_swap_floor(comp, move),
            io_seq=io_seq,
            io_rand=max(io_rand, io_seq),
            fudge=fudge,
            r_pages=r_pages,
            s_pages=s_pages,
        )


def table3_sample(count: int, seed: int = 1984) -> List[CostParameters]:
    """A reproducible pseudo-random sample of the Table 3 box.

    The full corner lattice is ``2**8`` points; benchmarks that want a
    smaller but still representative sweep use this sampler.
    """
    import random

    rng = random.Random(seed)
    sample: List[CostParameters] = []
    for _ in range(count):
        comp = rng.uniform(*TABLE3_RANGES["comp"])
        move = rng.uniform(*TABLE3_RANGES["move"])
        io_seq = rng.uniform(*TABLE3_RANGES["io_seq"])
        r_tuples = rng.uniform(*TABLE3_RANGES["r_tuples"])
        r_pages = max(1, int(r_tuples) // 40)
        s_pages = max(int(rng.uniform(*TABLE3_RANGES["s_pages"])), r_pages)
        sample.append(
            CostParameters(
                comp=comp,
                hash=rng.uniform(*TABLE3_RANGES["hash"]),
                move=move,
                swap=rng.uniform(max(3 * move, 60e-6), 250e-6),
                io_seq=io_seq,
                io_rand=max(rng.uniform(*TABLE3_RANGES["io_rand"]), io_seq),
                fudge=rng.uniform(*TABLE3_RANGES["fudge"]),
                r_pages=r_pages,
                s_pages=s_pages,
            )
        )
    return sample


__all__ = [
    "CostParameters",
    "MICROSECOND",
    "MILLISECOND",
    "TABLE2_DEFAULTS",
    "TABLE3_RANGES",
    "table3_grid",
    "table3_sample",
]
