"""Run-time operation counters -- the instrumentation behind every benchmark.

The paper's evaluation charges algorithms per primitive operation and then
weights the tallies with the Table 2 machine constants.  Re-running that
methodology in Python requires exactly one piece of infrastructure: a
counter object that the executable algorithms increment as they compare,
hash, move, swap, and perform IO.  Multiplying a counter vector by a
:class:`~repro.cost.parameters.CostParameters` yields the same "seconds" the
paper plots, independent of interpreter speed.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Dict, List

from repro.cost.parameters import CostParameters


def heap_push_charges(n: int) -> int:
    """Total comparisons (== swaps) for ``n`` pushes into a growing heap.

    The tuple-at-a-time paths charge ``max(1, ceil(log2(size + 2)))`` per
    push (``size`` = heap length before the push); this sums the same
    expression in power-of-two blocks -- the value is constant while
    ``size + 2`` stays within one block -- so batch paths charge identical
    totals without a per-row ``log2``.
    """
    total = 0
    i = 0
    while i < n:
        levels = max(1, math.ceil(math.log2(i + 2)))
        block_end = min(n, (1 << levels) - 1)
        total += levels * (block_end - i)
        i = block_end
    return total


@dataclass
class OperationCounters:
    """Mutable tally of the six primitive operations of Section 3.2.

    The executable algorithms in :mod:`repro.join`, :mod:`repro.access` and
    :mod:`repro.operators` accept one of these and increment it as they run.
    Counters are plain integers; use :meth:`cost` to convert to modelled
    seconds.
    """

    comparisons: int = 0
    hashes: int = 0
    moves: int = 0
    swaps: int = 0
    sequential_ios: int = 0
    random_ios: int = 0

    # -- increment helpers -------------------------------------------------

    def compare(self, n: int = 1) -> None:
        """Record ``n`` key comparisons."""
        self.comparisons += n

    def hash_key(self, n: int = 1) -> None:
        """Record ``n`` key hashes."""
        self.hashes += n

    def move_tuple(self, n: int = 1) -> None:
        """Record ``n`` tuple moves."""
        self.moves += n

    def swap_tuples(self, n: int = 1) -> None:
        """Record ``n`` tuple swaps."""
        self.swaps += n

    def io_sequential(self, pages: int = 1) -> None:
        """Record ``pages`` sequential page IOs."""
        self.sequential_ios += pages

    def io_random(self, pages: int = 1) -> None:
        """Record ``pages`` random page IOs."""
        self.random_ios += pages

    # -- aggregation -------------------------------------------------------

    def reset(self) -> None:
        """Zero every counter in place."""
        self.comparisons = 0
        self.hashes = 0
        self.moves = 0
        self.swaps = 0
        self.sequential_ios = 0
        self.random_ios = 0

    def snapshot(self) -> "OperationCounters":
        """Return an independent copy of the current tallies."""
        return OperationCounters(
            comparisons=self.comparisons,
            hashes=self.hashes,
            moves=self.moves,
            swaps=self.swaps,
            sequential_ios=self.sequential_ios,
            random_ios=self.random_ios,
        )

    def __add__(self, other: "OperationCounters") -> "OperationCounters":
        return OperationCounters(
            comparisons=self.comparisons + other.comparisons,
            hashes=self.hashes + other.hashes,
            moves=self.moves + other.moves,
            swaps=self.swaps + other.swaps,
            sequential_ios=self.sequential_ios + other.sequential_ios,
            random_ios=self.random_ios + other.random_ios,
        )

    def __sub__(self, other: "OperationCounters") -> "OperationCounters":
        return OperationCounters(
            comparisons=self.comparisons - other.comparisons,
            hashes=self.hashes - other.hashes,
            moves=self.moves - other.moves,
            swaps=self.swaps - other.swaps,
            sequential_ios=self.sequential_ios - other.sequential_ios,
            random_ios=self.random_ios - other.random_ios,
        )

    def absorb(self, other: "OperationCounters") -> None:
        """Add another tally into this one in place.

        Counter increments commute, so parallel workers can tally into
        fresh local counters and the coordinator folds them back with
        ``absorb`` -- totals match the serial execution exactly.
        """
        self.comparisons += other.comparisons
        self.hashes += other.hashes
        self.moves += other.moves
        self.swaps += other.swaps
        self.sequential_ios += other.sequential_ios
        self.random_ios += other.random_ios

    def as_dict(self) -> Dict[str, int]:
        """The tallies as a plain dict (for reports and tests)."""
        return {
            "comparisons": self.comparisons,
            "hashes": self.hashes,
            "moves": self.moves,
            "swaps": self.swaps,
            "sequential_ios": self.sequential_ios,
            "random_ios": self.random_ios,
        }

    # -- costing -----------------------------------------------------------

    def cpu_cost(self, params: CostParameters) -> float:
        """Modelled CPU seconds under ``params``."""
        return (
            self.comparisons * params.comp
            + self.hashes * params.hash
            + self.moves * params.move
            + self.swaps * params.swap
        )

    def io_cost(self, params: CostParameters) -> float:
        """Modelled IO seconds under ``params``."""
        return (
            self.sequential_ios * params.io_seq
            + self.random_ios * params.io_rand
        )

    def cost(self, params: CostParameters) -> float:
        """Total modelled seconds (CPU + IO, no overlap, as in the paper)."""
        return self.cpu_cost(params) + self.io_cost(params)

    def report(self, params: CostParameters, label: str = "") -> "CostReport":
        """Bundle tallies and modelled seconds into a :class:`CostReport`."""
        return CostReport(
            label=label,
            counters=self.snapshot(),
            cpu_seconds=self.cpu_cost(params),
            io_seconds=self.io_cost(params),
        )


class ShardedOperationCounters(OperationCounters):
    """Thread-sharded tallies with deterministic merge semantics.

    The relational facade shares one counter object across every session
    thread; with plain :class:`OperationCounters` two concurrent
    statements interleave their increments, so a per-statement
    snapshot-diff is meaningless.  This subclass gives each thread its
    own private shard (a plain :class:`OperationCounters`): the six
    increment helpers charge the calling thread's shard, the six field
    names become read-properties that sum every shard (addition
    commutes, so the merge is deterministic regardless of thread
    timing), and :meth:`thread_snapshot` exposes the calling thread's
    shard alone -- diffing it around a statement yields *exactly* that
    statement's charges even while other threads execute concurrently.

    Shards live in an append-only list rather than a dict keyed by
    thread id: thread idents are reused by the OS, and keying by ident
    would let a new thread overwrite (and lose) a finished thread's
    tallies.  A dead thread's shard simply keeps contributing to the
    totals, which is what "the work happened" means.

    The base ``__init__`` is deliberately not called: the six dataclass
    fields are overridden by data-descriptor properties here, so there
    are no instance attributes to initialise (and assigning them would
    raise).  All other base behaviour -- ``snapshot``, ``__add__``,
    ``__sub__``, ``as_dict``, the costing methods -- reads through the
    properties and works unchanged.
    """

    def __init__(self) -> None:
        self._shards: List[OperationCounters] = []
        self._shards_mu = threading.Lock()
        self._local = threading.local()

    # -- shard plumbing ----------------------------------------------------

    def _shard(self) -> OperationCounters:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = OperationCounters()
            with self._shards_mu:
                self._shards.append(shard)
            self._local.shard = shard
        return shard

    def _shards_view(self) -> List[OperationCounters]:
        with self._shards_mu:
            return list(self._shards)

    def thread_snapshot(self) -> OperationCounters:
        """An independent copy of the *calling thread's* tallies only."""
        return self._shard().snapshot()

    # -- merged read side --------------------------------------------------

    @property
    def comparisons(self) -> int:  # type: ignore[override]
        return sum(s.comparisons for s in self._shards_view())

    @property
    def hashes(self) -> int:  # type: ignore[override]
        return sum(s.hashes for s in self._shards_view())

    @property
    def moves(self) -> int:  # type: ignore[override]
        return sum(s.moves for s in self._shards_view())

    @property
    def swaps(self) -> int:  # type: ignore[override]
        return sum(s.swaps for s in self._shards_view())

    @property
    def sequential_ios(self) -> int:  # type: ignore[override]
        return sum(s.sequential_ios for s in self._shards_view())

    @property
    def random_ios(self) -> int:  # type: ignore[override]
        return sum(s.random_ios for s in self._shards_view())

    # -- sharded write side ------------------------------------------------

    def compare(self, n: int = 1) -> None:
        self._shard().compare(n)

    def hash_key(self, n: int = 1) -> None:
        self._shard().hash_key(n)

    def move_tuple(self, n: int = 1) -> None:
        self._shard().move_tuple(n)

    def swap_tuples(self, n: int = 1) -> None:
        self._shard().swap_tuples(n)

    def io_sequential(self, pages: int = 1) -> None:
        self._shard().io_sequential(pages)

    def io_random(self, pages: int = 1) -> None:
        self._shard().io_random(pages)

    def absorb(self, other: OperationCounters) -> None:
        """Fold ``other`` into the calling thread's shard (parallel join
        coordinators absorb their workers' tallies on their own thread,
        so the statement-level thread diff still captures them)."""
        self._shard().absorb(other)

    def reset(self) -> None:
        """Zero every shard in place (quiescent use only, like the base
        class: a reset racing live charges drops those charges)."""
        for shard in self._shards_view():
            shard.reset()

    def snapshot(self) -> OperationCounters:
        """An independent plain-counter copy of the merged totals."""
        merged = OperationCounters()
        for shard in self._shards_view():
            merged.absorb(shard)
        return merged

    def __repr__(self) -> str:
        with self._shards_mu:
            n = len(self._shards)
        return "ShardedOperationCounters(%d shards, %s)" % (
            n,
            self.as_dict(),
        )


@dataclass(frozen=True)
class CostReport:
    """An immutable costed summary of one algorithm execution."""

    label: str
    counters: OperationCounters
    cpu_seconds: float
    io_seconds: float

    @property
    def total_seconds(self) -> float:
        """CPU + IO seconds, the quantity plotted in Figure 1."""
        return self.cpu_seconds + self.io_seconds

    def __str__(self) -> str:
        c = self.counters
        return (
            "%s: %.2f s (cpu %.2f s, io %.2f s) "
            "[comp=%d hash=%d move=%d swap=%d ioseq=%d iorand=%d]"
            % (
                self.label or "run",
                self.total_seconds,
                self.cpu_seconds,
                self.io_seconds,
                c.comparisons,
                c.hashes,
                c.moves,
                c.swaps,
                c.sequential_ios,
                c.random_ios,
            )
        )


__all__ = [
    "CostReport",
    "OperationCounters",
    "ShardedOperationCounters",
    "heap_push_charges",
]
