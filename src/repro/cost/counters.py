"""Run-time operation counters -- the instrumentation behind every benchmark.

The paper's evaluation charges algorithms per primitive operation and then
weights the tallies with the Table 2 machine constants.  Re-running that
methodology in Python requires exactly one piece of infrastructure: a
counter object that the executable algorithms increment as they compare,
hash, move, swap, and perform IO.  Multiplying a counter vector by a
:class:`~repro.cost.parameters.CostParameters` yields the same "seconds" the
paper plots, independent of interpreter speed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.cost.parameters import CostParameters


def heap_push_charges(n: int) -> int:
    """Total comparisons (== swaps) for ``n`` pushes into a growing heap.

    The tuple-at-a-time paths charge ``max(1, ceil(log2(size + 2)))`` per
    push (``size`` = heap length before the push); this sums the same
    expression in power-of-two blocks -- the value is constant while
    ``size + 2`` stays within one block -- so batch paths charge identical
    totals without a per-row ``log2``.
    """
    total = 0
    i = 0
    while i < n:
        levels = max(1, math.ceil(math.log2(i + 2)))
        block_end = min(n, (1 << levels) - 1)
        total += levels * (block_end - i)
        i = block_end
    return total


@dataclass
class OperationCounters:
    """Mutable tally of the six primitive operations of Section 3.2.

    The executable algorithms in :mod:`repro.join`, :mod:`repro.access` and
    :mod:`repro.operators` accept one of these and increment it as they run.
    Counters are plain integers; use :meth:`cost` to convert to modelled
    seconds.
    """

    comparisons: int = 0
    hashes: int = 0
    moves: int = 0
    swaps: int = 0
    sequential_ios: int = 0
    random_ios: int = 0

    # -- increment helpers -------------------------------------------------

    def compare(self, n: int = 1) -> None:
        """Record ``n`` key comparisons."""
        self.comparisons += n

    def hash_key(self, n: int = 1) -> None:
        """Record ``n`` key hashes."""
        self.hashes += n

    def move_tuple(self, n: int = 1) -> None:
        """Record ``n`` tuple moves."""
        self.moves += n

    def swap_tuples(self, n: int = 1) -> None:
        """Record ``n`` tuple swaps."""
        self.swaps += n

    def io_sequential(self, pages: int = 1) -> None:
        """Record ``pages`` sequential page IOs."""
        self.sequential_ios += pages

    def io_random(self, pages: int = 1) -> None:
        """Record ``pages`` random page IOs."""
        self.random_ios += pages

    # -- aggregation -------------------------------------------------------

    def reset(self) -> None:
        """Zero every counter in place."""
        self.comparisons = 0
        self.hashes = 0
        self.moves = 0
        self.swaps = 0
        self.sequential_ios = 0
        self.random_ios = 0

    def snapshot(self) -> "OperationCounters":
        """Return an independent copy of the current tallies."""
        return OperationCounters(
            comparisons=self.comparisons,
            hashes=self.hashes,
            moves=self.moves,
            swaps=self.swaps,
            sequential_ios=self.sequential_ios,
            random_ios=self.random_ios,
        )

    def __add__(self, other: "OperationCounters") -> "OperationCounters":
        return OperationCounters(
            comparisons=self.comparisons + other.comparisons,
            hashes=self.hashes + other.hashes,
            moves=self.moves + other.moves,
            swaps=self.swaps + other.swaps,
            sequential_ios=self.sequential_ios + other.sequential_ios,
            random_ios=self.random_ios + other.random_ios,
        )

    def __sub__(self, other: "OperationCounters") -> "OperationCounters":
        return OperationCounters(
            comparisons=self.comparisons - other.comparisons,
            hashes=self.hashes - other.hashes,
            moves=self.moves - other.moves,
            swaps=self.swaps - other.swaps,
            sequential_ios=self.sequential_ios - other.sequential_ios,
            random_ios=self.random_ios - other.random_ios,
        )

    def absorb(self, other: "OperationCounters") -> None:
        """Add another tally into this one in place.

        Counter increments commute, so parallel workers can tally into
        fresh local counters and the coordinator folds them back with
        ``absorb`` -- totals match the serial execution exactly.
        """
        self.comparisons += other.comparisons
        self.hashes += other.hashes
        self.moves += other.moves
        self.swaps += other.swaps
        self.sequential_ios += other.sequential_ios
        self.random_ios += other.random_ios

    def as_dict(self) -> Dict[str, int]:
        """The tallies as a plain dict (for reports and tests)."""
        return {
            "comparisons": self.comparisons,
            "hashes": self.hashes,
            "moves": self.moves,
            "swaps": self.swaps,
            "sequential_ios": self.sequential_ios,
            "random_ios": self.random_ios,
        }

    # -- costing -----------------------------------------------------------

    def cpu_cost(self, params: CostParameters) -> float:
        """Modelled CPU seconds under ``params``."""
        return (
            self.comparisons * params.comp
            + self.hashes * params.hash
            + self.moves * params.move
            + self.swaps * params.swap
        )

    def io_cost(self, params: CostParameters) -> float:
        """Modelled IO seconds under ``params``."""
        return (
            self.sequential_ios * params.io_seq
            + self.random_ios * params.io_rand
        )

    def cost(self, params: CostParameters) -> float:
        """Total modelled seconds (CPU + IO, no overlap, as in the paper)."""
        return self.cpu_cost(params) + self.io_cost(params)

    def report(self, params: CostParameters, label: str = "") -> "CostReport":
        """Bundle tallies and modelled seconds into a :class:`CostReport`."""
        return CostReport(
            label=label,
            counters=self.snapshot(),
            cpu_seconds=self.cpu_cost(params),
            io_seconds=self.io_cost(params),
        )


@dataclass(frozen=True)
class CostReport:
    """An immutable costed summary of one algorithm execution."""

    label: str
    counters: OperationCounters
    cpu_seconds: float
    io_seconds: float

    @property
    def total_seconds(self) -> float:
        """CPU + IO seconds, the quantity plotted in Figure 1."""
        return self.cpu_seconds + self.io_seconds

    def __str__(self) -> str:
        c = self.counters
        return (
            "%s: %.2f s (cpu %.2f s, io %.2f s) "
            "[comp=%d hash=%d move=%d swap=%d ioseq=%d iorand=%d]"
            % (
                self.label or "run",
                self.total_seconds,
                self.cpu_seconds,
                self.io_seconds,
                c.comparisons,
                c.hashes,
                c.moves,
                c.swaps,
                c.sequential_ios,
                c.random_ios,
            )
        )


__all__ = ["CostReport", "OperationCounters", "heap_push_charges"]
