"""Cost modelling substrate for the SIGMOD 1984 MMDB reproduction.

The paper evaluates every design through *analytic simulation*: algorithms
are charged per primitive operation (key comparison, key hash, tuple move,
tuple swap, sequential IO, random IO), and the charges are weighted with the
machine parameters of its Table 2.  This package holds:

* :mod:`repro.cost.parameters` -- the parameter records (Table 2 defaults,
  Table 3 sweep ranges, Section 2 access-method parameters).
* :mod:`repro.cost.counters` -- the run-time instrumentation used by the
  executable algorithms.
* :mod:`repro.cost.access_model` -- Section 2: AVL vs B+-tree cost model and
  the Table 1 breakeven generator.
* :mod:`repro.cost.join_model` -- Section 3: closed-form costs of the four
  join algorithms behind Figure 1.
"""

from repro.cost.access_model import (
    AccessMethodParameters,
    avl_random_cost,
    avl_sequential_cost,
    avl_storage_pages,
    btree_fanout,
    btree_height,
    btree_random_cost,
    btree_sequential_cost,
    btree_storage_pages,
    random_breakeven_fraction,
    sequential_breakeven_fraction,
    table1,
)
from repro.cost.counters import CostReport, OperationCounters
from repro.cost.join_model import (
    JoinCostModel,
    JoinWorkload,
    figure1_series,
    grace_hash_cost,
    hybrid_hash_cost,
    hybrid_partition_plan,
    simple_hash_cost,
    simple_hash_passes,
    sort_merge_cost,
)
from repro.cost.parameters import (
    TABLE2_DEFAULTS,
    TABLE3_RANGES,
    CostParameters,
    table3_grid,
)

__all__ = [
    "AccessMethodParameters",
    "CostParameters",
    "CostReport",
    "JoinCostModel",
    "JoinWorkload",
    "OperationCounters",
    "TABLE2_DEFAULTS",
    "TABLE3_RANGES",
    "avl_random_cost",
    "avl_sequential_cost",
    "avl_storage_pages",
    "btree_fanout",
    "btree_height",
    "btree_random_cost",
    "btree_sequential_cost",
    "btree_storage_pages",
    "figure1_series",
    "grace_hash_cost",
    "hybrid_hash_cost",
    "hybrid_partition_plan",
    "random_breakeven_fraction",
    "sequential_breakeven_fraction",
    "simple_hash_cost",
    "simple_hash_passes",
    "sort_merge_cost",
    "table1",
    "table3_grid",
]
