"""Section 3: closed-form cost models of the four join algorithms.

These are the formulas behind the paper's Figure 1, transcribed from
Sections 3.4-3.7.  Conventions (Section 3.2):

* ``|R|``, ``|S|`` -- pages of the two inputs, ``|R| <= |S|``.
* ``||R||``, ``||S||`` -- tuples.
* ``|M|`` -- pages of main memory granted to the join.
* ``F`` -- the universal fudge factor: a hash table for R needs
  ``|R| * F`` pages.
* Costs ignore the initial read of both relations and the write of the
  result (identical for all four algorithms) and assume no CPU/IO overlap.

The two-pass algorithms (sort-merge, GRACE, hybrid) additionally assume
``sqrt(|S| * F) <= |M|``; :func:`JoinCostModel.validate_memory` enforces it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.cost.parameters import CostParameters
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class JoinWorkload:
    """A join problem instance: the inputs and the memory grant."""

    params: CostParameters
    memory_pages: int

    def __post_init__(self) -> None:
        if self.memory_pages < 1:
            raise ConfigurationError("need at least one page of memory")

    @property
    def memory_ratio(self) -> float:
        """Figure 1's x-axis: ``|M| / (|R| * F)``."""
        return self.memory_pages / (self.params.r_pages * self.params.fudge)


def _validate_two_pass(workload: JoinWorkload) -> None:
    p = workload.params
    if workload.memory_pages ** 2 < p.s_pages * p.fudge:
        raise ConfigurationError(
            "two-pass algorithms need sqrt(|S|*F) <= |M|: "
            "|M|=%d, sqrt(|S|*F)=%.1f"
            % (workload.memory_pages, math.sqrt(p.s_pages * p.fudge))
        )


# ---------------------------------------------------------------------------
# Sort-merge (Section 3.4)
# ---------------------------------------------------------------------------

def sort_merge_cost(workload: JoinWorkload) -> float:
    """Cost of the classic sort-merge join.

    Phase 1 pushes every tuple through a priority queue of the ``{M}``
    tuples that fit in memory, yielding runs of ``2*|M|/F`` pages (Knuth's
    replacement selection); phase 2 merges all runs at once through a
    selection tree whose depth is log2 of the run count.

    When ``|M| >= (|R|+|S|)*F`` both relations fit and the algorithm
    degenerates to two in-memory sorts plus a merge -- no intermediate IO.
    This is why the paper notes sort-merge "will improve to approximately
    900 seconds" above a memory ratio of 1.0.
    """
    _validate_two_pass(workload)
    p = workload.params
    m = workload.memory_pages

    if m >= (p.r_pages + p.s_pages) * p.fudge:
        # Fully in-memory: sort each relation with a priority queue sized to
        # the whole relation, then merge -- the "approximately 900 seconds"
        # plateau the paper describes above a memory ratio of 1.0.
        sort_cpu = (
            p.r_tuples * math.log2(max(2, p.r_tuples))
            + p.s_tuples * math.log2(max(2, p.s_tuples))
        ) * (p.comp + p.swap)
        merge_cpu = (p.r_tuples + p.s_tuples) * p.comp
        return sort_cpu + merge_cpu

    # Tuples resident in the priority queue while forming runs.
    queue_tuples_r = max(2.0, m / p.fudge * p.r_tuples_per_page)
    queue_tuples_s = max(2.0, m / p.fudge * p.s_tuples_per_page)

    run_formation = (
        p.r_tuples * math.log2(queue_tuples_r)
        + p.s_tuples * math.log2(queue_tuples_s)
    ) * (p.comp + p.swap)

    runs_r = max(1.0, p.r_pages * p.fudge / (2.0 * m))
    runs_s = max(1.0, p.s_pages * p.fudge / (2.0 * m))
    total_runs = runs_r + runs_s

    write_runs = (p.r_pages + p.s_pages) * p.io_seq
    # Merging many runs alternates between them, so the rereads are random;
    # with one run per relation the two streams read back sequentially.
    read_io = p.io_rand if total_runs > 2 else p.io_seq
    read_runs = (p.r_pages + p.s_pages) * read_io

    merge_inserts = (
        (p.r_tuples + p.s_tuples)
        * math.log2(max(2.0, total_runs))
        * (p.comp + p.swap)
    )

    join_scan = (p.r_tuples + p.s_tuples) * p.comp
    return run_formation + write_runs + read_runs + merge_inserts + join_scan


# ---------------------------------------------------------------------------
# Simple hash (Section 3.5)
# ---------------------------------------------------------------------------

def simple_hash_passes(workload: JoinWorkload) -> int:
    """Number of passes ``A = ceil(|R| * F / |M|)``."""
    p = workload.params
    return max(1, math.ceil(p.r_pages * p.fudge / workload.memory_pages))


def simple_hash_cost(workload: JoinWorkload) -> float:
    """Cost of the multipass simple-hash join.

    Each pass pins a ``|M|``-page slice of R's hash table in memory and
    scans whatever is left of S against it; tuples outside the pass's hash
    range are *passed over* -- rehashed, rewritten, and reread on every
    later pass.  The quadratic passed-over volume is what makes the simple
    hash curve blow up as memory shrinks in Figure 1.
    """
    p = workload.params
    passes = simple_hash_passes(workload)
    # Fraction of R (by tuples) consumed per pass.
    per_pass = min(1.0, workload.memory_pages / (p.r_pages * p.fudge))

    cost = p.r_tuples * (p.hash + p.move)          # build hash table slices
    cost += p.s_tuples * (p.hash + p.comp * p.fudge)  # probe every S tuple once

    passed_r_tuples = 0.0
    passed_s_tuples = 0.0
    for i in range(1, passes):
        remaining = max(0.0, 1.0 - i * per_pass)
        passed_r_tuples += p.r_tuples * remaining
        passed_s_tuples += p.s_tuples * remaining

    cost += passed_r_tuples * (p.hash + p.move)
    cost += passed_s_tuples * (p.hash + p.move)

    passed_r_pages = passed_r_tuples / p.r_tuples_per_page
    passed_s_pages = passed_s_tuples / p.s_tuples_per_page
    cost += (passed_r_pages + passed_s_pages) * 2.0 * p.io_seq  # write + reread
    return cost


# ---------------------------------------------------------------------------
# GRACE hash (Section 3.6)
# ---------------------------------------------------------------------------

def grace_hash_cost(workload: JoinWorkload) -> float:
    """Cost of the GRACE hash join (software phase 2, as in the paper).

    Phase 1 partitions both relations into buckets small enough that each
    R-bucket's hash table fits in memory, staging them through one output
    buffer page per bucket (random writes).  Phase 2 reads each pair of
    buckets back sequentially, builds a hash table for the R-bucket, and
    probes with the S-bucket.  The cost is independent of ``|M|`` above the
    two-pass floor -- GRACE always pays the full partitioning pass, which is
    exactly why hybrid hash dominates it on the right of Figure 1.
    """
    _validate_two_pass(workload)
    p = workload.params
    cost = (p.r_tuples + p.s_tuples) * p.hash            # partition hash
    cost += (p.r_tuples + p.s_tuples) * p.move           # into output buffers
    cost += (p.r_pages + p.s_pages) * p.io_rand          # flush buckets
    cost += (p.r_pages + p.s_pages) * p.io_seq           # reread buckets
    cost += (p.r_tuples + p.s_tuples) * p.hash           # phase-2 hash
    cost += p.r_tuples * p.move                          # build hash tables
    cost += p.s_tuples * p.fudge * p.comp                # probe
    return cost


# ---------------------------------------------------------------------------
# Hybrid hash (Section 3.7)
# ---------------------------------------------------------------------------

def hybrid_partition_plan(workload: JoinWorkload) -> Tuple[int, float]:
    """Choose the hybrid-hash partition count B and resident fraction q.

    Memory holds B output-buffer pages plus a hash table for the resident
    bucket R0, so ``|R0| = (|M| - B) / F`` pages.  The B spilled buckets
    must each satisfy ``|Ri| * F <= |M|``, which gives the minimal

        B = ceil((|R|*F - |M|) / (|M| - 1))

    and ``q = |R0| / |R|``.  ``B == 0`` (q = 1) when R's hash table fits
    outright.
    """
    p = workload.params
    m = workload.memory_pages
    table_pages = p.r_pages * p.fudge
    if table_pages <= m:
        return 0, 1.0
    if m < 2:
        raise ConfigurationError("hybrid hash needs at least 2 pages of memory")
    b = math.ceil((table_pages - m) / (m - 1))
    q = max(0.0, (m - b) / table_pages)
    return b, q


def hybrid_hash_cost(workload: JoinWorkload) -> float:
    """Cost of the hybrid hash join.

    Like GRACE, but bucket R0 never touches disk: its hash table is built
    *during* partitioning, and S0 probes it on the fly.  Only the ``1-q``
    fraction of both relations pays the partitioning IO and the second hash.

    Following the paper's note on Figure 1: with a single output buffer
    (``B == 1``, memory ratio above 0.5) the spill writes are sequential, so
    ``IOrand`` is replaced by ``IOseq`` -- the source of the abrupt
    discontinuity at 0.5 on the x-axis.
    """
    _validate_two_pass(workload)
    p = workload.params
    b, q = hybrid_partition_plan(workload)
    spill = 1.0 - q

    write_io = p.io_seq if b <= 1 else p.io_rand

    cost = (p.r_tuples + p.s_tuples) * p.hash              # partition hash
    cost += (p.r_tuples + p.s_tuples) * spill * p.move     # to output buffers
    cost += (p.r_pages + p.s_pages) * spill * write_io     # flush spilled
    cost += (p.r_tuples + p.s_tuples) * spill * p.hash     # phase-2 hash
    cost += p.s_tuples * p.fudge * p.comp                  # probe all of S
    cost += p.r_tuples * p.move                            # R into hash tables
    cost += (p.r_pages + p.s_pages) * spill * p.io_seq     # reread spilled
    return cost


def hash_pipeline_forecast(
    workload: JoinWorkload,
    hot_fraction: float = 0.0,
    adaptive: bool = True,
) -> Dict[str, float]:
    """Term-by-term forecast of the vectorized hybrid-hash pipeline.

    Decomposes :func:`hybrid_hash_cost` into named build / probe / spill
    terms and adds a skew term: ``hot_fraction`` of the *spilled* tuples
    land in buckets whose phase-2 hash table would overflow the grant.

    * **Static** recursion repartitions the hot slice in phase 2: both R
      and S pay an extra write/read round trip plus a re-hash and a move
      per hot tuple.
    * **Adaptive** re-split (``adaptive=True``) pays the same R-side work
      between phases 1a and 1b, but S's hot tuples are *routed* straight
      to the sub-buckets -- one extra hash each, no extra IO and no extra
      move.  The saved S round trip is the measured E24 gap.

    Returns ``{"partition", "spill", "build", "probe", "resplit",
    "total"}`` in seconds.  With ``hot_fraction == 0`` the total equals
    :func:`hybrid_hash_cost` exactly, so the forecast degrades to the
    paper's closed form on uniform data.
    """
    _validate_two_pass(workload)
    if not 0.0 <= hot_fraction <= 1.0:
        raise ConfigurationError("hot_fraction must be within [0, 1]")
    p = workload.params
    b, q = hybrid_partition_plan(workload)
    spill_frac = 1.0 - q
    write_io = p.io_seq if b <= 1 else p.io_rand

    partition = (p.r_tuples + p.s_tuples) * p.hash
    spill = (
        (p.r_tuples + p.s_tuples) * spill_frac * p.move
        + (p.r_pages + p.s_pages) * spill_frac * write_io
        + (p.r_pages + p.s_pages) * spill_frac * p.io_seq
        + (p.r_tuples + p.s_tuples) * spill_frac * p.hash
    )
    build = p.r_tuples * p.move
    probe = p.s_tuples * p.fudge * p.comp

    r_hot_tuples = p.r_tuples * spill_frac * hot_fraction
    s_hot_tuples = p.s_tuples * spill_frac * hot_fraction
    r_hot_pages = p.r_pages * spill_frac * hot_fraction
    s_hot_pages = p.s_pages * spill_frac * hot_fraction
    round_trip = 2.0 * p.io_seq  # rewrite the slice, read it back
    resplit = r_hot_tuples * (p.hash + p.move) + r_hot_pages * round_trip
    if adaptive:
        resplit += s_hot_tuples * p.hash
    else:
        resplit += s_hot_tuples * (p.hash + p.move) + s_hot_pages * round_trip

    total = partition + spill + build + probe + resplit
    return {
        "partition": partition,
        "spill": spill,
        "build": build,
        "probe": probe,
        "resplit": resplit,
        "total": total,
    }


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------

ALGORITHMS: Dict[str, Callable[[JoinWorkload], float]] = {
    "sort-merge": sort_merge_cost,
    "simple-hash": simple_hash_cost,
    "grace-hash": grace_hash_cost,
    "hybrid-hash": hybrid_hash_cost,
}


@dataclass(frozen=True)
class JoinCostModel:
    """Convenience wrapper evaluating all four algorithms on one instance."""

    params: CostParameters

    def workload(self, memory_pages: int) -> JoinWorkload:
        return JoinWorkload(params=self.params, memory_pages=memory_pages)

    def validate_memory(self, memory_pages: int) -> None:
        _validate_two_pass(self.workload(memory_pages))

    def costs(self, memory_pages: int) -> Dict[str, float]:
        """Seconds for each algorithm at ``memory_pages`` of memory."""
        w = self.workload(memory_pages)
        return {name: fn(w) for name, fn in ALGORITHMS.items()}

    def best(self, memory_pages: int) -> str:
        """Name of the cheapest algorithm at this memory grant."""
        costs = self.costs(memory_pages)
        return min(costs, key=costs.get)


def figure1_series(
    params: CostParameters,
    ratios: Sequence[float] = (),
    points: int = 40,
) -> List[Dict[str, float]]:
    """Regenerate Figure 1: cost of each algorithm vs ``|M| / (|R|*F)``.

    Sweeps the x-axis from the two-pass floor ``sqrt(|S|*F) / (|R|*F)`` up
    to 1.0 (where all of R's hash table is resident).  Each row carries the
    ratio, the memory grant in pages, and the four modelled costs.
    """
    model = JoinCostModel(params)
    if not ratios:
        floor = params.minimum_memory_pages / (params.r_pages * params.fudge)
        lo, hi = math.log10(floor), 0.0
        ratios = [10 ** (lo + (hi - lo) * i / (points - 1)) for i in range(points)]
    rows: List[Dict[str, float]] = []
    for ratio in ratios:
        memory = params.memory_for_ratio(ratio)
        memory = max(memory, params.minimum_memory_pages)
        row: Dict[str, float] = {
            "ratio": ratio,
            "memory_pages": float(memory),
        }
        row.update(model.costs(memory))
        rows.append(row)
    return rows


__all__ = [
    "ALGORITHMS",
    "JoinCostModel",
    "JoinWorkload",
    "figure1_series",
    "grace_hash_cost",
    "hash_pipeline_forecast",
    "hybrid_hash_cost",
    "hybrid_partition_plan",
    "simple_hash_cost",
    "simple_hash_passes",
    "sort_merge_cost",
]
