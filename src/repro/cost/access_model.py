"""Section 2: analytic cost model for AVL trees vs B+-trees.

The paper compares the two access methods for a keyed relation R that is
*partially* memory resident.  Both structures need ``~log2(||R||)`` key
comparisons per lookup; they differ in how many *pages* those comparisons
touch.  Every AVL node lands on its own page, so with ``|M|`` buffer pages,
random replacement, and ``S`` total structure pages, a lookup faults

    C * (1 - |M| / S)

times, whereas a B+-tree only faults once per level:

    (height + 1) * (1 - |M| / S')

The paper's figure of merit is ``cost = Z * |page reads| + |comparisons|``
with ``Z`` in 10..30 (a page read costs ~2000 instructions + 30 ms, a
comparison ~200 instructions), and a discount ``Y <= 1`` on AVL comparisons
(AVL nodes need no within-page search).  Table 1 reports the minimum
memory-resident fraction ``H = |M| / S`` at which the AVL tree wins; this
module regenerates that table from inequality (1) and the analogous
sequential-access inequality (2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AccessMethodParameters:
    """Structural parameters of Section 2 (the paper's R / K / L / p / ptr).

    * ``n_tuples``      -- ``||R||``, tuples in the relation.
    * ``key_bytes``     -- ``K``, key width.
    * ``tuple_bytes``   -- ``L``, tuple width.
    * ``page_bytes``    -- ``p``, page size.
    * ``pointer_bytes`` -- pointer width.
    * ``z``             -- ``Z``, cost of a page read in comparison units.
    * ``y``             -- ``Y``, AVL-comparison discount (``Y <= 1``).
    * ``btree_fill``    -- B-tree node occupancy; Yao's 69% by default.
    """

    n_tuples: int = 1_000_000
    key_bytes: int = 8
    tuple_bytes: int = 100
    page_bytes: int = 4096
    pointer_bytes: int = 4
    z: float = 20.0
    y: float = 0.75
    btree_fill: float = 0.69

    def __post_init__(self) -> None:
        if self.n_tuples < 1:
            raise ConfigurationError("relation must contain at least one tuple")
        if self.tuple_bytes < self.key_bytes:
            raise ConfigurationError("tuple width must be at least the key width")
        if not 0 < self.btree_fill <= 1:
            raise ConfigurationError("btree fill factor must be in (0, 1]")
        if self.y <= 0 or self.y > 1:
            raise ConfigurationError("Y must be in (0, 1] -- AVL comparisons are "
                             "at most as expensive as B+-tree comparisons")
        if self.z <= 0:
            raise ConfigurationError("Z must be positive")
        if self.page_bytes < self.tuple_bytes:
            raise ConfigurationError("a tuple must fit on one page")


# ---------------------------------------------------------------------------
# AVL tree model
# ---------------------------------------------------------------------------

def avl_comparisons(params: AccessMethodParameters) -> float:
    """Expected comparisons per random lookup: ``log2(||R||) + 0.25``.

    Knuth's average search depth in an AVL tree of ``||R||`` nodes.
    """
    return math.log2(params.n_tuples) + 0.25


def avl_storage_pages(params: AccessMethodParameters) -> int:
    """``S`` -- pages occupied by the AVL structure.

    Each node stores one tuple plus two child pointers:
    ``ceil(||R|| * (L + 2 * ptr) / p)``.
    """
    node_bytes = params.tuple_bytes + 2 * params.pointer_bytes
    return math.ceil(params.n_tuples * node_bytes / params.page_bytes)


def avl_random_cost(params: AccessMethodParameters, memory_pages: float) -> float:
    """Cost of one random lookup in a partially resident AVL tree.

    ``Z * C * (1 - |M|/S) + Y * C`` with the fault term clamped at zero once
    the whole structure is resident.
    """
    c = avl_comparisons(params)
    s = avl_storage_pages(params)
    resident = min(1.0, memory_pages / s)
    faults = c * (1.0 - resident)
    return params.z * faults + params.y * c


def avl_sequential_cost(
    params: AccessMethodParameters, memory_pages: float, n_records: int
) -> float:
    """Cost of reading ``n_records`` in key order from an AVL tree.

    Successive records live on unrelated pages (the tree has no page
    structure), so each of the N node visits faults with probability
    ``1 - |M|/S``; every visit is charged one discounted comparison.
    """
    s = avl_storage_pages(params)
    resident = min(1.0, memory_pages / s)
    faults = n_records * (1.0 - resident)
    return params.z * faults + params.y * n_records


# ---------------------------------------------------------------------------
# B+-tree model
# ---------------------------------------------------------------------------

def btree_fanout(params: AccessMethodParameters) -> int:
    """Average fanout ``0.69 * p / (K + ptr)`` (Yao's 69% occupancy)."""
    fanout = int(
        params.btree_fill * params.page_bytes
        / (params.key_bytes + params.pointer_bytes)
    )
    if fanout < 2:
        raise ConfigurationError("page too small for a B+-tree index node")
    return fanout


def btree_leaf_pages(params: AccessMethodParameters) -> int:
    """Leaf count ``ceil(||R|| * L / (0.69 * p))`` at 69% occupancy."""
    return math.ceil(
        params.n_tuples * params.tuple_bytes
        / (params.btree_fill * params.page_bytes)
    )


def btree_height(params: AccessMethodParameters) -> int:
    """Index height ``ceil(log_D(leaves))`` above the leaf level."""
    leaves = btree_leaf_pages(params)
    if leaves <= 1:
        return 0
    return math.ceil(math.log(leaves) / math.log(btree_fanout(params)))


def btree_comparisons(params: AccessMethodParameters) -> float:
    """Binary search across the whole tree: ``ceil(log2(||R||))``."""
    return math.ceil(math.log2(params.n_tuples))


def btree_storage_pages(params: AccessMethodParameters) -> int:
    """``S'`` -- total pages: leaves plus the geometric index overhead."""
    leaves = btree_leaf_pages(params)
    fanout = btree_fanout(params)
    total = leaves
    level = leaves
    while level > 1:
        level = math.ceil(level / fanout)
        total += level
    return total


def btree_random_cost(params: AccessMethodParameters, memory_pages: float) -> float:
    """``Z * (height+1) * (1 - |M|/S') + C'`` for one random lookup."""
    s_prime = btree_storage_pages(params)
    resident = min(1.0, memory_pages / s_prime)
    levels = btree_height(params) + 1
    faults = levels * (1.0 - resident)
    return params.z * faults + btree_comparisons(params)


def btree_sequential_cost(
    params: AccessMethodParameters, memory_pages: float, n_records: int
) -> float:
    """Cost of reading ``n_records`` off the sequence set.

    Leaves pack ``0.69 * p / L`` records each, so N records touch
    ``N * L / (0.69 * p)`` pages; each record costs one comparison to
    deliver.
    """
    s_prime = btree_storage_pages(params)
    resident = min(1.0, memory_pages / s_prime)
    records_per_leaf = params.btree_fill * params.page_bytes / params.tuple_bytes
    pages_touched = n_records / records_per_leaf
    faults = pages_touched * (1.0 - resident)
    return params.z * faults + n_records


# ---------------------------------------------------------------------------
# Breakeven analysis (inequality (1) and (2), Table 1)
# ---------------------------------------------------------------------------

def random_breakeven_fraction(params: AccessMethodParameters) -> Optional[float]:
    """Minimum ``H = |M|/S`` at which the AVL tree wins random lookups.

    Both structures are offered the *same* absolute memory ``|M|``; the cost
    difference is linear in ``|M|``, so the crossover solves in closed form.
    Returns ``None`` when the AVL tree loses even when fully resident, and
    ``0.0`` when it wins with no memory at all (never the case for the
    parameter ranges the paper considers).
    """
    c_avl = avl_comparisons(params)
    c_bt = btree_comparisons(params)
    s = avl_storage_pages(params)
    s_prime = btree_storage_pages(params)
    levels = btree_height(params) + 1

    # DIFF(M) = cost_btree(M) - cost_avl(M); AVL preferred when DIFF >= 0.
    diff_at_zero = (params.z * levels + c_bt) - (params.z * c_avl + params.y * c_avl)
    slope = params.z * (c_avl / s - levels / s_prime)
    if slope <= 0:
        # AVL never catches up with added memory; it wins iff it already
        # wins with zero memory.
        return 0.0 if diff_at_zero >= 0 else None
    if diff_at_zero >= 0:
        return 0.0
    m_star = -diff_at_zero / slope
    h_star = m_star / s
    if h_star > 1.0:
        # Crossover would require more memory than the AVL structure
        # occupies -- check whether full residence is enough (the B+-tree,
        # being larger, still faults there).
        full = (params.z * levels * (1.0 - s / s_prime) + c_bt) - params.y * c_avl
        return 1.0 if full >= 0 else None
    return h_star


def sequential_breakeven_fraction(params: AccessMethodParameters) -> Optional[float]:
    """Minimum ``H = |M|/S`` at which the AVL tree wins a sequential scan.

    Per-record costs (inequality (2) of the paper): the AVL tree pays a
    potential fault *per record*, the B+-tree one fault per
    ``0.69 * p / L`` records.  Linear in ``|M|`` again.
    """
    s = avl_storage_pages(params)
    s_prime = btree_storage_pages(params)
    records_per_leaf = params.btree_fill * params.page_bytes / params.tuple_bytes

    # Per-record DIFF(M) = btree - avl.
    diff_at_zero = (params.z / records_per_leaf + 1.0) - (params.z + params.y)
    slope = params.z * (1.0 / s - 1.0 / (records_per_leaf * s_prime))
    if slope <= 0:
        return 0.0 if diff_at_zero >= 0 else None
    if diff_at_zero >= 0:
        return 0.0
    m_star = -diff_at_zero / slope
    h_star = m_star / s
    if h_star > 1.0:
        full = (
            params.z / records_per_leaf * (1.0 - s / s_prime) + 1.0
        ) - params.y
        return 1.0 if full >= 0 else None
    return h_star


def table1(
    z_values: Sequence[float] = (10.0, 20.0, 30.0),
    y_values: Sequence[float] = (0.5, 0.75, 0.9, 1.0),
    base: Optional[AccessMethodParameters] = None,
) -> List[Dict[str, float]]:
    """Regenerate the paper's Table 1 over a (Z, Y) grid.

    For each setting, report the minimum memory-resident fraction at which
    the AVL tree beats the B+-tree for random and for sequential access.
    The paper's headline -- AVL needs 80-90%+ residence -- is checked by the
    Table 1 benchmark.
    """
    base = base or AccessMethodParameters()
    rows: List[Dict[str, float]] = []
    for z in z_values:
        for y in y_values:
            params = AccessMethodParameters(
                n_tuples=base.n_tuples,
                key_bytes=base.key_bytes,
                tuple_bytes=base.tuple_bytes,
                page_bytes=base.page_bytes,
                pointer_bytes=base.pointer_bytes,
                z=z,
                y=y,
                btree_fill=base.btree_fill,
            )
            random_h = random_breakeven_fraction(params)
            seq_h = sequential_breakeven_fraction(params)
            rows.append(
                {
                    "Z": z,
                    "Y": y,
                    "random_H": float("nan") if random_h is None else random_h,
                    "sequential_H": float("nan") if seq_h is None else seq_h,
                }
            )
    return rows


__all__ = [
    "AccessMethodParameters",
    "avl_comparisons",
    "avl_random_cost",
    "avl_sequential_cost",
    "avl_storage_pages",
    "btree_comparisons",
    "btree_fanout",
    "btree_height",
    "btree_leaf_pages",
    "btree_random_cost",
    "btree_sequential_cost",
    "btree_storage_pages",
    "random_breakeven_fraction",
    "sequential_breakeven_fraction",
    "table1",
]
