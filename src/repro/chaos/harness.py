"""Crash-point sweeps: enumerate or sample every way the system can die.

The scenario is the Section 5 recovery stack end to end -- banking
transactions through the lock table, a commit policy, a partitioned log,
the fuzzy checkpointer -- driven deterministically by the discrete-event
queue.  A **profiling run** (no faults) counts the scenario's schedulable
points; the **exhaustive sweep** then re-runs the scenario once per point
with a clean crash injected exactly there, and the **seeded sweep** draws
whole fault schedules (crash point + write delays + torn pages + dropped
checkpoint installs) from single integer seeds.  After every crash the
:class:`~repro.chaos.invariants.InvariantChecker` recovers and verifies
the contract, including the dict-backed differential oracle.

Every failure is reported as a replayable key: the crash-point index for
exhaustive mode, the schedule seed for sampled mode.  ``pytest
tests/chaos --chaos-seed <n>`` replays one schedule under the debugger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.chaos.injector import CrashSignal, FaultInjector
from repro.chaos.invariants import (
    InvariantChecker,
    InvariantReport,
    InvariantViolation,
)
from repro.recovery.checkpoint import Checkpointer
from repro.recovery.log_manager import CommitPolicy, LogManager
from repro.recovery.restart import CrashState, crash
from repro.recovery.stable_memory import StableMemory
from repro.recovery.state import DatabaseState, DiskSnapshot
from repro.recovery.transactions import TransactionEngine, TransactionState
from repro.sim.clock import SimulatedClock
from repro.sim.events import EventQueue
from repro.workload.banking import BankingWorkload
from repro.errors import StateError


@dataclass(frozen=True)
class ScenarioConfig:
    """One deterministic recovery scenario (workload + stack shape)."""

    n_accounts: int = 40
    records_per_page: int = 8
    initial_balance: int = 100
    n_transactions: int = 20
    arrival: float = 0.002
    policy: CommitPolicy = CommitPolicy.GROUP
    devices: int = 1
    checkpoint_interval: float = 0.05
    transfer_fraction: float = 0.7
    deposit_fraction: float = 0.2
    workload_seed: int = 1984
    stable_capacity: int = 1 << 20
    #: Slack after the last arrival before the first forced flush.
    settle: float = 0.2

    def describe(self) -> str:
        return (
            "%s x%d dev, %d txns over %d accounts (seed %d)"
            % (
                self.policy.value,
                self.devices,
                self.n_transactions,
                self.n_accounts,
                self.workload_seed,
            )
        )


@dataclass
class ScenarioRun:
    """A live (possibly crashed) instance of the scenario."""

    config: ScenarioConfig
    injector: FaultInjector
    queue: EventQueue
    state: DatabaseState
    log_manager: LogManager
    engine: TransactionEngine
    checkpointer: Checkpointer
    scripts_by_tid: Dict[int, Sequence[Tuple]]
    deposit_by_tid: Dict[int, int]
    crashed: bool = False
    crash_signal: Optional[CrashSignal] = None

    @property
    def acked_tids(self) -> Set[int]:
        """Transactions whose commit was acknowledged before the crash."""
        return {t.tid for t in self.engine.committed}

    @property
    def active_tids(self) -> Set[int]:
        """Transactions still running (neither pre-committed nor aborted)."""
        return {
            tid
            for tid, t in self.engine.transactions.items()
            if t.state in (TransactionState.ACTIVE, TransactionState.WAITING)
        }


@dataclass
class ChaosFailure:
    """One invariant violation, keyed for exact replay."""

    mode: str          # "exhaustive" or "seeded"
    key: int           # crash-point index or schedule seed
    invariant: str
    detail: str
    plan: str
    trace: List[str] = field(default_factory=list)

    def replay_hint(self) -> str:
        if self.mode == "seeded":
            return (
                "replay: pytest tests/chaos --chaos-seed %d  (plan: %s)"
                % (self.key, self.plan)
            )
        return (
            "replay: run_scenario(config, FaultInjector.crash_at(%d))"
            % self.key
        )

    def __str__(self) -> str:
        return "[%s %s] %s -- %s | %s" % (
            self.mode,
            self.key,
            self.invariant,
            self.detail,
            self.replay_hint(),
        )


@dataclass
class SweepReport:
    """Aggregate result of a sweep."""

    config: ScenarioConfig
    mode: str
    total_points: int
    runs: int = 0
    crashes: int = 0
    invariants_checked: int = 0
    pages_torn: int = 0
    delays_injected: int = 0
    checkpoint_writes_dropped: int = 0
    failures: List[ChaosFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            "chaos sweep [%s] over %s" % (self.mode, self.config.describe()),
            "  %d runs, %d crashes, %d schedulable points, %d invariant "
            "checks" % (self.runs, self.crashes, self.total_points,
                        self.invariants_checked),
            "  faults: %d delayed writes, %d torn pages, %d dropped "
            "checkpoint installs" % (self.delays_injected, self.pages_torn,
                                     self.checkpoint_writes_dropped),
        ]
        if self.failures:
            lines.append("  FAILURES (%d):" % len(self.failures))
            lines.extend("    %s" % f for f in self.failures)
        else:
            lines.append("  all invariants held")
        return "\n".join(lines)


# -- scenario construction and driving ---------------------------------------------


def build_scenario(config: ScenarioConfig, injector: FaultInjector) -> ScenarioRun:
    """Construct the full stack with the injector wired into every seam."""
    queue = EventQueue(SimulatedClock())
    state = DatabaseState(
        config.n_accounts,
        config.records_per_page,
        initial_value=config.initial_balance,
    )
    stable = (
        StableMemory(config.stable_capacity)
        if config.policy is CommitPolicy.STABLE
        else None
    )
    log_manager = LogManager(
        queue, policy=config.policy, devices=config.devices, stable=stable
    )
    engine = TransactionEngine(state, queue, log_manager)
    checkpointer = Checkpointer(
        engine, DiskSnapshot(), interval=config.checkpoint_interval
    )
    injector.attach(queue=queue, log_manager=log_manager, checkpointer=checkpointer)

    bank = BankingWorkload(
        config.n_accounts,
        initial_balance=config.initial_balance,
        transfer_fraction=config.transfer_fraction,
        deposit_fraction=config.deposit_fraction,
        seed=config.workload_seed,
    )
    scripts = [bank.next_script() for _ in range(config.n_transactions)]
    # Submission order is deterministic (strictly increasing arrival
    # times), so the i-th script always becomes tid i+1.
    scripts_by_tid = {i + 1: script for i, (script, _) in enumerate(scripts)}
    deposit_by_tid = {i + 1: amount for i, (_, amount) in enumerate(scripts)}

    return ScenarioRun(
        config=config,
        injector=injector,
        queue=queue,
        state=state,
        log_manager=log_manager,
        engine=engine,
        checkpointer=checkpointer,
        scripts_by_tid=scripts_by_tid,
        deposit_by_tid=deposit_by_tid,
    )


def run_scenario(config: ScenarioConfig, injector: FaultInjector) -> ScenarioRun:
    """Drive the scenario to completion or to its injected crash."""
    run = build_scenario(config, injector)
    try:
        run.checkpointer.start()
        for i, tid in enumerate(sorted(run.scripts_by_tid)):
            run.engine.submit_at(i * config.arrival, run.scripts_by_tid[tid])
        settle = config.n_transactions * config.arrival + config.settle
        run.queue.run_until(settle)
        # Two flush rounds: the first seals open commit groups, the second
        # catches pages sealed by completions of the first.
        run.log_manager.flush()
        run.queue.run_until(settle + 0.5)
        run.log_manager.flush()
        run.queue.run_until(settle + 1.0)
    except CrashSignal as signal:
        run.crashed = True
        run.crash_signal = signal
    return run


def profile_points(config: ScenarioConfig) -> int:
    """Count the scenario's schedulable points with a fault-free run."""
    run = run_scenario(config, FaultInjector.counting())
    if run.crashed:
        raise StateError("profiling run crashed without a fault plan")
    laggards = [
        tid
        for tid, t in run.engine.transactions.items()
        if t.state
        not in (TransactionState.COMMITTED, TransactionState.ABORTED)
    ]
    if laggards:
        raise StateError(
            "profiling run left transactions unresolved: %s -- raise "
            "ScenarioConfig.settle" % laggards
        )
    return run.injector.points


def capture(run: ScenarioRun) -> CrashState:
    """Freeze the durable state, merging any torn-page survivors."""
    crash_state = crash(run.engine, run.checkpointer)
    torn = run.injector.torn_records(run.log_manager)
    if torn:
        by_lsn = {r.lsn: r for r in crash_state.durable_log}
        for record in torn:
            by_lsn.setdefault(record.lsn, record)
        crash_state.durable_log = [by_lsn[lsn] for lsn in sorted(by_lsn)]
    return crash_state


def check_run(
    run: ScenarioRun, redo_workers: Optional[int] = None
) -> InvariantReport:
    """Capture, recover, and verify one crashed (or settled) run.

    ``redo_workers`` additionally verifies the parallel partitioned-log
    recovery path against the serial one on the same crash state."""
    checker = InvariantChecker(
        initial_value=run.config.initial_balance,
        scripts_by_tid=run.scripts_by_tid,
        deposit_by_tid=run.deposit_by_tid,
        redo_workers=redo_workers,
    )
    return checker.check(capture(run), run.acked_tids, run.active_tids)


# -- sweeps -------------------------------------------------------------------------


def exhaustive_sweep(
    config: ScenarioConfig,
    stride: int = 1,
    points: Optional[int] = None,
    redo_workers: Optional[int] = None,
) -> SweepReport:
    """Crash at every ``stride``-th schedulable point and verify.

    ``points`` skips the profiling run when the caller already knows the
    count (the benchmark reuses it across configurations).
    ``redo_workers`` additionally checks parallel-redo equivalence on
    every crash state (one extra invariant per verified run).
    """
    if points is None:
        points = profile_points(config)
    report = SweepReport(config=config, mode="exhaustive", total_points=points)
    for target in range(0, points, stride):
        injector = FaultInjector.crash_at(target)
        run = run_scenario(config, injector)
        report.runs += 1
        if not run.crashed:
            report.failures.append(
                ChaosFailure(
                    mode="exhaustive",
                    key=target,
                    invariant="determinism",
                    detail="crash point %d < profiled %d never fired"
                    % (target, points),
                    plan=injector.plan.describe(),
                    trace=list(injector.trace),
                )
            )
            continue
        report.crashes += 1
        _verify(report, run, "exhaustive", target, redo_workers)
    return report


def seeded_sweep(
    config: ScenarioConfig,
    seeds: Iterable[int],
    redo_workers: Optional[int] = None,
) -> SweepReport:
    """Run one full fault schedule per seed and verify each crash."""
    points = profile_points(config)
    report = SweepReport(config=config, mode="seeded", total_points=points)
    for seed in seeds:
        injector = FaultInjector.seeded(seed, points)
        run = run_scenario(config, injector)
        report.runs += 1
        if run.crashed:
            report.crashes += 1
        # A schedule whose crash point lies beyond the actual run still
        # verifies recovery of the settled end state -- a crash on an
        # idle, fully-durable system must be a no-op.
        _verify(report, run, "seeded", seed, redo_workers)
        report.pages_torn += injector.pages_torn
        report.delays_injected += injector.delays_injected
        report.checkpoint_writes_dropped += injector.checkpoint_writes_dropped
    return report


def replay_seed(config: ScenarioConfig, seed: int) -> InvariantReport:
    """Re-run one seeded schedule; raises on any violation (debug entry)."""
    points = profile_points(config)
    run = run_scenario(config, FaultInjector.seeded(seed, points))
    return check_run(run)


def _verify(
    report: SweepReport,
    run: ScenarioRun,
    mode: str,
    key: int,
    redo_workers: Optional[int] = None,
) -> None:
    try:
        result = check_run(run, redo_workers=redo_workers)
        report.invariants_checked += result.invariants_checked
    except InvariantViolation as violation:
        report.failures.append(
            ChaosFailure(
                mode=mode,
                key=key,
                invariant=violation.invariant,
                detail=violation.detail,
                plan=run.injector.plan.describe(),
                trace=list(run.injector.trace),
            )
        )


__all__ = [
    "ChaosFailure",
    "ScenarioConfig",
    "ScenarioRun",
    "SweepReport",
    "build_scenario",
    "capture",
    "check_run",
    "exhaustive_sweep",
    "profile_points",
    "replay_seed",
    "run_scenario",
    "seeded_sweep",
]
