"""Seeded chaos sweeps over the governed query executor.

The recovery sweeps (:mod:`repro.chaos.harness`) attack the durability
stack; this module attacks the *query* stack with the governor's three
fault seams (docs/ROBUSTNESS.md):

* **cancel** -- the running query's token is cancelled at an exact page
  boundary (``FaultPlan.cancel_at_page``);
* **revoke** -- the running query's memory grant is revoked down to a few
  pages at an exact page boundary, forcing hybrid hash to demote its
  resident partition toward pure GRACE;
* **worker faults** -- exact parallel bucket jobs are killed, hung, or
  garbled (``FaultPlan.worker_faults``), forcing the coordinator's
  timeout/sentinel detection and serial retry.

The contract checked after each seeded run is the
:class:`~repro.chaos.invariants.DegradedRunOracle`: every query either
returns rows identical to the undisturbed run or raises a typed governor
error, and when no cancellation or revocation actually fired the
operation counters must match the undisturbed run exactly (worker faults
are absorbed by counter-identical serial retries).

Everything derives deterministically from ``(scenario, seed)`` -- a
failing seed replays with ``pytest tests/chaos --chaos-seed N``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.chaos.injector import FaultInjector
from repro.chaos.invariants import DegradedRunOracle, InvariantViolation
from repro.core.database import MainMemoryDatabase
from repro.governor import GovernorConfig
from repro.operators.aggregate import AggregateFunction, AggregateSpec
from repro.operators.selection import Comparison
from repro.planner.query import JoinClause, Query
from repro.storage.tuples import DataType


@dataclass
class ExecutorScenario:
    """A deterministic workload shape for one executor sweep."""

    emp_rows: int = 360
    dept_rows: int = 12
    #: Small enough that the join spills into buckets (hybrid phase 2).
    memory_pages: int = 4
    page_bytes: int = 256
    #: >1 exercises the parallel phase-2 path and its fault handling.
    join_workers: int = 1
    #: Seconds before a killed/hung worker counts as failed.  Worker-kill
    #: seeds pay this once per lost job, so tests keep it small.
    worker_timeout: float = 2.0
    batch: bool = True


def build_database(scenario: ExecutorScenario) -> MainMemoryDatabase:
    """The scenario's database, built identically on every call."""
    db = MainMemoryDatabase(
        memory_pages=scenario.memory_pages,
        page_bytes=scenario.page_bytes,
        batch=scenario.batch,
        join_workers=scenario.join_workers,
        governor=GovernorConfig(worker_timeout=scenario.worker_timeout),
    )
    db.create_table(
        "emp",
        [
            ("emp_id", DataType.INTEGER),
            ("dept", DataType.INTEGER),
            ("salary", DataType.INTEGER),
        ],
    )
    db.create_table(
        "dept", [("dept_id", DataType.INTEGER), ("floor", DataType.INTEGER)]
    )
    # proj is as large as emp, so emp |><| proj has an over-memory build
    # side: hybrid hash spills into buckets and phase 2 actually runs
    # (in parallel when join_workers > 1 -- the worker-fault seam).
    db.create_table(
        "proj", [("proj_id", DataType.INTEGER), ("owner", DataType.INTEGER)]
    )
    for i in range(scenario.emp_rows):
        db.insert("emp", (i, i % scenario.dept_rows, 1000 + (i * 37) % 500))
    for d in range(scenario.dept_rows):
        db.insert("dept", (d, d % 3))
    for p in range(scenario.emp_rows):
        db.insert("proj", (p, (p * 13) % scenario.emp_rows))
    db.analyze()
    return db


def scenario_queries() -> List[Tuple[str, Query]]:
    """The query mix each run executes, in order."""
    return [
        (
            "filter",
            Query(
                tables=["emp"],
                predicates=[("emp", Comparison("salary", ">", 1100))],
            ),
        ),
        (
            "join",
            Query(
                tables=["emp", "dept"],
                joins=[JoinClause("emp", "dept", "dept", "dept_id")],
            ),
        ),
        (
            "spill-join",
            Query(
                tables=["emp", "proj"],
                joins=[JoinClause("emp", "emp_id", "proj", "owner")],
            ),
        ),
        (
            "aggregate",
            Query(
                tables=["emp"],
                group_by=["dept"],
                aggregates=[AggregateSpec(AggregateFunction.SUM, "salary")],
            ),
        ),
    ]


@dataclass
class ExecutorBaseline:
    """The undisturbed run: per-query rows plus the seam geometry."""

    rows: Dict[str, List[Any]]
    counter_snapshot: Any
    #: Token checkpoints the whole run passed -- the cancel/revoke domain.
    exec_pages: int
    #: Parallel bucket jobs the whole run dispatched -- the fault domain.
    worker_jobs: int


def capture_baseline(scenario: ExecutorScenario) -> ExecutorBaseline:
    """Run the workload once with a counting injector attached."""
    injector = FaultInjector.counting()
    db = build_database(scenario).attach_chaos(injector)
    rows: Dict[str, List[Any]] = {}
    for label, query in scenario_queries():
        rows[label] = sorted(db.execute(query), key=repr)
    return ExecutorBaseline(
        rows=rows,
        counter_snapshot=db.counters.snapshot(),
        exec_pages=injector.exec_pages,
        worker_jobs=injector.worker_jobs,
    )


@dataclass
class ExecutorChaosFailure:
    """One oracle violation, replayable from its seed."""

    seed: int
    plan: str
    query: str
    violation: str

    def __str__(self) -> str:
        return "seed %d [%s] query %s: %s" % (
            self.seed,
            self.plan,
            self.query,
            self.violation,
        )


@dataclass
class ExecutorSweepReport:
    """Aggregate outcome of a seeded executor sweep."""

    runs: int = 0
    queries_cancelled: int = 0
    grants_revoked: int = 0
    worker_faults_injected: int = 0
    failures: List[ExecutorChaosFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        return (
            "%d runs: %d cancels, %d revocations, %d worker faults, "
            "%d failures%s"
            % (
                self.runs,
                self.queries_cancelled,
                self.grants_revoked,
                self.worker_faults_injected,
                len(self.failures),
                "".join("\n  " + str(f) for f in self.failures[:10]),
            )
        )


def run_executor_seed(
    scenario: ExecutorScenario,
    baseline: ExecutorBaseline,
    seed: int,
) -> Tuple[FaultInjector, List[ExecutorChaosFailure]]:
    """One seeded disturbed run, checked against the baseline."""
    injector = FaultInjector.seeded_executor(
        seed,
        max_pages=baseline.exec_pages,
        max_jobs=max(1, baseline.worker_jobs),
    )
    db = build_database(scenario).attach_chaos(injector)
    oracle = DegradedRunOracle()
    failures: List[ExecutorChaosFailure] = []
    described = injector.plan.describe()
    for label, query in scenario_queries():
        rows: Optional[List[Any]] = None
        error: Optional[BaseException] = None
        try:
            rows = list(db.execute(query))
        except BaseException as exc:  # the oracle types every failure
            error = exc
        try:
            oracle.check_query(label, baseline.rows[label], rows, error)
        except InvariantViolation as violation:
            failures.append(
                ExecutorChaosFailure(seed, described, label, str(violation))
            )
    try:
        oracle.check_counters(
            baseline.counter_snapshot, db.counters.snapshot(), injector
        )
    except InvariantViolation as violation:
        failures.append(
            ExecutorChaosFailure(seed, described, "<counters>", str(violation))
        )
    return injector, failures


def executor_sweep(
    seeds: Iterable[int],
    scenario: Optional[ExecutorScenario] = None,
) -> ExecutorSweepReport:
    """Verify the degraded-run contract across many seeded schedules."""
    scenario = scenario or ExecutorScenario()
    baseline = capture_baseline(scenario)
    report = ExecutorSweepReport()
    for seed in seeds:
        injector, failures = run_executor_seed(scenario, baseline, seed)
        report.runs += 1
        report.queries_cancelled += injector.queries_cancelled
        report.grants_revoked += injector.grants_revoked
        report.worker_faults_injected += injector.worker_faults_injected
        report.failures.extend(failures)
    return report


__all__ = [
    "ExecutorBaseline",
    "ExecutorChaosFailure",
    "ExecutorScenario",
    "ExecutorSweepReport",
    "build_database",
    "capture_baseline",
    "executor_sweep",
    "run_executor_seed",
    "scenario_queries",
]
