"""The differential oracle: a dict-backed shadow database.

Recovery already has an *internal* oracle
(:func:`repro.recovery.restart.replay_committed`) that replays the durable
log.  That catches redo/undo bugs but shares the log's representation with
the system under test -- a bug that corrupts log records fools both.  The
shadow database is independent of the log entirely: it re-executes the
*workload scripts* of the recovered-committed transactions, in commit-LSN
order (the 2PL serialization order), against a plain dict.  After
recovery, the recovered image must equal the shadow byte-for-byte.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.recovery.state import DatabaseState
from repro.errors import ConfigurationError


class ShadowDatabase:
    """A trivial ``record id -> value`` map executing workload scripts."""

    def __init__(self, n_records: int, initial_value: Any = 0) -> None:
        self.n_records = n_records
        self.initial_value = initial_value
        self.values: Dict[int, Any] = {}

    def read(self, record_id: int) -> Any:
        return self.values.get(record_id, self.initial_value)

    def write(self, record_id: int, value: Any) -> None:
        self.values[record_id] = value

    def apply_script(self, script: Sequence[Tuple]) -> None:
        """Execute one transaction script to completion (shadow
        transactions never block or abort: the shadow only ever sees the
        committed ones, in serialization order)."""
        for op in script:
            kind = op[0]
            if kind == "read":
                self.read(op[1])
            elif kind == "write":
                value = op[2]
                if callable(value):
                    value = value(self.read(op[1]))
                self.write(op[1], value)
            elif kind == "pause":
                continue
            else:
                raise ConfigurationError("unknown operation %r" % (kind,))

    def replay(
        self,
        scripts_by_tid: Dict[int, Sequence[Tuple]],
        commit_order: Iterable[int],
    ) -> "ShadowDatabase":
        """Apply the scripts of ``commit_order`` (commit-LSN order)."""
        for tid in commit_order:
            if tid not in scripts_by_tid:
                raise KeyError(
                    "recovered commit for tid %d, but the workload never "
                    "submitted it -- a phantom transaction" % tid
                )
            self.apply_script(scripts_by_tid[tid])
        return self

    # -- comparison ------------------------------------------------------------

    def as_list(self) -> List[Any]:
        return [self.read(i) for i in range(self.n_records)]

    def total(self) -> Any:
        return sum(self.as_list())

    def diff(self, state: DatabaseState, limit: int = 10) -> List[Tuple[int, Any, Any]]:
        """Mismatched records as ``(record_id, shadow, recovered)``."""
        out: List[Tuple[int, Any, Any]] = []
        for i in range(self.n_records):
            expected = self.read(i)
            actual = state.values[i]
            if expected != actual:
                out.append((i, expected, actual))
                if len(out) >= limit:
                    break
        return out

    def matches(self, state: DatabaseState) -> bool:
        return (
            state.n_records == self.n_records
            and not self.diff(state, limit=1)
        )


__all__ = ["ShadowDatabase"]
