"""The recovery contract, checked after every injected crash.

Four invariants (plus a workload-level conservation check) must hold no
matter where the crash landed or which device faults preceded it:

1. **Durability** -- every transaction that was *acknowledged* committed
   before the crash (its completion callback fired, i.e. its commit group
   and all dependencies were durable) is in the recovered committed set.
   Pre-committed-but-unacknowledged transactions may legally go either
   way; merely active ones must be losers.
2. **Atomicity** -- the recovered image equals a winners-only replay of
   the durable log: no partial effect of any loser survives, every effect
   of every winner does.
3. **Bounded redo** -- recovering with the stable dirty-page table scans
   no more log than recovering without it, and produces the identical
   image: the Section 5.5 bound is an optimization, never a correctness
   leak.
4. **Idempotency** -- running recovery twice over the same crash state
   yields the identical image and statistics: recovery never mutates the
   durable state it reads, so a crash *during* recovery just means running
   it again.

Finally the **differential oracle**: a dict-backed shadow database
re-executes the committed workload scripts in commit-LSN order and must
match the recovered image byte-for-byte (see :mod:`repro.chaos.oracle`).

Constructing the checker with ``redo_workers`` opts in a seventh
invariant: the batched parallel-redo path must recover the identical
image and statistics as the serial interpreter (timings excepted).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError

from repro.chaos.oracle import ShadowDatabase
from repro.recovery.records import CommitRecord
from repro.recovery.restart import CrashState, RecoveryOutcome, recover, replay_committed


class InvariantViolation(ReproError, AssertionError):
    """One recovery invariant failed; carries the name and the evidence."""

    def __init__(self, invariant: str, detail: str) -> None:
        super().__init__("%s: %s" % (invariant, detail))
        self.invariant = invariant
        self.detail = detail


@dataclass
class InvariantReport:
    """What one post-crash check verified."""

    outcome: RecoveryOutcome
    acked_tids: Set[int] = field(default_factory=set)
    invariants_checked: int = 0


class InvariantChecker:
    """Runs recovery on a crash state and asserts the contract."""

    def __init__(
        self,
        initial_value: Any = 0,
        scripts_by_tid: Optional[Dict[int, Sequence[Tuple]]] = None,
        deposit_by_tid: Optional[Dict[int, int]] = None,
        redo_workers: Optional[int] = None,
    ) -> None:
        """``redo_workers`` opts in a seventh invariant: recovering the
        same crash state through the parallel partitioned-log path with
        that many workers must reproduce the serial image and statistics
        exactly (timings excepted)."""
        self.initial_value = initial_value
        self.scripts_by_tid = scripts_by_tid or {}
        self.deposit_by_tid = deposit_by_tid or {}
        self.redo_workers = redo_workers

    def check(
        self,
        crash_state: CrashState,
        acked_tids: Set[int],
        active_tids: Set[int] = frozenset(),
    ) -> InvariantReport:
        """Recover and verify; raises :class:`InvariantViolation`.

        ``acked_tids`` are transactions whose commit completion callback
        fired before the crash; ``active_tids`` are transactions that had
        neither pre-committed nor aborted (still holding locks mid-script)
        and therefore must not be recovered as winners.
        """
        outcome = recover(crash_state, initial_value=self.initial_value)
        checked = 0

        # 1 -- durability of acknowledged commits.
        missing = acked_tids - outcome.committed_tids
        if missing:
            raise InvariantViolation(
                "durability",
                "acknowledged transactions %s missing from the recovered "
                "committed set %s"
                % (sorted(missing), sorted(outcome.committed_tids)),
            )
        phantom = outcome.committed_tids & active_tids
        if phantom:
            raise InvariantViolation(
                "durability",
                "still-active transactions %s recovered as committed"
                % sorted(phantom),
            )
        checked += 1

        # 2 -- atomicity: winners-only replay of the durable log.
        log_oracle = replay_committed(crash_state, initial_value=self.initial_value)
        if outcome.state.values != log_oracle.values:
            raise InvariantViolation(
                "atomicity",
                "recovered image differs from winners-only log replay at "
                "records %s"
                % _first_diffs(log_oracle.values, outcome.state.values),
            )
        checked += 1

        # 3 -- redo bounded by the stable dirty-page table.
        unbounded = recover(
            crash_state,
            initial_value=self.initial_value,
            use_dirty_page_table=False,
        )
        if outcome.state.values != unbounded.state.values:
            raise InvariantViolation(
                "bounded-redo",
                "dirty-page-table recovery differs from full-scan recovery "
                "at records %s"
                % _first_diffs(unbounded.state.values, outcome.state.values),
            )
        if outcome.log_records_scanned > unbounded.log_records_scanned:
            raise InvariantViolation(
                "bounded-redo",
                "table-bounded scan read %d records, more than the full "
                "scan's %d"
                % (outcome.log_records_scanned, unbounded.log_records_scanned),
            )
        if crash_state.dirty_first_lsn:
            floor = min(crash_state.dirty_first_lsn.values())
            budget = sum(
                1 for r in crash_state.durable_log if r.lsn >= floor
            )
            if outcome.log_records_scanned > budget:
                raise InvariantViolation(
                    "bounded-redo",
                    "scanned %d records but only %d have lsn >= the "
                    "dirty-page-table minimum %d"
                    % (outcome.log_records_scanned, budget, floor),
                )
        checked += 1

        # 4 -- idempotency: recovery is a pure function of the crash state.
        again = recover(crash_state, initial_value=self.initial_value)
        if (
            again.state.values != outcome.state.values
            or again.committed_tids != outcome.committed_tids
            or again.updates_redone != outcome.updates_redone
            or again.updates_undone != outcome.updates_undone
        ):
            raise InvariantViolation(
                "idempotency",
                "second recovery over the same crash state diverged "
                "(first redo/undo %d/%d, second %d/%d)"
                % (
                    outcome.updates_redone,
                    outcome.updates_undone,
                    again.updates_redone,
                    again.updates_undone,
                ),
            )
        checked += 1

        # 5 -- differential oracle: shadow re-execution of the committed
        # workload, in commit-LSN order.
        if self.scripts_by_tid:
            commit_order = [
                r.tid
                for r in crash_state.durable_log
                if isinstance(r, CommitRecord)
            ]
            shadow = ShadowDatabase(
                crash_state.n_records, initial_value=self.initial_value
            )
            shadow.replay(self.scripts_by_tid, commit_order)
            mismatches = shadow.diff(outcome.state)
            if mismatches:
                raise InvariantViolation(
                    "differential-oracle",
                    "recovered image differs from the shadow database at "
                    "(record, shadow, recovered): %s" % mismatches,
                )
            checked += 1

        # 6 -- conservation: balances total the initial money plus the
        # deposits of recovered-committed transactions (transfers move
        # money, they never mint it).
        if self.deposit_by_tid is not None and self.scripts_by_tid:
            expected_total = crash_state.n_records * self.initial_value + sum(
                self.deposit_by_tid.get(tid, 0)
                for tid in outcome.committed_tids
            )
            actual_total = outcome.state.total_balance()
            if actual_total != expected_total:
                raise InvariantViolation(
                    "conservation",
                    "recovered balances total %s, expected %s"
                    % (actual_total, expected_total),
                )
            checked += 1

        # 7 (opt-in) -- parallel-redo equivalence: the batched
        # partitioned-log path is a drop-in replacement for the serial
        # interpreter on this exact crash state.
        if self.redo_workers is not None and self.redo_workers > 1:
            parallel = recover(
                crash_state,
                initial_value=self.initial_value,
                workers=self.redo_workers,
            )
            if parallel.state.values != outcome.state.values:
                raise InvariantViolation(
                    "parallel-redo",
                    "parallel recovery (workers=%d) differs from serial at "
                    "records %s"
                    % (
                        self.redo_workers,
                        _first_diffs(outcome.state.values, parallel.state.values),
                    ),
                )
            if parallel.state.page_lsn != outcome.state.page_lsn:
                raise InvariantViolation(
                    "parallel-redo",
                    "parallel recovery (workers=%d) left different page LSNs "
                    "%s" % (
                        self.redo_workers,
                        _first_diffs(
                            outcome.state.page_lsn, parallel.state.page_lsn
                        ),
                    ),
                )
            if (
                parallel.committed_tids != outcome.committed_tids
                or parallel.log_records_scanned != outcome.log_records_scanned
                or parallel.updates_redone != outcome.updates_redone
                or parallel.updates_undone != outcome.updates_undone
            ):
                raise InvariantViolation(
                    "parallel-redo",
                    "parallel recovery statistics diverged: serial "
                    "scanned/redone/undone %d/%d/%d, parallel %d/%d/%d"
                    % (
                        outcome.log_records_scanned,
                        outcome.updates_redone,
                        outcome.updates_undone,
                        parallel.log_records_scanned,
                        parallel.updates_redone,
                        parallel.updates_undone,
                    ),
                )
            checked += 1

        return InvariantReport(
            outcome=outcome, acked_tids=set(acked_tids), invariants_checked=checked
        )


class DegradedRunOracle:
    """The degraded-execution contract for governed queries.

    A query that runs under the governor while chaos cancels tokens,
    revokes grants, or fails pool workers must satisfy:

    1. **All-or-typed-error** -- the query either returns its rows or
       raises a typed governor error (:class:`~repro.errors.GovernorError`
       subclass); bare exceptions and silent partial results are
       violations.
    2. **Row fidelity** -- when the query completes, its rows are the
       exact multiset the undisturbed run produced.  Degradation may cost
       more, it may never change the answer.
    3. **Counter fidelity** -- when no degradation actually fired (no
       cancellation and no grant revocation -- worker faults alone are
       absorbed by counter-identical serial retries), the operation
       counters must match the undisturbed run exactly.
    """

    def check_query(
        self,
        label: str,
        baseline_rows: List[Any],
        rows: Optional[List[Any]],
        error: Optional[BaseException],
    ) -> None:
        """Verify one query's outcome against the undisturbed baseline."""
        from repro.errors import GovernorError

        if error is not None:
            if not isinstance(error, GovernorError):
                raise InvariantViolation(
                    "typed-errors",
                    "query %s raised untyped %s: %s"
                    % (label, type(error).__name__, error),
                )
            return
        if rows is None:
            raise InvariantViolation(
                "all-or-typed-error",
                "query %s neither returned rows nor raised" % label,
            )
        if sorted(rows, key=repr) != sorted(baseline_rows, key=repr):
            raise InvariantViolation(
                "row-fidelity",
                "query %s returned %d rows under degradation, undisturbed "
                "run produced %d (first diffs: %s)"
                % (
                    label,
                    len(rows),
                    len(baseline_rows),
                    _first_diffs(
                        sorted(baseline_rows, key=repr), sorted(rows, key=repr)
                    ),
                ),
            )

    def check_counters(
        self,
        baseline_snapshot: Any,
        snapshot: Any,
        injector: Any,
    ) -> None:
        """Verify counter fidelity when the run was effectively healthy."""
        degraded = (
            getattr(injector, "queries_cancelled", 0)
            or getattr(injector, "grants_revoked", 0)
        )
        if degraded:
            return
        if snapshot != baseline_snapshot:
            raise InvariantViolation(
                "counter-fidelity",
                "no cancellation or revocation fired (worker faults: %d) "
                "but the counters diverged from the undisturbed run"
                % getattr(injector, "worker_faults_injected", 0),
            )


def _first_diffs(expected: List[Any], actual: List[Any], limit: int = 10):
    diffs = [
        (i, e, a)
        for i, (e, a) in enumerate(zip(expected, actual))
        if e != a
    ]
    return diffs[:limit]


__all__ = [
    "DegradedRunOracle",
    "InvariantChecker",
    "InvariantReport",
    "InvariantViolation",
]
