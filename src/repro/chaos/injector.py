"""Deterministic fault injection over the discrete-event simulation.

The recovery stack's correctness claim -- Section 5's "reload the snapshot
and apply the log" survives *any* crash -- is only as strong as the crash
points it has been tested at.  :class:`FaultInjector` turns every place
durable state can change into a **schedulable point**:

* every event boundary in :class:`~repro.sim.events.EventQueue` (arrivals,
  log-page completions, checkpoint installs, timers);
* every log-page dispatch in :class:`~repro.recovery.log_device.LogDevice`
  (a commit group leaving the buffer);
* every synchronous append to
  :class:`~repro.recovery.stable_memory.StableMemory` (durable the moment
  it happens -- no event involved);
* every checkpoint copy dispatch in
  :class:`~repro.recovery.checkpoint.Checkpointer`;
* every :class:`~repro.storage.buffer.BufferPool` fault and every
  :class:`~repro.core.database.MainMemoryDatabase` statement (the query
  side of the house).

Points are numbered in execution order, which is deterministic (the event
queue breaks ties by insertion sequence), so "crash at point k" names an
exact machine state and every failure is replayable from ``(config, plan)``
alone.  Beyond crashes the injector can stretch individual device writes
(slow sectors reordering completion *across* devices while preserving each
device's FIFO), drop checkpoint installs (failed snapshot writes), and --
at crash time -- tear in-flight log pages so only a prefix survives, the
way a real sector-checksummed log loses the partially-written tail.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Worker-fault kinds the executor seam can inject into a pool job:
#: ``kill`` makes the forked worker exit hard (simulating a crash),
#: ``hang`` makes it sleep past any reasonable timeout (a wedged worker),
#: ``garble`` makes it return a non-sentinel payload (a corrupted result
#: the coordinator must detect and discard).
WORKER_FAULT_KINDS = ("kill", "hang", "garble")

#: Re-split fault kinds for hybrid hash's adaptive skew handling:
#: ``abort`` fails the re-split decision before any IO happens, ``midway``
#: kills it after the R sub-files are partially written (recovery restores
#: the single bucket file).  Either way the join must fall back to the
#: static recursion path and produce identical output rows.
RESPLIT_FAULT_KINDS = ("abort", "midway")


# Deliberately NOT a ReproError: a crash signal must never be swallowed by
# an `except ReproError` recovery path -- only the harness may catch it.
class CrashSignal(Exception):  # repro-lint: disable=exception-base
    """Raised at an injected crash point to freeze the simulation.

    Carries the point index and label so failures replay exactly.  The
    harness catches it, captures the durable state with
    :func:`repro.recovery.restart.crash`, and runs recovery.
    """

    def __init__(self, point: int, label: str) -> None:
        super().__init__("injected crash at point %d (%s)" % (point, label))
        self.point = point
        self.label = label


@dataclass
class FaultPlan:
    """A deterministic recipe of faults for one simulation run.

    The same plan against the same scenario produces the same execution,
    which is what makes every chaos failure a replayable seed.
    """

    #: Crash when the point counter reaches this index (None = never).
    crash_at_point: Optional[int] = None
    #: Per-write probability of stretching a device write.
    write_delay_prob: float = 0.0
    #: Maximum stretch, seconds (actual is uniform in (0, max]).
    write_delay_max: float = 0.0
    #: Per-page probability, at crash time, that an in-flight log page
    #: survives as a torn prefix rather than vanishing.
    tear_prob: float = 0.0
    #: Per-install probability that a checkpoint copy is dropped.
    drop_checkpoint_prob: float = 0.0
    #: Seed for every sampled decision above.
    seed: int = 0
    # -- executor seams (the query side of the house; see docs/ROBUSTNESS.md).
    #: Cancel the running query's token at this executor checkpoint.
    cancel_at_page: Optional[int] = None
    #: Revoke the running query's memory grant at this checkpoint ...
    revoke_at_page: Optional[int] = None
    #: ... down to this many pages.
    revoke_to_pages: int = 2
    #: Worker faults by dispatched-bucket-job sequence index; values are
    #: drawn from :data:`WORKER_FAULT_KINDS`.
    worker_faults: Dict[int, str] = field(default_factory=dict)
    #: Re-split faults by adaptive-re-split sequence index; values are
    #: drawn from :data:`RESPLIT_FAULT_KINDS`.
    resplit_faults: Dict[int, str] = field(default_factory=dict)

    def describe(self) -> str:
        parts = ["crash@%s" % self.crash_at_point]
        if self.cancel_at_page is not None:
            parts.append("cancel@page%d" % self.cancel_at_page)
        if self.revoke_at_page is not None:
            parts.append(
                "revoke@page%d->%dp" % (self.revoke_at_page, self.revoke_to_pages)
            )
        if self.worker_faults:
            parts.append(
                "workers(%s)"
                % ",".join(
                    "%d:%s" % (i, k) for i, k in sorted(self.worker_faults.items())
                )
            )
        if self.resplit_faults:
            parts.append(
                "resplits(%s)"
                % ",".join(
                    "%d:%s" % (i, k) for i, k in sorted(self.resplit_faults.items())
                )
            )
        if self.write_delay_prob:
            parts.append(
                "delay(p=%.2f,max=%gs)" % (self.write_delay_prob, self.write_delay_max)
            )
        if self.tear_prob:
            parts.append("tear(p=%.2f)" % self.tear_prob)
        if self.drop_checkpoint_prob:
            parts.append("drop-ckpt(p=%.2f)" % self.drop_checkpoint_prob)
        parts.append("seed=%d" % self.seed)
        return " ".join(parts)


class FaultInjector:
    """Counts schedulable points and executes a :class:`FaultPlan`.

    With the default (empty) plan the injector only *counts* -- a profiling
    run uses that to learn how many crash points a scenario has, so sweeps
    can enumerate them exhaustively or sample them uniformly.
    """

    #: How many recent point labels to keep for failure reports.
    TRACE_DEPTH = 20

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self._rng = random.Random(self.plan.seed)
        self.points = 0
        self.crashed = False
        self.delays_injected = 0
        self.checkpoint_writes_dropped = 0
        self.pages_torn = 0
        self.trace: List[str] = []
        # Executor-seam tallies (see executor_page / worker_fault).
        self.exec_pages = 0
        self.worker_jobs = 0
        self.resplit_points = 0
        self.queries_cancelled = 0
        self.grants_revoked = 0
        self.worker_faults_injected = 0
        self.resplit_faults_injected = 0

    # -- constructors ------------------------------------------------------------

    @classmethod
    def counting(cls) -> "FaultInjector":
        """Profiling mode: count points, inject nothing."""
        return cls(FaultPlan())

    @classmethod
    def crash_at(cls, point: int) -> "FaultInjector":
        """Exhaustive-sweep mode: a clean crash at exactly ``point``."""
        return cls(FaultPlan(crash_at_point=point))

    @classmethod
    def seeded(cls, seed: int, max_point: int) -> "FaultInjector":
        """Sampled mode: derive a full fault schedule from one seed.

        The crash point is uniform over ``[0, max_point * 1.25]`` -- the
        slack lets some schedules crash after the workload settles (a
        crash on an idle system) or not at all, both worth covering.
        Delay, tear, and drop probabilities are themselves sampled so
        different seeds explore different fault mixes.
        """
        rng = random.Random(seed)
        slack = int(max_point * 1.25) + 1
        plan = FaultPlan(
            crash_at_point=rng.randrange(0, slack),
            write_delay_prob=rng.uniform(0.0, 0.35),
            write_delay_max=rng.uniform(0.001, 0.03),
            tear_prob=rng.uniform(0.0, 0.8),
            drop_checkpoint_prob=rng.uniform(0.0, 0.25),
            seed=seed,
        )
        return cls(plan)

    @classmethod
    def seeded_executor(
        cls, seed: int, max_pages: int, max_jobs: int = 8
    ) -> "FaultInjector":
        """A seeded executor fault schedule (query side of the house).

        Mirrors :meth:`seeded` for the governor's seams: the seed fully
        determines whether/where the schedule cancels the query, revokes
        its memory grant, and which parallel bucket jobs fail (and how).
        The 1.25 slack means some schedules fire after the query finished
        -- a no-op run, worth covering like the recovery sweep's
        crash-on-idle case.
        """
        rng = random.Random(seed ^ 0xE8EC)
        slack = int(max_pages * 1.25) + 1
        cancel = rng.randrange(0, slack) if rng.random() < 0.35 else None
        revoke = rng.randrange(0, slack) if rng.random() < 0.6 else None
        faults: Dict[int, str] = {}
        for job in range(max_jobs):
            if rng.random() < 0.25:
                faults[job] = WORKER_FAULT_KINDS[
                    rng.randrange(len(WORKER_FAULT_KINDS))
                ]
        # Sampled after every pre-existing draw so adding the re-split
        # seam did not reshuffle any established seed's schedule.
        resplits: Dict[int, str] = {}
        for event in range(max_jobs):
            if rng.random() < 0.25:
                resplits[event] = RESPLIT_FAULT_KINDS[
                    rng.randrange(len(RESPLIT_FAULT_KINDS))
                ]
        plan = FaultPlan(
            cancel_at_page=cancel,
            revoke_at_page=revoke,
            revoke_to_pages=rng.randrange(2, 8),
            worker_faults=faults,
            resplit_faults=resplits,
            seed=seed,
        )
        return cls(plan)

    # -- wiring ------------------------------------------------------------------

    def attach(
        self,
        queue=None,
        log_manager=None,
        checkpointer=None,
        buffer_pool=None,
        database=None,
    ) -> "FaultInjector":
        """Hook this injector into the given components' chaos seams."""
        if queue is not None:
            queue.fault_injector = self
        if log_manager is not None:
            log_manager.fault_injector = self  # group-seal points
            log_manager.log.attach_fault_injector(self)
            if log_manager.stable is not None:
                log_manager.stable.on_append = self._on_stable_append
        if checkpointer is not None:
            checkpointer.fault_injector = self
        if buffer_pool is not None:
            buffer_pool.fault_injector = self
        if database is not None:
            database.attach_chaos(self)
        return self

    # -- the point counter -------------------------------------------------------

    def point(self, label: str) -> None:
        """Tick one schedulable point; crash here if the plan says so."""
        index = self.points
        self.points += 1
        self.trace.append(label)
        if len(self.trace) > self.TRACE_DEPTH:
            del self.trace[0]
        if (
            not self.crashed
            and self.plan.crash_at_point is not None
            and index >= self.plan.crash_at_point
        ):
            self.crashed = True
            raise CrashSignal(index, label)

    def on_event(self, event) -> None:
        """EventQueue seam: each event boundary is a point."""
        self.point("event:%s" % (event.label or "?"))

    def _on_stable_append(self, record) -> None:
        self.point("stable append lsn=%d" % record.lsn)

    # -- sampled faults ----------------------------------------------------------

    def write_delay(self, device_id: int) -> float:
        """Extra seconds to add to one device write (0.0 = healthy)."""
        if self.plan.write_delay_prob <= 0.0:
            return 0.0
        if self._rng.random() >= self.plan.write_delay_prob:
            return 0.0
        self.delays_injected += 1
        return self._rng.uniform(0.0, self.plan.write_delay_max) or (
            self.plan.write_delay_max / 2.0
        )

    def drop_checkpoint_write(self, page_id: int) -> bool:
        """Whether to lose this checkpoint install entirely."""
        if self.plan.drop_checkpoint_prob <= 0.0:
            return False
        if self._rng.random() >= self.plan.drop_checkpoint_prob:
            return False
        self.checkpoint_writes_dropped += 1
        return True

    # -- executor seams (governor / worker pool) ---------------------------------

    def executor_page(self, token=None, grant=None) -> None:
        """Tick one executor checkpoint; fire cancel/revoke if scheduled.

        Wired as ``CancellationToken.on_check`` by
        :meth:`repro.governor.Governor.attach_chaos`, so it fires exactly
        once per page of query work -- the same deterministic numbering
        that makes crash points replayable makes these faults replayable.
        """
        idx = self.exec_pages
        self.exec_pages += 1
        if token is not None and self.plan.cancel_at_page == idx:
            token.cancel()
            self.queries_cancelled += 1
        if grant is not None and self.plan.revoke_at_page == idx:
            grant.revoke(self.plan.revoke_to_pages)
            self.grants_revoked += 1

    def worker_fault(self) -> Optional[str]:
        """The fault (if any) to inject into the next dispatched bucket job.

        Returns a :data:`WORKER_FAULT_KINDS` member or None.  Job indexes
        count dispatches in submission order, which is deterministic.
        """
        idx = self.worker_jobs
        self.worker_jobs += 1
        kind = self.plan.worker_faults.get(idx)
        if kind is not None:
            self.worker_faults_injected += 1
        return kind

    def resplit_fault(self) -> Optional[str]:
        """The fault (if any) for the next adaptive re-split attempt.

        Returns a :data:`RESPLIT_FAULT_KINDS` member or None.  Attempts
        are numbered in bucket order within each partition level, which is
        deterministic per run.
        """
        idx = self.resplit_points
        self.resplit_points += 1
        kind = self.plan.resplit_faults.get(idx)
        if kind is not None:
            self.resplit_faults_injected += 1
        return kind

    # -- torn pages --------------------------------------------------------------

    def torn_records(self, log_manager) -> List[object]:
        """Sample, at crash time, which in-flight log pages survive torn.

        A page write the crash caught mid-transfer normally vanishes; with
        probability ``tear_prob`` a *prefix* of its records made it to the
        platter before power failed (the trailing partial record is
        discarded by the page checksum, so tears always land on record
        boundaries).  Returns the surviving records; the harness merges
        them into the crash state's durable log by LSN.
        """
        if self.plan.tear_prob <= 0.0:
            return []
        survivors: List[object] = []
        for device_id, page_number, payload in log_manager.log.in_flight_writes():
            if not payload or self._rng.random() >= self.plan.tear_prob:
                continue
            keep = self._rng.randrange(0, len(payload) + 1)
            if keep == 0:
                continue
            self.pages_torn += 1
            survivors.extend(payload[:keep])
        return survivors

    def __repr__(self) -> str:
        return "FaultInjector(points=%d, crashed=%s, plan=%s)" % (
            self.points,
            self.crashed,
            self.plan.describe(),
        )


__all__ = [
    "CrashSignal",
    "FaultInjector",
    "FaultPlan",
    "RESPLIT_FAULT_KINDS",
    "WORKER_FAULT_KINDS",
]
