"""Deterministic fault injection for the Section 5 recovery stack.

The paper's throughput ladder (WAL -> group commit -> partitioned logs ->
stable memory) is only worth climbing if recovery is correct under
*arbitrary* crash points.  This package makes that a sweep, not a hope:

* :mod:`repro.chaos.injector` -- :class:`FaultInjector`: every durable
  state change is a numbered, schedulable point; plans inject crashes,
  slow writes, torn log pages, and dropped checkpoint installs, all
  derived deterministically from one seed.
* :mod:`repro.chaos.invariants` -- :class:`InvariantChecker`: after each
  crash, recovery must satisfy durability of acknowledged commits,
  atomicity of losers, redo bounded by the stable dirty-page table, and
  idempotency.
* :mod:`repro.chaos.oracle` -- :class:`ShadowDatabase`: a dict-backed
  re-execution of the committed workload that the recovered image must
  match byte-for-byte.
* :mod:`repro.chaos.harness` -- exhaustive and seeded crash-point sweeps
  with replayable failure reports.

See ``docs/CHAOS.md`` for the injection-point map and replay workflow.
"""

from repro.chaos.executor import (
    ExecutorChaosFailure,
    ExecutorScenario,
    ExecutorSweepReport,
    capture_baseline,
    executor_sweep,
    run_executor_seed,
)
from repro.chaos.injector import (
    RESPLIT_FAULT_KINDS,
    WORKER_FAULT_KINDS,
    CrashSignal,
    FaultInjector,
    FaultPlan,
)
from repro.chaos.invariants import (
    DegradedRunOracle,
    InvariantChecker,
    InvariantReport,
    InvariantViolation,
)
from repro.chaos.oracle import ShadowDatabase
from repro.chaos.harness import (
    ChaosFailure,
    ScenarioConfig,
    ScenarioRun,
    SweepReport,
    build_scenario,
    capture,
    check_run,
    exhaustive_sweep,
    profile_points,
    replay_seed,
    run_scenario,
    seeded_sweep,
)

__all__ = [
    "ChaosFailure",
    "CrashSignal",
    "DegradedRunOracle",
    "ExecutorChaosFailure",
    "ExecutorScenario",
    "ExecutorSweepReport",
    "FaultInjector",
    "FaultPlan",
    "InvariantChecker",
    "InvariantReport",
    "InvariantViolation",
    "RESPLIT_FAULT_KINDS",
    "ScenarioConfig",
    "ScenarioRun",
    "ShadowDatabase",
    "SweepReport",
    "WORKER_FAULT_KINDS",
    "build_scenario",
    "capture",
    "capture_baseline",
    "check_run",
    "executor_sweep",
    "exhaustive_sweep",
    "profile_points",
    "replay_seed",
    "run_executor_seed",
    "run_scenario",
    "seeded_sweep",
]
