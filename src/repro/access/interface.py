"""The access-method protocol shared by every index in the reproduction.

Values are opaque to the index; the database stores TIDs (page, slot pairs
into a :class:`~repro.storage.relation.Relation`), matching the paper's
observation that hash/sort structures may hold "TIDs and perhaps keys"
rather than whole tuples.  Duplicate keys are supported everywhere -- each
key maps to the list of values inserted under it, in insertion order.
"""

from __future__ import annotations

import abc
from typing import Any, Iterator, List, Optional, Tuple


class Index(abc.ABC):
    """Ordered or hashed mapping from keys to lists of values."""

    @abc.abstractmethod
    def insert(self, key: Any, value: Any) -> None:
        """Add ``value`` under ``key`` (duplicates allowed)."""

    @abc.abstractmethod
    def search(self, key: Any) -> List[Any]:
        """All values stored under ``key`` (empty list if absent)."""

    @abc.abstractmethod
    def delete(self, key: Any, value: Optional[Any] = None) -> int:
        """Remove ``value`` under ``key`` (or every value when ``None``).

        Returns the number of values removed.
        """

    @abc.abstractmethod
    def __len__(self) -> int:
        """Total number of stored values (not distinct keys)."""

    def contains(self, key: Any) -> bool:
        """Whether any value is stored under ``key``."""
        return bool(self.search(key))

    # Ordered indexes additionally implement the scan protocol; the hash
    # index raises, which is exactly the Section 4 point that hash-based
    # plans are insensitive to ordering because they never produce any.

    def range_scan(
        self, low: Optional[Any] = None, high: Optional[Any] = None
    ) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` in key order for ``low <= key <= high``."""
        raise NotImplementedError(
            "%s does not support ordered scans" % type(self).__name__
        )

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Every ``(key, value)`` pair (key order for ordered indexes)."""
        return self.range_scan(None, None)

    @property
    def supports_range_scan(self) -> bool:
        """Whether :meth:`range_scan` is implemented."""
        return type(self).range_scan is not Index.range_scan


__all__ = ["Index"]
