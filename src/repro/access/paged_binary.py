"""The footnote-1 alternative: a binary tree whose nodes are packed on pages.

The paper's first footnote observes that a *paged* binary tree trades the
AVL tree's page-per-node behaviour for B-tree-like clustering, but "the
fanout per node will be slightly worse than the B-tree" and, unbalanced,
its worst case is "significantly poorer".  This module implements the
structure so the claim can be measured: an ordinary (unbalanced) BST whose
nodes are allocated into pages of ``nodes_per_page`` slots, preferring the
parent's page so root-adjacent subtrees cluster together (the
Muntz-Uzgalis allocation the footnote cites).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.access.interface import Index
from repro.cost.counters import OperationCounters
from repro.errors import ConfigurationError


class _PNode:
    __slots__ = ("key", "values", "left", "right", "page_id")

    def __init__(self, key: Any, value: Any, page_id: int) -> None:
        self.key = key
        self.values: List[Any] = [value]
        self.left: Optional["_PNode"] = None
        self.right: Optional["_PNode"] = None
        self.page_id = page_id


class PagedBinaryTree(Index):
    """Unbalanced BST with page-clustered node allocation."""

    def __init__(
        self,
        nodes_per_page: int = 32,
        counters: Optional[OperationCounters] = None,
    ) -> None:
        if nodes_per_page < 1:
            raise ConfigurationError("need at least one node per page")
        self.nodes_per_page = nodes_per_page
        self.counters = counters if counters is not None else OperationCounters()
        self._root: Optional[_PNode] = None
        self._size = 0
        self._distinct = 0
        self._page_fill: List[int] = []  # nodes allocated per page

    # -- allocation -----------------------------------------------------------------

    def _allocate_page(self) -> int:
        self._page_fill.append(0)
        return len(self._page_fill) - 1

    def _place_node(self, parent: Optional[_PNode]) -> int:
        """Choose a page: the parent's when it has room, else a new one."""
        if parent is not None and self._page_fill[parent.page_id] < self.nodes_per_page:
            page = parent.page_id
        else:
            page = self._allocate_page()
        self._page_fill[page] += 1
        return page

    # -- size / shape ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def distinct_keys(self) -> int:
        return self._distinct

    @property
    def page_count(self) -> int:
        return len(self._page_fill)

    def height(self) -> int:
        def depth(node: Optional[_PNode]) -> int:
            if node is None:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        return depth(self._root)

    def path_pages(self, key: Any) -> List[int]:
        """Distinct page ids on the search path -- the structure's point:
        consecutive path nodes often share a page, unlike the AVL tree."""
        pages: List[int] = []
        node = self._root
        while node is not None:
            if not pages or pages[-1] != node.page_id:
                pages.append(node.page_id)
            if key == node.key:
                break
            node = node.left if key < node.key else node.right
        return pages

    # -- Index protocol -------------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        if self._root is None:
            self._root = _PNode(key, value, self._place_node(None))
            self._size += 1
            self._distinct += 1
            return
        node = self._root
        while True:
            self.counters.compare()  # one three-way comparison per node
            if key == node.key:
                node.values.append(value)
                self._size += 1
                return
            if key < node.key:
                if node.left is None:
                    node.left = _PNode(key, value, self._place_node(node))
                    break
                node = node.left
            else:
                if node.right is None:
                    node.right = _PNode(key, value, self._place_node(node))
                    break
                node = node.right
        self._size += 1
        self._distinct += 1

    def search(self, key: Any) -> List[Any]:
        node = self._root
        while node is not None:
            self.counters.compare()  # one three-way comparison per node
            if key == node.key:
                return list(node.values)
            node = node.left if key < node.key else node.right
        return []

    def delete(self, key: Any, value: Optional[Any] = None) -> int:
        """Remove values under ``key`` (page fill counts are not reclaimed;
        like the 1984 structures, pages only grow)."""
        parent: Optional[_PNode] = None
        node = self._root
        left_child = False
        while node is not None and node.key != key:
            self.counters.compare()
            parent = node
            left_child = key < node.key
            node = node.left if left_child else node.right
        if node is None:
            return 0
        if value is not None:
            try:
                node.values.remove(value)
            except ValueError:
                return 0
            removed = 1
            if node.values:
                self._size -= removed
                return removed
        else:
            removed = len(node.values)

        # Structural removal (standard BST delete).
        self._distinct -= 1
        if node.left is not None and node.right is not None:
            succ_parent, succ = node, node.right
            while succ.left is not None:
                succ_parent, succ = succ, succ.left
            node.key, node.values = succ.key, succ.values
            if succ_parent.left is succ:
                succ_parent.left = succ.right
            else:
                succ_parent.right = succ.right
        else:
            replacement = node.left if node.left is not None else node.right
            if parent is None:
                self._root = replacement
            elif left_child:
                parent.left = replacement
            else:
                parent.right = replacement
        self._size -= removed
        return removed

    def range_scan(
        self, low: Optional[Any] = None, high: Optional[Any] = None
    ) -> Iterator[Tuple[Any, Any]]:
        stack: List[_PNode] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                if low is not None and node.key < low:
                    node = node.right
                    continue
                stack.append(node)
                node = node.left
            if not stack:
                return
            current = stack.pop()
            if high is not None and current.key > high:
                return
            for value in current.values:
                yield current.key, value
            node = current.right

    def __repr__(self) -> str:
        return "PagedBinaryTree(%d values, %d keys, %d pages)" % (
            self._size,
            self._distinct,
            self.page_count,
        )


__all__ = ["PagedBinaryTree"]
