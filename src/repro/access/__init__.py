"""Executable access methods from Section 2 of the paper.

* :class:`~repro.access.avl.AVLTree` -- the main-memory candidate: one
  tuple per node, two child pointers, no page structure (every node lands
  on its own page as far as the fault model is concerned).
* :class:`~repro.access.btree.BPlusTree` -- the disk-era incumbent:
  page-structured nodes, ~69% occupancy after splits, chained leaves for
  sequential access.
* :class:`~repro.access.hash_index.HashIndex` -- the equality-only
  structure the Section 3 algorithms and the Section 4 planner rely on.
* :class:`~repro.access.paged_binary.PagedBinaryTree` -- the footnote-1
  alternative: a binary tree whose nodes are packed onto pages.

All four share the :class:`~repro.access.interface.Index` protocol and
charge key comparisons / hashes to an optional
:class:`~repro.cost.counters.OperationCounters`, and expose the page ids a
lookup touches so the buffer-pool experiments can replay real access
patterns against the Section 2 closed-form fault model.
"""

from repro.access.avl import AVLTree
from repro.access.btree import BPlusTree
from repro.access.hash_index import HashIndex
from repro.access.interface import Index
from repro.access.paged_binary import PagedBinaryTree
from repro.access.simulator import AccessSimulator, measured_breakeven

__all__ = [
    "AVLTree",
    "AccessSimulator",
    "BPlusTree",
    "HashIndex",
    "Index",
    "PagedBinaryTree",
    "measured_breakeven",
]
