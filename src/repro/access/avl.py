"""An AVL tree -- the paper's main-memory access method candidate.

Each node stores one key (with its list of values), two child pointers, and
a height, exactly the ``L + 2 * pointer`` bytes the Section 2 storage
formula charges.  Because the structure has "no page structure", the fault
model assumes every node of a root-to-key path lives on a different page;
:meth:`AVLTree.path_pages` exposes those per-node page ids so the
buffer-pool experiment can replay real lookups against the model.

Key comparisons are charged to an optional
:class:`~repro.cost.counters.OperationCounters` (the paper discounts them
by ``Y <= 1`` relative to B+-tree comparisons; the discount is applied by
the cost model, not the counter).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.access.interface import Index
from repro.cost.counters import OperationCounters


class _Node:
    __slots__ = ("key", "values", "left", "right", "height", "node_id")

    def __init__(self, key: Any, value: Any, node_id: int) -> None:
        self.key = key
        self.values: List[Any] = [value]
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.height = 1
        self.node_id = node_id


def _height(node: Optional[_Node]) -> int:
    return node.height if node else 0


def _update(node: _Node) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))


def _balance(node: _Node) -> int:
    return _height(node.left) - _height(node.right)


def _rotate_right(y: _Node) -> _Node:
    x = y.left
    assert x is not None
    y.left = x.right
    x.right = y
    _update(y)
    _update(x)
    return x


def _rotate_left(x: _Node) -> _Node:
    y = x.right
    assert y is not None
    x.right = y.left
    y.left = x
    _update(x)
    _update(y)
    return y


def _rebalance(node: _Node) -> _Node:
    _update(node)
    bal = _balance(node)
    if bal > 1:
        assert node.left is not None
        if _balance(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if bal < -1:
        assert node.right is not None
        if _balance(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AVLTree(Index):
    """Height-balanced binary search tree with duplicate-key support."""

    def __init__(self, counters: Optional[OperationCounters] = None) -> None:
        self.counters = counters if counters is not None else OperationCounters()
        self._root: Optional[_Node] = None
        self._size = 0
        self._distinct = 0
        self._next_node_id = 0

    # -- size ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def distinct_keys(self) -> int:
        return self._distinct

    @property
    def height(self) -> int:
        """Height of the tree (0 when empty)."""
        return _height(self._root)

    @property
    def node_count(self) -> int:
        """Number of nodes == distinct keys (one node per key)."""
        return self._distinct

    # -- core operations ----------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        self._root = self._insert(self._root, key, value)
        self._size += 1

    def _insert(self, node: Optional[_Node], key: Any, value: Any) -> _Node:
        if node is None:
            self._distinct += 1
            fresh = _Node(key, value, self._next_node_id)
            self._next_node_id += 1
            return fresh
        # One three-way comparison per node, as the Section 2 model counts.
        self.counters.compare()
        if key == node.key:
            node.values.append(value)
            return node
        if key < node.key:
            node.left = self._insert(node.left, key, value)
        else:
            node.right = self._insert(node.right, key, value)
        return _rebalance(node)

    def search(self, key: Any) -> List[Any]:
        node = self._root
        while node is not None:
            # One three-way comparison per node (the model's C).
            self.counters.compare()
            if key == node.key:
                return list(node.values)
            node = node.left if key < node.key else node.right
        return []

    def path_pages(self, key: Any) -> List[int]:
        """Page ids (== node ids) touched by a lookup of ``key``.

        Used by the fault-model experiment: an AVL lookup touches one page
        per node on the search path.
        """
        pages: List[int] = []
        node = self._root
        while node is not None:
            pages.append(node.node_id)
            if key == node.key:
                break
            node = node.left if key < node.key else node.right
        return pages

    def delete(self, key: Any, value: Optional[Any] = None) -> int:
        removed = [0]
        self._root = self._delete(self._root, key, value, removed)
        self._size -= removed[0]
        return removed[0]

    def _delete(
        self,
        node: Optional[_Node],
        key: Any,
        value: Optional[Any],
        removed: List[int],
    ) -> Optional[_Node]:
        if node is None:
            return None
        self.counters.compare()  # one three-way comparison per node
        if key < node.key:
            node.left = self._delete(node.left, key, value, removed)
            return _rebalance(node)
        if key > node.key:
            node.right = self._delete(node.right, key, value, removed)
            return _rebalance(node)

        # Found the key's node.
        if value is not None:
            try:
                node.values.remove(value)
                removed[0] += 1
            except ValueError:
                return node
            if node.values:
                return node
        else:
            removed[0] += len(node.values)
            node.values.clear()

        # Remove the now-empty node.
        self._distinct -= 1
        if node.left is None:
            return node.right
        if node.right is None:
            return node.left
        successor = node.right
        while successor.left is not None:
            successor = successor.left
        node.key = successor.key
        node.values = successor.values
        # Detach the successor node (its values moved up; delete all).
        self._distinct += 1  # _delete below will decrement again
        node.right = self._delete_node_min(node.right)
        return _rebalance(node)

    def _delete_node_min(self, node: _Node) -> Optional[_Node]:
        """Remove the minimum node of a subtree (values already moved)."""
        if node.left is None:
            self._distinct -= 1
            return node.right
        node.left = self._delete_node_min(node.left)
        return _rebalance(node)

    # -- ordered access ------------------------------------------------------------

    def range_scan(
        self, low: Optional[Any] = None, high: Optional[Any] = None
    ) -> Iterator[Tuple[Any, Any]]:
        """In-order traversal restricted to ``low <= key <= high``.

        This is the paper's sequential-access case 2: successive results
        come from unrelated nodes/pages.
        """
        stack: List[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                if low is not None and node.key < low:
                    node = node.right
                    continue
                stack.append(node)
                node = node.left
            if not stack:
                return
            current = stack.pop()
            if high is not None and current.key > high:
                return
            if low is None or current.key >= low:
                for value in current.values:
                    yield current.key, value
            node = current.right

    def minimum(self) -> Optional[Any]:
        node = self._root
        if node is None:
            return None
        while node.left is not None:
            node = node.left
        return node.key

    def maximum(self) -> Optional[Any]:
        node = self._root
        if node is None:
            return None
        while node.right is not None:
            node = node.right
        return node.key

    # -- invariants (used by property tests) --------------------------------------

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if AVL or BST invariants are violated."""

        def walk(node: Optional[_Node]) -> Tuple[int, Optional[Any], Optional[Any]]:
            if node is None:
                return 0, None, None
            lh, lmin, lmax = walk(node.left)
            rh, rmin, rmax = walk(node.right)
            assert abs(lh - rh) <= 1, "AVL balance violated at %r" % (node.key,)
            assert node.height == 1 + max(lh, rh), "stale height at %r" % (node.key,)
            if lmax is not None:
                assert lmax < node.key, "BST order violated at %r" % (node.key,)
            if rmin is not None:
                assert rmin > node.key, "BST order violated at %r" % (node.key,)
            lo = lmin if lmin is not None else node.key
            hi = rmax if rmax is not None else node.key
            return node.height, lo, hi

        walk(self._root)

    def __repr__(self) -> str:
        return "AVLTree(%d values, %d keys, height=%d)" % (
            self._size,
            self._distinct,
            self.height,
        )


__all__ = ["AVLTree"]
