"""A chained hash table -- the workhorse of the Section 3 algorithms.

The table stores key -> list-of-values chains in fixed buckets and resizes
by doubling when the load factor exceeds the paper's fudge headroom.
Probes charge one ``hash`` plus ``F`` comparisons on average (the paper's
``||S|| * F * comp`` probe term); inserts charge one ``hash`` and one
``move``.

The table also reports its size in pages (``entries * entry_bytes / p``),
which the join algorithms compare against their memory grant -- "a hash
table to hold R will require |R| * F pages".
"""

from __future__ import annotations

import math
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.access.interface import Index
from repro.cost.counters import OperationCounters
from repro.errors import ConfigurationError


class HashIndex(Index):
    """Separate-chaining hash table with operation accounting."""

    def __init__(
        self,
        counters: Optional[OperationCounters] = None,
        initial_buckets: int = 64,
        max_load: float = 1.2,
    ) -> None:
        if initial_buckets < 1:
            raise ConfigurationError("need at least one bucket")
        if max_load <= 0:
            raise ConfigurationError("max load factor must be positive")
        self.counters = counters if counters is not None else OperationCounters()
        self.max_load = max_load
        self._buckets: List[List[Tuple[Any, List[Any]]]] = [
            [] for _ in range(initial_buckets)
        ]
        self._size = 0
        self._distinct = 0

    # -- size -------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def distinct_keys(self) -> int:
        return self._distinct

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    @property
    def load_factor(self) -> float:
        return self._distinct / len(self._buckets)

    def pages(self, entry_bytes: int, page_bytes: int = 4096) -> int:
        """Structure size in pages for the memory-fit checks."""
        return max(1, math.ceil(self._size * entry_bytes / page_bytes))

    # -- internals ----------------------------------------------------------------

    def _bucket_for(self, key: Any) -> List[Tuple[Any, List[Any]]]:
        self.counters.hash_key()
        return self._buckets[hash(key) % len(self._buckets)]

    def _maybe_grow(self) -> None:
        if self.load_factor <= self.max_load:
            return
        old = self._buckets
        self._buckets = [[] for _ in range(2 * len(old))]
        for chain in old:
            for key, values in chain:
                # Rehash without charging: the paper's model charges one
                # hash per logical insert; growth is the table's F headroom.
                self._buckets[hash(key) % len(self._buckets)].append((key, values))

    # -- Index protocol ---------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        chain = self._bucket_for(key)
        self.counters.move_tuple()
        for entry_key, values in chain:
            self.counters.compare()
            if entry_key == key:
                values.append(value)
                self._size += 1
                return
        chain.append((key, [value]))
        self._size += 1
        self._distinct += 1
        self._maybe_grow()

    def insert_batch(self, pairs: Sequence[Tuple[Any, Any]]) -> None:
        """Insert many (key, value) pairs with one bulk counter charge.

        Identical table state and counter totals to calling :meth:`insert`
        per pair in the same order; the per-pair charges (one hash, one
        move, one comparison per chain entry scanned) are accumulated in
        local integers and charged once at the end.
        """
        hashes = moves = compares = 0
        for key, value in pairs:
            hashes += 1
            moves += 1
            buckets = self._buckets  # re-read: _maybe_grow may swap it
            chain = buckets[hash(key) % len(buckets)]
            for entry in chain:
                compares += 1
                if entry[0] == key:
                    entry[1].append(value)
                    self._size += 1
                    break
            else:
                chain.append((key, [value]))
                self._size += 1
                self._distinct += 1
                self._maybe_grow()
        self.counters.hash_key(hashes)
        self.counters.move_tuple(moves)
        self.counters.compare(compares)

    def probe_batch(self, keys: Sequence[Any]) -> List[List[Any]]:
        """Probe many keys; return their value chains in key order.

        Bulk-charged analogue of calling :meth:`probe` per key.  Unlike
        :meth:`probe`, the returned lists are the *live* chains (no
        defensive copy) -- callers must not mutate them.  Misses share one
        empty list.
        """
        hashes = compares = 0
        buckets = self._buckets
        n_buckets = len(buckets)
        miss: List[Any] = []
        out: List[List[Any]] = []
        for key in keys:
            hashes += 1
            hit = miss
            for entry in buckets[hash(key) % n_buckets]:
                compares += 1
                if entry[0] == key:
                    hit = entry[1]
                    break
            out.append(hit)
        self.counters.hash_key(hashes)
        self.counters.compare(compares)
        return out

    def search(self, key: Any) -> List[Any]:
        chain = self._bucket_for(key)
        for entry_key, values in chain:
            self.counters.compare()
            if entry_key == key:
                return list(values)
        return []

    def probe(self, key: Any) -> List[Any]:
        """Alias for :meth:`search` in join-algorithm vocabulary."""
        return self.search(key)

    def delete(self, key: Any, value: Optional[Any] = None) -> int:
        chain = self._bucket_for(key)
        for i, (entry_key, values) in enumerate(chain):
            self.counters.compare()
            if entry_key != key:
                continue
            if value is None:
                removed = len(values)
                del chain[i]
                self._distinct -= 1
            else:
                try:
                    values.remove(value)
                except ValueError:
                    return 0
                removed = 1
                if not values:
                    del chain[i]
                    self._distinct -= 1
            self._size -= removed
            return removed
        return 0

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Every (key, value) pair in arbitrary (bucket) order."""
        for chain in self._buckets:
            for key, values in chain:
                for value in values:
                    yield key, value

    def keys(self) -> Iterator[Any]:
        for chain in self._buckets:
            for key, _ in chain:
                yield key

    def chain_length_stats(self) -> Tuple[float, int]:
        """(mean, max) chain length over non-empty buckets."""
        lengths = [len(c) for c in self._buckets if c]
        if not lengths:
            return 0.0, 0
        return sum(lengths) / len(lengths), max(lengths)

    def __repr__(self) -> str:
        return "HashIndex(%d values, %d keys, %d buckets)" % (
            self._size,
            self._distinct,
            len(self._buckets),
        )


__all__ = ["HashIndex"]
