"""Executable Section 2: price real index traffic with the paper's costs.

The closed-form model in :mod:`repro.cost.access_model` predicts lookup
costs from structure geometry.  This module measures them: it replays real
:meth:`path_pages` traces from an AVL tree / B+-tree through a
:class:`~repro.storage.buffer.BufferPool` of ``|M|`` frames and charges the
paper's cost function ``Z * faults + (Y *) comparisons`` per lookup.

Because real search traffic is root-biased (hot upper levels stay cached
even under random replacement), measured costs sit below the closed form,
and the *measured* breakeven residence for the AVL tree is lower than
Table 1's -- quantified by :func:`measured_breakeven`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.access.avl import AVLTree
from repro.access.btree import BPlusTree
from repro.cost.access_model import AccessMethodParameters
from repro.storage.buffer import BufferPool, ReplacementPolicy
from repro.errors import ConfigurationError

PagedIndex = Union[AVLTree, BPlusTree]


def structure_pages(index: PagedIndex) -> int:
    """Distinct pages the structure occupies (S or S' of Section 2)."""
    if isinstance(index, AVLTree):
        return max(1, index.node_count)
    internal, leaves = index.node_counts()
    return max(1, internal + leaves)


@dataclass
class AccessMeasurement:
    """One simulated configuration's results."""

    resident_fraction: float
    faults_per_lookup: float
    comparisons_per_lookup: float
    cost_per_lookup: float


class AccessSimulator:
    """Replays random lookups against a partially resident structure."""

    def __init__(
        self,
        index: PagedIndex,
        params: AccessMethodParameters,
        policy: ReplacementPolicy = ReplacementPolicy.RANDOM,
        seed: int = 1984,
    ) -> None:
        self.index = index
        self.params = params
        self.policy = policy
        self.seed = seed
        self.total_pages = structure_pages(index)
        #: AVL comparisons get the paper's Y discount.
        self.comparison_weight = (
            params.y if isinstance(index, AVLTree) else 1.0
        )

    def measure(
        self,
        keys: Sequence,
        resident_fraction: float,
        lookups: int = 2000,
        warmup: int = 1000,
    ) -> AccessMeasurement:
        """Steady-state cost of random lookups at a residence fraction."""
        if not keys:
            raise ConfigurationError("need at least one key to probe")
        frames = max(1, int(resident_fraction * self.total_pages))
        pool = BufferPool(frames, policy=self.policy, seed=self.seed)
        rng = random.Random(self.seed + 1)

        counters = self.index.counters
        # Pre-fill the pool (no fault accounting) and then run a random
        # warm phase, so the measured phase sees steady state rather than
        # cold misses -- crucial at full residence, where the model says
        # zero faults.
        pool.pin_all(list(range(getattr(self.index, "_next_node_id"))))
        for phase, count in (("warm", warmup), ("measure", lookups)):
            if phase == "measure":
                pool.reset_stats()
                comp_start = counters.comparisons
            for _ in range(count):
                key = keys[rng.randrange(len(keys))]
                self.index.search(key)
                for page in self.index.path_pages(key):
                    pool.access(page)

        faults = pool.faults / lookups
        comparisons = (counters.comparisons - comp_start) / lookups
        cost = self.params.z * faults + self.comparison_weight * comparisons
        return AccessMeasurement(
            resident_fraction=resident_fraction,
            faults_per_lookup=faults,
            comparisons_per_lookup=comparisons,
            cost_per_lookup=cost,
        )

    def sweep(
        self, keys: Sequence, fractions: Sequence[float], lookups: int = 2000
    ) -> List[AccessMeasurement]:
        return [self.measure(keys, f, lookups) for f in fractions]


def build_indexes(
    n_keys: int, seed: int = 1984, btree_order: int = 64
) -> Tuple[AVLTree, BPlusTree, List[int]]:
    """Matched AVL and B+-tree over the same shuffled key set."""
    keys = list(range(n_keys))
    random.Random(seed).shuffle(keys)
    avl = AVLTree()
    btree = BPlusTree(order=btree_order)
    for k in keys:
        avl.insert(k, k)
        btree.insert(k, k)
    return avl, btree, keys


def measured_breakeven(
    n_keys: int = 4000,
    params: Optional[AccessMethodParameters] = None,
    lookups: int = 1500,
    resolution: int = 20,
    seed: int = 7,
) -> Optional[float]:
    """The *measured* residence fraction where the AVL tree starts winning.

    Both structures get the same absolute memory budget, expressed as a
    fraction of the AVL structure's pages (Table 1's H).  Returns ``None``
    if the AVL tree never wins on the swept grid.
    """
    params = params or AccessMethodParameters()
    avl, btree, keys = build_indexes(n_keys, seed)
    avl_sim = AccessSimulator(avl, params, seed=seed)
    bt_sim = AccessSimulator(btree, params, seed=seed)
    avl_pages = avl_sim.total_pages
    bt_pages = bt_sim.total_pages

    for i in range(resolution + 1):
        h = i / resolution
        memory_pages = h * avl_pages
        avl_cost = avl_sim.measure(keys, h, lookups).cost_per_lookup
        bt_fraction = min(1.0, memory_pages / bt_pages)
        bt_cost = bt_sim.measure(keys, bt_fraction, lookups).cost_per_lookup
        if avl_cost <= bt_cost:
            return h
    return None


__all__ = [
    "AccessMeasurement",
    "AccessSimulator",
    "build_indexes",
    "measured_breakeven",
    "structure_pages",
]
