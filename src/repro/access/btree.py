"""A B+-tree with page-structured nodes -- the disk-era incumbent.

Nodes are pages: an internal node holds up to ``order`` keys and
``order + 1`` child pointers; a leaf holds up to ``order`` distinct keys
with their value lists and a next-leaf pointer (the sequence set used by
the paper's sequential-access case).  Random insertion drives occupancy
toward Yao's ~69%, which :meth:`BPlusTree.average_fill` lets tests verify.

Within-node search is binary, so a lookup costs about ``log2(||R||)``
comparisons in total -- the ``C'`` of the Section 2 model -- while touching
only ``height + 1`` pages; :meth:`BPlusTree.path_pages` exposes the touched
page ids for the fault-model experiment.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right, insort
from typing import Any, Iterator, List, Optional, Tuple

from repro.access.interface import Index
from repro.cost.counters import OperationCounters
from repro.errors import ConfigurationError

DEFAULT_ORDER = 64


class _BNode:
    """Base class so both node kinds carry a page id."""

    __slots__ = ("node_id",)

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id


class _Leaf(_BNode):
    __slots__ = ("keys", "values", "next")

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.keys: List[Any] = []
        self.values: List[List[Any]] = []
        self.next: Optional["_Leaf"] = None


class _Internal(_BNode):
    __slots__ = ("keys", "children")

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.keys: List[Any] = []
        self.children: List[_BNode] = []


class BPlusTree(Index):
    """B+-tree over opaque values with duplicate-key support.

    ``order`` is the maximum number of keys per node.  Pass ``page_bytes``
    / ``key_bytes`` / ``pointer_bytes`` instead to derive the order the way
    the paper does (``p / (K + ptr)``).
    """

    def __init__(
        self,
        order: int = DEFAULT_ORDER,
        counters: Optional[OperationCounters] = None,
        page_bytes: Optional[int] = None,
        key_bytes: int = 8,
        pointer_bytes: int = 4,
    ) -> None:
        if page_bytes is not None:
            order = page_bytes // (key_bytes + pointer_bytes)
        if order < 3:
            raise ConfigurationError("B+-tree order must be at least 3")
        self.order = order
        self.counters = counters if counters is not None else OperationCounters()
        self._next_node_id = 0
        self._root: _BNode = self._new_leaf()
        self._size = 0
        self._distinct = 0
        self._height = 0  # levels of internal nodes above the leaves

    # -- node allocation -----------------------------------------------------------

    def _new_leaf(self) -> _Leaf:
        node = _Leaf(self._next_node_id)
        self._next_node_id += 1
        return node

    def _new_internal(self) -> _Internal:
        node = _Internal(self._next_node_id)
        self._next_node_id += 1
        return node

    # -- size / shape -----------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def distinct_keys(self) -> int:
        return self._distinct

    @property
    def height(self) -> int:
        """Number of internal levels above the leaf level."""
        return self._height

    def node_counts(self) -> Tuple[int, int]:
        """(internal nodes, leaf nodes)."""
        internal = leaves = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Leaf):
                leaves += 1
            else:
                internal += 1
                stack.extend(node.children)
        return internal, leaves

    def average_fill(self) -> float:
        """Mean node occupancy (keys / order) -- Yao predicts ~0.69."""
        total = count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += len(node.keys)
            count += 1
            if isinstance(node, _Internal):
                stack.extend(node.children)
        return total / (count * self.order) if count else 0.0

    # -- search ------------------------------------------------------------------------

    def _charge_node_search(self, node_keys: List[Any]) -> None:
        """Binary search within a node costs ~log2(len) comparisons."""
        n = len(node_keys)
        self.counters.compare(max(1, math.ceil(math.log2(n + 1))))

    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            self._charge_node_search(node.keys)
            node = node.children[bisect_right(node.keys, key)]
        return node

    def search(self, key: Any) -> List[Any]:
        leaf = self._find_leaf(key)
        self._charge_node_search(leaf.keys)
        i = bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            return list(leaf.values[i])
        return []

    def path_pages(self, key: Any) -> List[int]:
        """Page ids on the root-to-leaf path for ``key`` (height+1 pages)."""
        pages: List[int] = []
        node = self._root
        while isinstance(node, _Internal):
            pages.append(node.node_id)
            node = node.children[bisect_right(node.keys, key)]
        pages.append(node.node_id)
        return pages

    # -- insert -------------------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        split = self._insert(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = self._new_internal()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
        self._size += 1

    def _insert(
        self, node: _BNode, key: Any, value: Any
    ) -> Optional[Tuple[Any, _BNode]]:
        if isinstance(node, _Leaf):
            self._charge_node_search(node.keys)
            i = bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i].append(value)
                return None
            node.keys.insert(i, key)
            node.values.insert(i, [value])
            self._distinct += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None

        assert isinstance(node, _Internal)
        self._charge_node_search(node.keys)
        child_idx = bisect_right(node.keys, key)
        split = self._insert(node.children[child_idx], key, value)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(child_idx, sep)
        node.children.insert(child_idx + 1, right)
        if len(node.keys) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf) -> Tuple[Any, _Leaf]:
        mid = len(leaf.keys) // 2
        right = self._new_leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        # Moving half the entries to a fresh page is order/2 tuple moves.
        self.counters.move_tuple(len(right.keys))
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> Tuple[Any, _Internal]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = self._new_internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        self.counters.move_tuple(len(right.keys))
        return sep, right

    # -- delete -------------------------------------------------------------------------

    def delete(self, key: Any, value: Optional[Any] = None) -> int:
        removed = self._delete(self._root, key, value)
        if (
            isinstance(self._root, _Internal)
            and len(self._root.children) == 1
        ):
            self._root = self._root.children[0]
            self._height -= 1
        self._size -= removed
        return removed

    def _min_keys(self) -> int:
        return self.order // 2

    def _delete(self, node: _BNode, key: Any, value: Optional[Any]) -> int:
        if isinstance(node, _Leaf):
            self._charge_node_search(node.keys)
            i = bisect_left(node.keys, key)
            if i >= len(node.keys) or node.keys[i] != key:
                return 0
            if value is not None:
                try:
                    node.values[i].remove(value)
                except ValueError:
                    return 0
                removed = 1
                if node.values[i]:
                    return removed
            else:
                removed = len(node.values[i])
            del node.keys[i]
            del node.values[i]
            self._distinct -= 1
            return removed

        assert isinstance(node, _Internal)
        self._charge_node_search(node.keys)
        child_idx = bisect_right(node.keys, key)
        removed = self._delete(node.children[child_idx], key, value)
        if removed:
            self._rebalance_child(node, child_idx)
        return removed

    def _rebalance_child(self, parent: _Internal, idx: int) -> None:
        child = parent.children[idx]
        if len(child.keys) >= self._min_keys():
            return
        left = parent.children[idx - 1] if idx > 0 else None
        right = parent.children[idx + 1] if idx + 1 < len(parent.children) else None

        if left is not None and len(left.keys) > self._min_keys():
            self._borrow_from_left(parent, idx)
        elif right is not None and len(right.keys) > self._min_keys():
            self._borrow_from_right(parent, idx)
        elif left is not None:
            self._merge_children(parent, idx - 1)
        elif right is not None:
            self._merge_children(parent, idx)

    def _borrow_from_left(self, parent: _Internal, idx: int) -> None:
        left, child = parent.children[idx - 1], parent.children[idx]
        if isinstance(child, _Leaf):
            assert isinstance(left, _Leaf)
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[idx - 1] = child.keys[0]
        else:
            assert isinstance(left, _Internal) and isinstance(child, _Internal)
            child.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())
        self.counters.move_tuple()

    def _borrow_from_right(self, parent: _Internal, idx: int) -> None:
        child, right = parent.children[idx], parent.children[idx + 1]
        if isinstance(child, _Leaf):
            assert isinstance(right, _Leaf)
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[idx] = right.keys[0]
        else:
            assert isinstance(right, _Internal) and isinstance(child, _Internal)
            child.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            child.children.append(right.children.pop(0))
        self.counters.move_tuple()

    def _merge_children(self, parent: _Internal, idx: int) -> None:
        """Merge child ``idx+1`` into child ``idx``."""
        left, right = parent.children[idx], parent.children[idx + 1]
        if isinstance(left, _Leaf):
            assert isinstance(right, _Leaf)
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
        else:
            assert isinstance(left, _Internal) and isinstance(right, _Internal)
            left.keys.append(parent.keys[idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        self.counters.move_tuple(len(right.keys))
        del parent.keys[idx]
        del parent.children[idx + 1]

    # -- ordered access -----------------------------------------------------------------

    def range_scan(
        self, low: Optional[Any] = None, high: Optional[Any] = None
    ) -> Iterator[Tuple[Any, Any]]:
        """Sequence-set scan: one leaf page per ``~0.69 * order`` keys."""
        if low is None:
            leaf: Optional[_Leaf] = self._leftmost_leaf()
            start = 0
        else:
            leaf = self._find_leaf(low)
            start = bisect_left(leaf.keys, low)
        while leaf is not None:
            for i in range(start, len(leaf.keys)):
                key = leaf.keys[i]
                if high is not None and key > high:
                    return
                for value in leaf.values[i]:
                    yield key, value
            leaf = leaf.next
            start = 0

    def scan_pages(
        self, low: Optional[Any] = None, high: Optional[Any] = None
    ) -> Iterator[int]:
        """Leaf page ids a range scan touches (for the fault experiment)."""
        if low is None:
            leaf: Optional[_Leaf] = self._leftmost_leaf()
        else:
            leaf = self._find_leaf(low)
        while leaf is not None:
            if high is not None and leaf.keys and leaf.keys[0] > high:
                return
            yield leaf.node_id
            leaf = leaf.next

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node

    def minimum(self) -> Optional[Any]:
        leaf = self._leftmost_leaf()
        return leaf.keys[0] if leaf.keys else None

    def maximum(self) -> Optional[Any]:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[-1]
        return node.keys[-1] if node.keys else None

    # -- invariants ---------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` on any structural violation."""

        def walk(node: _BNode, lo: Optional[Any], hi: Optional[Any]) -> int:
            assert len(node.keys) <= self.order, "node overflow"
            assert node.keys == sorted(node.keys), "unsorted node keys"
            for k in node.keys:
                if lo is not None:
                    assert k >= lo, "key below subtree bound"
                if hi is not None:
                    assert k < hi, "key above subtree bound"
            if isinstance(node, _Leaf):
                assert len(node.keys) == len(node.values)
                for vals in node.values:
                    assert vals, "empty value list in leaf"
                return 0
            assert isinstance(node, _Internal)
            assert len(node.children) == len(node.keys) + 1
            depths = set()
            bounds = [lo] + list(node.keys) + [hi]
            for i, child in enumerate(node.children):
                depths.add(walk(child, bounds[i], bounds[i + 1]))
            assert len(depths) == 1, "leaves at unequal depth"
            return depths.pop() + 1

        depth = walk(self._root, None, None)
        assert depth == self._height, "cached height %d != actual %d" % (
            self._height,
            depth,
        )
        # Leaf chain covers every key in order.
        chained = [k for k, _ in self.range_scan()]
        assert chained == sorted(chained), "leaf chain out of order"

    def __repr__(self) -> str:
        return "BPlusTree(order=%d, %d values, %d keys, height=%d)" % (
            self.order,
            self._size,
            self._distinct,
            self._height,
        )


__all__ = ["BPlusTree", "DEFAULT_ORDER"]
