"""Enforced per-query memory grants.

The paper's Section 3 algorithms assume a fixed grant ``|M|``; under the
governor, each query instead receives a :class:`MemoryGrant` -- a live
page budget that memory-hungry operators consult at every structural
decision point (hybrid hash's partition fan-out, per-bucket hash-table
capacity) and that can **shrink mid-query** via :meth:`MemoryGrant.revoke`.

Revocation is how the governor reclaims memory under pressure without
killing queries: hybrid hash reacts by demoting its resident partition 0
to a spill bucket pair (degrading toward pure GRACE) and by recursing on
buckets that no longer fit, trading extra IO for staying inside the new
budget (see docs/ROBUSTNESS.md's degradation ladder).  The grant never
grows back within a query: a revocation is a one-way ratchet, so the
degradation decision points only ever see a shrinking budget.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError


class MemoryGrant:
    """A revocable page budget for one query."""

    __slots__ = ("qid", "granted", "pages", "peak_pages", "revocations")

    def __init__(self, pages: int, qid: Optional[int] = None) -> None:
        if pages < 2:
            raise ConfigurationError(
                "a memory grant needs at least two pages, got %r" % (pages,)
            )
        self.qid = qid
        #: The original grant, for reporting.
        self.granted = int(pages)
        #: The *current* budget; operators must fit inside this.
        self.pages = int(pages)
        #: High-water mark of pages operators reported in use.
        self.peak_pages = 0.0
        self.revocations = 0

    def effective(self, requested: int) -> int:
        """The pages an operator may actually use of ``requested``.

        Never below 2: the partitioned algorithms are undefined under two
        pages (one output buffer plus one working page), so revocation
        floors there rather than making the query unrunnable.
        """
        return max(2, min(int(requested), self.pages))

    def charge(self, pages: float) -> None:
        """Report ``pages`` currently in use (high-water accounting)."""
        if pages > self.peak_pages:
            self.peak_pages = pages

    def over_budget(self, pages: float) -> bool:
        """Whether a structure of ``pages`` no longer fits the budget."""
        return pages > self.pages

    def revoke(self, to_pages: int) -> int:
        """Shrink the budget to ``to_pages`` (floor 2); returns the new one.

        Raising the budget is ignored -- a grant only ratchets down, so a
        replayed fault schedule cannot un-degrade a query halfway through.
        """
        to_pages = max(2, int(to_pages))
        if to_pages < self.pages:
            self.pages = to_pages
            self.revocations += 1
        return self.pages

    def __repr__(self) -> str:
        return "MemoryGrant(qid=%s, %d/%d pages, peak=%.1f)" % (
            self.qid,
            self.pages,
            self.granted,
            self.peak_pages,
        )


__all__ = ["MemoryGrant"]
