"""Admission control and the query registry.

The governor guards two budgets -- concurrent queries and total granted
memory pages -- behind a bounded wait queue:

* A request that fits both budgets is admitted immediately and receives a
  :class:`QueryHandle` (qid + :class:`~repro.governor.guard.QueryGuard`).
* A request that does not fit waits on the queue for capacity, up to the
  admission timeout; a full queue rejects immediately.  Both failure
  modes are **typed**: :class:`~repro.errors.AdmissionRejected` (with a
  machine-readable ``reason``) and :class:`~repro.errors.QueryTimeout`.
* Before queueing a memory-blocked request, the governor applies
  **memory pressure** to its registered shrinkable consumers (the plan
  reuse cache), evicting LRU entries -- degrade the caches before
  degrading the queries.
* An admitted statement that blocks in the Section 5 lock table can
  **park** its slot (:meth:`Governor.begin_wait` /
  :meth:`Governor.end_wait`): admission capacity measures statements
  *running*, not statements *waiting*, so past saturation the gate keeps
  serving runnable work instead of filling with lock-waiters.
* Under overload the optional **shed valve**
  (:attr:`GovernorConfig.shed_threshold`) fast-rejects new requests with
  ``AdmissionRejected(reason="overload")`` once the wait queue is deep
  enough -- a typed "try again later" in microseconds beats a 10-second
  admission timeout.

Admission is thread-safe: the facade's ``execute`` runs on the caller's
thread, so concurrent callers genuinely contend here.  In the common
single-threaded use the fast path is one lock acquisition per query.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import (
    AdmissionRejected,
    ConfigurationError,
    QueryTimeout,
    StateError,
)
from repro.governor.breaker import CircuitBreaker
from repro.governor.cancellation import CancellationToken
from repro.governor.grant import MemoryGrant
from repro.governor.guard import QueryGuard
from repro.lint.runtime import tracked_lock


@dataclass
class GovernorConfig:
    """The governor's budgets and timeouts."""

    #: Queries running at once; further requests queue.
    max_concurrent: int = 8
    #: Total pages grantable across running queries (None: unlimited --
    #: the facade defaults it to ``memory_pages * max_concurrent`` so the
    #: single-query happy path is never throttled).
    max_memory_pages: Optional[int] = None
    #: Requests allowed to wait for capacity; more reject immediately.
    max_queue: int = 16
    #: Seconds a queued request may wait before raising QueryTimeout.
    admission_timeout: float = 10.0
    #: Overload shed valve: when this many requests are already waiting,
    #: a request that cannot be admitted immediately is fast-rejected
    #: (``AdmissionRejected(reason="overload")``) instead of queueing --
    #: degrade by answering "no" quickly, never by queueing unboundedly.
    #: ``None`` disables shedding (only the ``max_queue`` bound applies).
    #: Parked-slot reacquisition (:meth:`Governor.end_wait`) is exempt:
    #: those queries were already admitted once.
    shed_threshold: Optional[int] = None
    #: Default per-query execution deadline (None = no deadline).
    default_timeout: Optional[float] = None
    #: Seconds before a parallel bucket job's worker counts as failed.
    worker_timeout: float = 60.0
    #: Worker failures before the circuit breaker trips to workers=1.
    breaker_threshold: int = 3
    #: Fraction of a shrinkable consumer's entries kept under pressure.
    pressure_keep: float = 0.5

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ConfigurationError(
                "max_concurrent must be >= 1, got %r" % (self.max_concurrent,)
            )
        if self.max_queue < 0:
            raise ConfigurationError(
                "max_queue cannot be negative, got %r" % (self.max_queue,)
            )
        if not 0.0 <= self.pressure_keep <= 1.0:
            raise ConfigurationError(
                "pressure_keep must be in [0, 1], got %r" % (self.pressure_keep,)
            )
        if self.shed_threshold is not None and self.shed_threshold < 0:
            raise ConfigurationError(
                "shed_threshold cannot be negative, got %r"
                % (self.shed_threshold,)
            )


@dataclass
class QueryHandle:
    """One admitted query: its id, guard, and accounting."""

    qid: int
    guard: QueryGuard
    pages: int
    admitted_at: float

    @property
    def token(self) -> CancellationToken:
        return self.guard.token

    @property
    def grant(self) -> Optional[MemoryGrant]:
        return self.guard.grant


class Governor:
    """Admission control, the query registry, and session-wide breakers."""

    def __init__(self, config: Optional[GovernorConfig] = None) -> None:
        self.config = config or GovernorConfig()
        self.breaker = CircuitBreaker(self.config.breaker_threshold)
        # tracked_lock is the lock-order seam: a plain threading.Lock in
        # production, a recorded TrackedLock under the test suite.
        self._lock = tracked_lock("repro.governor.Governor._lock")
        self._capacity = threading.Condition(self._lock)
        self._qids = itertools.count(1)
        self._active: Dict[int, QueryHandle] = {}
        #: Admitted queries that released their slot for a lock wait
        #: (:meth:`begin_wait`); their pages are returned to the budget
        #: until :meth:`end_wait` (or :meth:`release`) claims them back.
        self._parked: Dict[int, QueryHandle] = {}
        self._pages_in_use = 0
        self._waiting = 0
        self._reacquiring = 0
        #: Consumers with a ``shrink_to(n)`` method and ``__len__`` (the
        #: plan reuse cache) evicted under memory pressure.
        self._shrinkables: List[Any] = []
        self._injector: Optional[Any] = None
        # Session statistics.
        self.admitted = 0
        self.rejected_queue_full = 0
        self.rejected_memory = 0
        self.admission_timeouts = 0
        self.cancelled = 0
        self.peak_concurrent = 0
        self.pressure_evictions = 0
        #: Admission-aware lock waits: slots given back mid-statement,
        #: successful reacquisitions, and shed-valve fast rejections.
        self.slots_released_in_wait = 0
        self.requeues = 0
        self.sheds = 0

    # -- wiring ------------------------------------------------------------------

    def attach_chaos(self, injector: Any) -> "Governor":
        """Route every token checkpoint through the fault injector's
        executor seam, so seeded plans can cancel queries and revoke
        grants at deterministic page boundaries."""
        with self._lock:
            self._injector = injector
        return self

    def register_shrinkable(self, consumer: Any) -> None:
        """Register a cache with ``shrink_to(n)`` for pressure eviction."""
        with self._lock:
            if consumer is not None and consumer not in self._shrinkables:
                self._shrinkables.append(consumer)

    # -- admission ---------------------------------------------------------------

    def _fits(self, pages: int) -> bool:
        if len(self._active) >= self.config.max_concurrent:
            return False
        budget = self.config.max_memory_pages
        return budget is None or self._pages_in_use + pages <= budget

    def admit(
        self,
        pages: int,
        qid: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> QueryHandle:
        """Admit a query needing ``pages``; block (bounded) for capacity.

        Raises :class:`AdmissionRejected` when the request can never fit
        or the wait queue is full, :class:`QueryTimeout` when capacity did
        not free up within the admission timeout.
        """
        cfg = self.config
        with self._capacity:
            if qid is None:
                qid = next(self._qids)
            budget = cfg.max_memory_pages
            if budget is not None and pages > budget:
                self.rejected_memory += 1
                raise AdmissionRejected(
                    "query %d needs %d pages but the governor's total "
                    "budget is %d" % (qid, pages, budget),
                    qid=qid,
                    reason="memory",
                )
            if not self._fits(pages):
                # Shed cache weight before shedding queries.
                self._apply_pressure_locked()
            if not self._fits(pages):
                if (
                    cfg.shed_threshold is not None
                    and self._waiting >= cfg.shed_threshold
                ):
                    # Overload: answer "no" in microseconds rather than
                    # parking the caller behind a queue it will likely
                    # time out of anyway (graceful degradation).
                    self.sheds += 1
                    raise AdmissionRejected(
                        "shedding load: %d requests already waiting "
                        "(shed threshold %d) for query %d"
                        % (self._waiting, cfg.shed_threshold, qid),
                        qid=qid,
                        reason="overload",
                    )
                if self._waiting >= cfg.max_queue:
                    self.rejected_queue_full += 1
                    raise AdmissionRejected(
                        "admission queue full (%d waiting) for query %d"
                        % (self._waiting, qid),
                        qid=qid,
                        reason="queue-full",
                    )
                self._waiting += 1
                deadline = time.monotonic() + cfg.admission_timeout
                try:
                    while not self._fits(pages):
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not self._capacity.wait(remaining):
                            if not self._fits(pages):
                                self.admission_timeouts += 1
                                raise QueryTimeout(
                                    "query %d waited %.3gs for admission "
                                    "without capacity freeing up"
                                    % (qid, cfg.admission_timeout),
                                    qid=qid,
                                )
                finally:
                    self._waiting -= 1
            return self._admit_locked(qid, pages, timeout)

    def _admit_locked(
        self, qid: int, pages: int, timeout: Optional[float]
    ) -> QueryHandle:
        token = CancellationToken(
            qid=qid,
            timeout=timeout if timeout is not None else self.config.default_timeout,
        )
        grant = MemoryGrant(max(2, pages), qid=qid)
        guard = QueryGuard(
            token=token,
            grant=grant,
            breaker=self.breaker,
            injector=self._injector,
            worker_timeout=self.config.worker_timeout,
        )
        if self._injector is not None:
            seam = getattr(self._injector, "executor_page", None)
            if seam is not None:
                token.on_check = lambda tok, g=grant: seam(tok, g)
        handle = QueryHandle(
            qid=qid, guard=guard, pages=pages, admitted_at=time.monotonic()
        )
        self._active[qid] = handle
        self._pages_in_use += pages
        self.admitted += 1
        self.peak_concurrent = max(self.peak_concurrent, len(self._active))
        return handle

    def release(self, handle: QueryHandle) -> None:
        """Return an admitted query's capacity and wake queued requests.

        Safe on a parked handle too (its pages were already returned at
        :meth:`begin_wait`; the registry entry is simply forgotten), so a
        single ``finally: release(handle)`` covers every exit path of a
        statement -- including a crash or abort while its slot was
        parked -- without leaking capacity.
        """
        with self._capacity:
            if self._active.pop(handle.qid, None) is not None:
                self._pages_in_use -= handle.pages
                self._capacity.notify_all()
            elif self._parked.pop(handle.qid, None) is not None:
                self._capacity.notify_all()

    # -- admission-aware lock waits ----------------------------------------------

    def begin_wait(self, handle: QueryHandle) -> None:
        """Park an admitted query: give its slot back while it blocks.

        The Section 5 lock table makes waits cheap, but a waiter that
        keeps its admission slot starves the queries that could actually
        run -- past saturation the gate fills with blocked statements and
        throughput collapses.  ``begin_wait`` moves the query from the
        active set to the parked set and returns its pages to the
        budget; the caller then blocks on the lock table (holding *no*
        governor capacity) and calls :meth:`end_wait` once its lock is
        granted.
        """
        with self._capacity:
            if handle.qid in self._parked:
                raise StateError(
                    "query %d is already parked" % handle.qid
                )
            if self._active.pop(handle.qid, None) is None:
                raise StateError(
                    "query %d is not active; cannot park its slot"
                    % handle.qid
                )
            self._parked[handle.qid] = handle
            self._pages_in_use -= handle.pages
            self.slots_released_in_wait += 1
            self._capacity.notify_all()

    def end_wait(
        self, handle: QueryHandle, timeout: Optional[float] = None
    ) -> None:
        """Reacquire a parked query's slot (bounded wait).

        Parked queries were already admitted once, so reacquisition
        bypasses the bounded queue and the shed valve -- it only waits
        for the concurrency/memory budgets themselves, for at most
        ``timeout`` (default: the admission timeout).  On timeout the
        handle *stays parked* (so ``release`` still cleans it up) and
        :class:`~repro.errors.QueryTimeout` is raised; the caller must
        abort the statement rather than run it uncounted.
        """
        cfg = self.config
        with self._capacity:
            if handle.qid not in self._parked:
                raise StateError(
                    "query %d is not parked; cannot reacquire" % handle.qid
                )
            bound = timeout if timeout is not None else cfg.admission_timeout
            deadline = time.monotonic() + bound
            self._reacquiring += 1
            try:
                while not self._fits(handle.pages):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._capacity.wait(remaining):
                        if not self._fits(handle.pages):
                            self.admission_timeouts += 1
                            raise QueryTimeout(
                                "query %d waited %.3gs to reacquire its "
                                "admission slot after a lock wait"
                                % (handle.qid, bound),
                                qid=handle.qid,
                            )
            finally:
                self._reacquiring -= 1
            del self._parked[handle.qid]
            self._active[handle.qid] = handle
            self._pages_in_use += handle.pages
            self.requeues += 1
            self.peak_concurrent = max(self.peak_concurrent, len(self._active))

    # -- lifecycle ---------------------------------------------------------------

    def cancel(self, qid: int) -> bool:
        """Cancel a running (or parked) query; True if it was known."""
        with self._lock:
            handle = self._active.get(qid) or self._parked.get(qid)
            if handle is None:
                return False
            handle.token.cancel()
            self.cancelled += 1
            return True

    def cancel_all(self) -> int:
        with self._lock:
            victims = list(self._active.values()) + list(self._parked.values())
            for handle in victims:
                handle.token.cancel()
            self.cancelled += len(victims)
            return len(victims)

    def revoke(self, qid: int, to_pages: int) -> Optional[int]:
        """Shrink a running query's grant; returns its new page budget.

        Also applies cache pressure: revocation means the system wants
        memory back, so the shrinkable consumers give theirs up first.
        """
        with self._lock:
            handle = self._active.get(qid)
            self._apply_pressure_locked()
            if handle is None or handle.grant is None:
                return None
            return handle.grant.revoke(to_pages)

    def _apply_pressure_locked(self) -> None:
        for consumer in self._shrinkables:
            try:
                keep = int(len(consumer) * self.config.pressure_keep)
                self.pressure_evictions += consumer.shrink_to(keep)
            except Exception:
                # A misbehaving cache must not take admission down.
                continue

    # -- reporting ---------------------------------------------------------------

    def active_qids(self) -> List[int]:
        with self._lock:
            return sorted(self._active)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "active": len(self._active),
                "pages_in_use": self._pages_in_use,
                "waiting": self._waiting,
                "parked": len(self._parked),
                "reacquiring": self._reacquiring,
                "slots_released_in_wait": self.slots_released_in_wait,
                "requeues": self.requeues,
                "sheds": self.sheds,
                "admitted": self.admitted,
                "rejected_queue_full": self.rejected_queue_full,
                "rejected_memory": self.rejected_memory,
                "admission_timeouts": self.admission_timeouts,
                "cancelled": self.cancelled,
                "peak_concurrent": self.peak_concurrent,
                "pressure_evictions": self.pressure_evictions,
                "breaker": self.breaker.stats(),
            }

    def __repr__(self) -> str:
        return "Governor(%d active, %d pages in use)" % (
            len(self._active),
            self._pages_in_use,
        )


__all__ = ["Governor", "GovernorConfig", "QueryHandle"]
