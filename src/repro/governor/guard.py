"""Per-query bundle of the governor's control surfaces.

A :class:`QueryGuard` is what actually travels through the executor: the
:class:`~repro.planner.plan.PlanContext` carries one, plan nodes hand its
token to the operators, and the join algorithms use the full guard for
grant-aware degradation and worker fault handling.  Everything is
optional -- a guard with only a token costs a single attribute test per
page on the happy path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.governor.breaker import CircuitBreaker
from repro.governor.cancellation import CancellationToken
from repro.governor.grant import MemoryGrant


@dataclass
class QueryGuard:
    """Cancellation + grant + breaker (+ chaos seam) for one query."""

    token: CancellationToken
    grant: Optional[MemoryGrant] = None
    breaker: Optional[CircuitBreaker] = None
    #: A :class:`repro.chaos.FaultInjector` (kept untyped to avoid a
    #: dependency from the governor onto the chaos package).
    injector: Optional[Any] = None
    #: Seconds a parallel bucket job may run before the coordinator
    #: declares the worker crashed/hung and retries serially.
    worker_timeout: float = 60.0

    @property
    def qid(self) -> Optional[int]:
        return self.token.qid

    def checkpoint(self) -> None:
        """One page-boundary check; raises the typed cancel/timeout errors."""
        self.token.check()

    def effective_pages(self, requested: int) -> int:
        """The memory grant's view of a ``requested``-page budget."""
        if self.grant is None:
            return requested
        return self.grant.effective(requested)

    def allows_parallel(self) -> bool:
        return self.breaker is None or self.breaker.allows_parallel()

    def record_worker_failure(self) -> None:
        if self.breaker is not None:
            self.breaker.record_failure()

    def worker_fault(self) -> Optional[str]:
        """Chaos directive for the next dispatched bucket job, if any."""
        if self.injector is None:
            return None
        fault = getattr(self.injector, "worker_fault", None)
        return fault() if fault is not None else None

    def resplit_fault(self) -> Optional[str]:
        """Chaos directive for the next adaptive re-split attempt, if any."""
        if self.injector is None:
            return None
        fault = getattr(self.injector, "resplit_fault", None)
        return fault() if fault is not None else None


__all__ = ["QueryGuard"]
