"""The resource governor -- query lifecycle control for the executor.

Every query the :class:`~repro.core.database.MainMemoryDatabase` facade
runs passes through this layer (docs/ROBUSTNESS.md):

* **Admission control** (:class:`Governor`) -- concurrent-query and
  total-memory-page budgets with a bounded wait queue; over-budget
  requests raise typed :class:`~repro.errors.AdmissionRejected` /
  :class:`~repro.errors.QueryTimeout` errors instead of thrashing.
* **Memory grants** (:class:`MemoryGrant`) -- a per-query page budget the
  memory-hungry operators charge against; a grant can be *revoked*
  mid-query, and hybrid hash degrades toward pure GRACE instead of
  crashing (the degradation ladder of docs/ROBUSTNESS.md).
* **Cooperative cancellation** (:class:`CancellationToken`) -- checked in
  every batch hot loop, so ``db.cancel(qid)`` and per-query deadlines
  abort within one page of work, never leaving a partial result.
* **Worker fault tolerance** (:class:`CircuitBreaker`) -- crashed or hung
  pool workers in the parallel partitioned joins are detected by
  timeout+sentinel, the affected buckets are retried serially with
  identical results and counters, and repeated failures trip the breaker
  back to ``workers=1``.

The pieces are bundled per query into a :class:`QueryGuard`, which the
planner's :class:`~repro.planner.plan.PlanContext` carries into the
operators and joins.
"""

from repro.errors import (
    AdmissionRejected,
    GovernorError,
    QueryCancelled,
    QueryTimeout,
    ReproError,
    WorkerPoolError,
)
from repro.governor.breaker import CircuitBreaker
from repro.governor.cancellation import CancellationToken
from repro.governor.governor import Governor, GovernorConfig, QueryHandle
from repro.governor.grant import MemoryGrant
from repro.governor.guard import QueryGuard

__all__ = [
    "AdmissionRejected",
    "CancellationToken",
    "CircuitBreaker",
    "Governor",
    "GovernorConfig",
    "GovernorError",
    "MemoryGrant",
    "QueryCancelled",
    "QueryGuard",
    "QueryHandle",
    "QueryTimeout",
    "ReproError",
    "WorkerPoolError",
]
