"""Cooperative cancellation -- the token every batch hot loop checks.

A :class:`CancellationToken` carries a cancel flag and an optional
monotonic-clock deadline.  Operators call :meth:`CancellationToken.check`
once per page of work (selection, projection, aggregation, and all five
joins), so a cancel or an expired deadline aborts within one page -- the
query raises a typed error and never emits a partial result.

``check()`` is deliberately tiny: on the happy path it is one attribute
test plus (only when a deadline is armed) one clock read, which is what
keeps the governor's overhead within the benchmarked bound
(benchmarks/bench_governor.py).

The optional ``on_check`` hook is the chaos seam: the fault injector
installs a callback there, turning every hot-loop checkpoint into a
schedulable point where a seeded plan can cancel the query or revoke its
memory grant deterministically (see
:meth:`repro.chaos.injector.FaultInjector.executor_page`).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import QueryCancelled, QueryTimeout


class CancellationToken:
    """Per-query cancel flag + deadline, checked cooperatively."""

    __slots__ = ("qid", "cancelled", "deadline", "checks", "on_check", "_clock")

    def __init__(
        self,
        qid: Optional[int] = None,
        timeout: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.qid = qid
        self.cancelled = False
        self._clock = clock
        #: Monotonic-clock instant after which check() raises QueryTimeout.
        self.deadline = None if timeout is None else clock() + timeout
        #: How many checkpoints this query has passed (one per page of
        #: work); doubles as the deterministic index for chaos plans.
        self.checks = 0
        #: Chaos seam -- called before the cancel/deadline tests.
        self.on_check: Optional[Callable[["CancellationToken"], None]] = None

    def cancel(self) -> None:
        """Request cancellation; takes effect at the next checkpoint."""
        self.cancelled = True

    def check(self) -> None:
        """Raise :class:`QueryCancelled`/:class:`QueryTimeout` if due."""
        self.checks += 1
        if self.on_check is not None:
            self.on_check(self)
        if self.cancelled:
            raise QueryCancelled(
                "query %s cancelled after %d checkpoints"
                % (self.qid, self.checks),
                qid=self.qid,
            )
        if self.deadline is not None and self._clock() > self.deadline:
            raise QueryTimeout(
                "query %s exceeded its deadline after %d checkpoints"
                % (self.qid, self.checks),
                qid=self.qid,
            )

    def expired(self) -> bool:
        """Whether the token would raise, without raising."""
        if self.cancelled:
            return True
        return self.deadline is not None and self._clock() > self.deadline

    def __repr__(self) -> str:
        return "CancellationToken(qid=%s, cancelled=%s, checks=%d)" % (
            self.qid,
            self.cancelled,
            self.checks,
        )


__all__ = ["CancellationToken"]
