"""Circuit breaker for the parallel join worker pool.

Worker failures (crashed or hung processes in GRACE/hybrid phase 2) are
individually recoverable -- the coordinator retries the affected buckets
serially with identical results and counters -- but *repeated* failures
mean the pool itself is unhealthy (fork bombs itself, cgroup OOM-kills,
a wedged libc lock), and the right move is to stop paying the retry tax:
the breaker **trips to workers=1** and every subsequent join in the
session runs serially until :meth:`CircuitBreaker.reset`.

The breaker is deliberately sticky (no half-open probing): worker pools
here are an optimisation, serial execution is always correct, and a
deterministic system under test is worth more than an adaptive one.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class CircuitBreaker:
    """Counts worker failures; trips parallel execution off."""

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ConfigurationError("breaker threshold must be >= 1")
        #: Failures (worker kill/hang/garbled result) before tripping.
        self.threshold = threshold
        self.failures = 0
        self.serial_retries = 0
        self.tripped = False

    def allows_parallel(self) -> bool:
        return not self.tripped

    def record_failure(self) -> bool:
        """Count one worker failure; returns True if the breaker tripped."""
        self.failures += 1
        self.serial_retries += 1
        if self.failures >= self.threshold:
            self.tripped = True
        return self.tripped

    def reset(self) -> None:
        self.failures = 0
        self.tripped = False

    def stats(self) -> dict:
        return {
            "failures": self.failures,
            "serial_retries": self.serial_retries,
            "tripped": self.tripped,
            "threshold": self.threshold,
        }

    def __repr__(self) -> str:
        return "CircuitBreaker(%d/%d failures%s)" % (
            self.failures,
            self.threshold,
            ", TRIPPED" if self.tripped else "",
        )


__all__ = ["CircuitBreaker"]
