"""Columnar batch-execution kernels and their counter charge helpers.

The PR-7 hot path: batch operators scan the packed column buffers of
:class:`~repro.storage.page.Page` directly instead of materialising row
tuples, and copy survivors column-to-column into the output relation.

Charging discipline: the helpers below are the *only* way the columnar
kernels touch :class:`~repro.cost.counters.OperationCounters`, and each
charges exactly what the historical tuple-at-a-time loop charges for the
same page of input -- the counter-parity lint knows them by name (see
``LintConfig.charge_helpers``) and the differential tests assert the
totals stay byte-identical across all three execution modes.
"""

from __future__ import annotations

from array import array
from typing import Any, List, Sequence, Tuple

from repro.cost.counters import OperationCounters
from repro.storage.codecs import Column, compress_column, np, packed_view
from repro.storage.page import Page
from repro.storage.relation import Relation


# -- charge helpers (registered in LintConfig.charge_helpers) ------------------


def charge_page_compares(counters: OperationCounters, n: int) -> None:
    """``n`` key comparisons for one page scanned by a columnar kernel."""
    counters.compare(n)


def charge_page_moves(counters: OperationCounters, n: int) -> None:
    """``n`` tuple moves for one page copied by a columnar kernel."""
    counters.move_tuple(n)


def charge_page_hashes(counters: OperationCounters, n: int) -> None:
    """``n`` key hashes for one page consumed by a columnar kernel."""
    counters.hash_key(n)


def charge_page_group(counters: OperationCounters, n: int) -> None:
    """One hash plus one group-entry comparison per tuple of a page."""
    counters.hash_key(n)
    counters.compare(n)


def charge_page_fetch(counters: OperationCounters, n: int) -> None:
    """``n`` TID fetches by an index scan: one compare + one move each."""
    counters.compare(n)
    counters.move_tuple(n)


# -- columnar kernels ----------------------------------------------------------


def page_keys(page: Page, indexes: Sequence[int]) -> List[Tuple[Any, ...]]:
    """Key tuples for every row of ``page``, extracted column-wise.

    Always yields tuples (1-tuples for a single column), exactly like
    :func:`~repro.storage.tuples.tuple_projector` -- the hash-aggregate
    spill partitioning hashes these keys, so the shape must not change.
    """
    cols = [page.column(i) for i in indexes]
    return list(zip(*cols))


def append_selected(out: Relation, page: Page, mask: Sequence[bool]) -> int:
    """Append the rows of ``page`` selected by ``mask``; return how many.

    Survivor columns flow buffer-to-buffer (``itertools.compress`` into a
    fresh packed array, or a vectorised take when the mask is a numpy
    boolean array) without building a single row tuple.
    """
    # numpy masks count at C speed; plain lists via the builtin.
    selected = int(mask.sum()) if hasattr(mask, "sum") else sum(mask)
    if not selected:
        return 0
    if selected == len(page):
        out.extend_columns(page.columns, selected)
    else:
        out.extend_columns(
            [compress_column(col, mask) for col in page.columns], selected
        )
    return selected


def gather_columns(
    columns: Sequence[Column], indices: Sequence[int]
) -> List[Column]:
    """Take the rows at ``indices`` out of ``columns``, column-by-column.

    The join kernels' group-gather: ``indices`` may repeat and need not be
    sorted (one build row matches many probe rows), and the output columns
    preserve packedness -- a packed buffer gathers through a vectorised
    take when numpy is around, one C-level ``map`` otherwise.  Gathering
    is uncharged, exactly like the row paths' tuple concatenation.
    """
    out: List[Column] = []
    idx = None
    for col in columns:
        view = packed_view(col)
        if view is not None:
            if idx is None:
                idx = np.fromiter(indices, dtype=np.intp, count=len(indices))
            taken = array(col.typecode)
            taken.frombytes(view[idx].tobytes())
            out.append(taken)
        elif type(col) is array:
            out.append(array(col.typecode, map(col.__getitem__, indices)))
        else:
            out.append(list(map(col.__getitem__, indices)))
    return out


__all__ = [
    "append_selected",
    "charge_page_compares",
    "charge_page_fetch",
    "charge_page_group",
    "charge_page_hashes",
    "charge_page_moves",
    "gather_columns",
    "page_keys",
]
