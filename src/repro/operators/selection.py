"""Selection: predicates and the scan / index-assisted operators.

Predicates form a small combinator algebra (:class:`Comparison` leaves with
``And`` / ``Or`` / ``Not``) so the Section 4 planner can inspect them for
selectivity estimation and index eligibility, rather than being handed an
opaque Python callable.
"""

from __future__ import annotations

import abc
import operator
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Tuple, Union

from repro.access.interface import Index
from repro.cost.counters import OperationCounters
from repro.operators.columnar import (
    append_selected,
    charge_page_compares,
    charge_page_fetch,
    charge_page_moves,
    gather_columns,
)
from repro.storage import codecs
from repro.storage.page import Page
from repro.storage.relation import Relation, Row
from repro.storage.tuples import Schema
from repro.errors import PlannerError

_OPS: dict = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Exactly-representable float64 integer bound (2**53).
_FLOAT_EXACT = 1 << 53


def _vector_exact(typecode: str, value: Any) -> bool:
    """Whether comparing a packed buffer against ``value`` in numpy is
    *exactly* Python's comparison semantics.

    Python compares int to float with full precision; numpy casts both
    sides to a common dtype first.  The cast is lossless only for an int
    constant within int64 range against an int64 buffer, or a constant
    whose float64 image is exact against a float64 buffer.  Everything
    else (huge ints, int buffers vs float constants) falls back to the
    per-element Python mask.
    """
    if type(value) is int:
        if typecode == codecs.INT_KIND:
            return -(1 << 63) <= value < (1 << 63)
        return -_FLOAT_EXACT <= value <= _FLOAT_EXACT
    if type(value) is float:
        return typecode == codecs.FLOAT_KIND
    return False


class Predicate(abc.ABC):
    """A boolean condition over one tuple of a known schema."""

    @abc.abstractmethod
    def evaluate(self, schema: Schema, row: Row) -> bool:
        """Whether ``row`` satisfies the predicate."""

    @abc.abstractmethod
    def comparisons(self) -> int:
        """Key comparisons one evaluation charges (for the cost model)."""

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        """A row -> bool closure with field indexes resolved up front.

        The batch executor evaluates predicates through this instead of
        :meth:`evaluate`, hoisting the ``schema.index_of`` lookups and the
        combinator-tree dispatch out of the per-tuple loop.  Semantics are
        identical to :meth:`evaluate` by construction.
        """
        return lambda row: self.evaluate(schema, row)

    def compile_mask(self, schema: Schema) -> Optional[Callable[[Page], List[bool]]]:
        """A page -> boolean-mask closure over the packed column buffers.

        The columnar batch executor evaluates predicates through this:
        one listcomp per page over a contiguous column instead of a
        closure call per row.  ``None`` means the predicate cannot be
        vectorised and the executor falls back to :meth:`compile`.
        """
        return None

    def columns(self) -> List[str]:
        """Column names the predicate references."""
        return []

    def fingerprint(self) -> Tuple[Any, ...]:
        """A canonical hashable form (for plan fingerprints)."""
        return ("pred", repr(self))

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column <op> constant`` for op in =, !=, <, <=, >, >=."""

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise PlannerError("unknown comparison operator %r" % self.op)

    def evaluate(self, schema: Schema, row: Row) -> bool:
        return _OPS[self.op](row[schema.index_of(self.column)], self.value)

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        idx = schema.index_of(self.column)
        op = _OPS[self.op]
        value = self.value
        return lambda row: op(row[idx], value)

    def compile_mask(self, schema: Schema) -> Optional[Callable[[Page], List[bool]]]:
        idx = schema.index_of(self.column)
        value = self.value
        op = _OPS[self.op]

        def masker(page: Page):
            col = page.column(idx)
            # Vectorised path: one C-level comparison over a zero-copy
            # view of the packed buffer, gated on exact semantics.
            if type(col) is codecs.array and _vector_exact(col.typecode, value):
                view = codecs.packed_view(col)
                if view is not None:
                    return op(view, value)
            return [op(v, value) for v in col]

        return masker

    def comparisons(self) -> int:
        return 1

    def columns(self) -> List[str]:
        return [self.column]

    def fingerprint(self) -> Tuple[Any, ...]:
        return ("cmp", self.column, self.op, self.value)

    @property
    def is_equality(self) -> bool:
        return self.op == "="


@dataclass(frozen=True)
class Prefix(Predicate):
    """``column = "J*"`` -- the paper's Section 2 sequential-access query.

    Matches string values starting with ``prefix``.  Served by an ordered
    index as the range ``[prefix, prefix + chr(max))``, which is exactly
    the "locate the first employee with a name beginning with J and then
    read sequentially" plan the paper analyses.
    """

    column: str
    prefix: str

    def __post_init__(self) -> None:
        if not self.prefix:
            raise PlannerError("empty prefix matches everything; use no "
                             "predicate instead")

    def evaluate(self, schema: Schema, row: Row) -> bool:
        value = row[schema.index_of(self.column)]
        return isinstance(value, str) and value.startswith(self.prefix)

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        idx = schema.index_of(self.column)
        prefix = self.prefix
        return lambda row: isinstance(row[idx], str) and row[idx].startswith(prefix)

    def compile_mask(self, schema: Schema) -> Optional[Callable[[Page], List[bool]]]:
        idx = schema.index_of(self.column)
        prefix = self.prefix
        return lambda page: [
            isinstance(v, str) and v.startswith(prefix) for v in page.column(idx)
        ]

    def comparisons(self) -> int:
        return 1

    def columns(self) -> List[str]:
        return [self.column]

    def fingerprint(self) -> Tuple[Any, ...]:
        return ("prefix", self.column, self.prefix)

    @property
    def range_bounds(self) -> Tuple[str, str]:
        """Half-open key range equivalent to the prefix match."""
        return self.prefix, self.prefix + chr(0x10FFFF)


@dataclass(frozen=True)
class And(Predicate):
    left: Predicate
    right: Predicate

    def evaluate(self, schema: Schema, row: Row) -> bool:
        return self.left.evaluate(schema, row) and self.right.evaluate(schema, row)

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        return lambda row: left(row) and right(row)

    def compile_mask(self, schema: Schema) -> Optional[Callable[[Page], List[bool]]]:
        left = self.left.compile_mask(schema)
        right = self.right.compile_mask(schema)
        if left is None or right is None:
            return None

        def masker(page: Page):
            a, b = left(page), right(page)
            if codecs.np is not None and isinstance(a, codecs.np.ndarray) \
                    and isinstance(b, codecs.np.ndarray):
                return a & b
            return [x and y for x, y in zip(a, b)]

        return masker

    def comparisons(self) -> int:
        return self.left.comparisons() + self.right.comparisons()

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()

    def fingerprint(self) -> Tuple[Any, ...]:
        return ("and", self.left.fingerprint(), self.right.fingerprint())


@dataclass(frozen=True)
class Or(Predicate):
    left: Predicate
    right: Predicate

    def evaluate(self, schema: Schema, row: Row) -> bool:
        return self.left.evaluate(schema, row) or self.right.evaluate(schema, row)

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        return lambda row: left(row) or right(row)

    def compile_mask(self, schema: Schema) -> Optional[Callable[[Page], List[bool]]]:
        left = self.left.compile_mask(schema)
        right = self.right.compile_mask(schema)
        if left is None or right is None:
            return None

        def masker(page: Page):
            a, b = left(page), right(page)
            if codecs.np is not None and isinstance(a, codecs.np.ndarray) \
                    and isinstance(b, codecs.np.ndarray):
                return a | b
            return [x or y for x, y in zip(a, b)]

        return masker

    def comparisons(self) -> int:
        return self.left.comparisons() + self.right.comparisons()

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()

    def fingerprint(self) -> Tuple[Any, ...]:
        return ("or", self.left.fingerprint(), self.right.fingerprint())


@dataclass(frozen=True)
class Not(Predicate):
    inner: Predicate

    def evaluate(self, schema: Schema, row: Row) -> bool:
        return not self.inner.evaluate(schema, row)

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        inner = self.inner.compile(schema)
        return lambda row: not inner(row)

    def compile_mask(self, schema: Schema) -> Optional[Callable[[Page], List[bool]]]:
        inner = self.inner.compile_mask(schema)
        if inner is None:
            return None

        def masker(page: Page):
            m = inner(page)
            if codecs.np is not None and isinstance(m, codecs.np.ndarray):
                return ~m
            return [not v for v in m]

        return masker

    def comparisons(self) -> int:
        return self.inner.comparisons()

    def columns(self) -> List[str]:
        return self.inner.columns()

    def fingerprint(self) -> Tuple[Any, ...]:
        return ("not", self.inner.fingerprint())


def select(
    relation: Relation,
    predicate: Predicate,
    counters: Optional[OperationCounters] = None,
    output_name: Optional[str] = None,
    batch: bool = True,
    token: Optional[Any] = None,
    columnar: bool = True,
) -> Relation:
    """Full-scan selection, charging the predicate's comparisons per tuple.

    The default batch path evaluates the predicate's columnar mask over
    each page's packed buffers and copies survivors column-to-column;
    ``columnar=False`` keeps the PR-2 page-at-a-time row loop, and
    ``batch=False`` the historical tuple-at-a-time loop.  All three
    produce identical outputs and identical counter totals (asserted by
    tests/test_batch_equivalence.py).

    ``token`` is a :class:`repro.governor.CancellationToken` checked once
    per page, so a cancelled or timed-out query stops scanning within one
    page of work.
    """
    counters = counters if counters is not None else OperationCounters()
    out = Relation(
        output_name or ("select(%s)" % relation.name),
        relation.schema,
        relation.page_bytes,
    )
    per_tuple = predicate.comparisons()
    if batch:
        masker = predicate.compile_mask(relation.schema) if columnar else None
        if masker is not None:
            for page in relation.pages:
                if token is not None:
                    token.check()
                charge_page_compares(counters, per_tuple * len(page))
                if len(page):
                    append_selected(out, page, masker(page))
            return out
        test = predicate.compile(relation.schema)
        for page in relation.pages:
            if token is not None:
                token.check()
            rows = page.tuples
            counters.compare(per_tuple * len(rows))
            out.extend_rows([row for row in rows if test(row)])
        return out
    tpp = max(1, relation.tuples_per_page)
    for i, row in enumerate(relation):
        if token is not None and i % tpp == 0:
            token.check()
        counters.compare(per_tuple)
        if predicate.evaluate(relation.schema, row):
            out.insert_unchecked(row)
    return out


def _gather_tid_runs(
    relation: Relation,
    out: Relation,
    tids: Iterable[Tuple[int, int]],
    counters: OperationCounters,
    equality: bool,
) -> None:
    """Materialise an index scan's TIDs buffer-to-buffer.

    ``tids`` arrive in index order; consecutive TIDs on the same page form
    a run that is charged in bulk (one compare plus one move per TID for
    range scans, one move for equality -- the same totals as the per-TID
    fetch loop) and gathered column-to-column through
    :meth:`~repro.storage.relation.Relation.extend_columns`, so no row
    tuple is ever built for the qualifying slice.
    """
    pages = relation.pages
    run_page = -1
    run_slots: List[int] = []

    def flush() -> None:
        if equality:
            charge_page_moves(counters, len(run_slots))
        else:
            charge_page_fetch(counters, len(run_slots))
        page = pages[run_page]
        out.extend_columns(
            gather_columns(page.columns, run_slots), len(run_slots)
        )

    for page_no, slot in tids:
        if page_no != run_page:
            if run_slots:
                flush()
                run_slots = []
            run_page = page_no
        run_slots.append(slot)
    if run_slots:
        flush()


def select_via_index(
    relation: Relation,
    index: Index,
    predicate: "Union[Comparison, Prefix]",
    counters: Optional[OperationCounters] = None,
    output_name: Optional[str] = None,
    token: Optional[Any] = None,
    columnar: bool = False,
) -> Relation:
    """Index-assisted selection for equality, range, and prefix predicates.

    The index stores TIDs into ``relation``; equality uses a point lookup,
    ranges and prefixes use
    :meth:`~repro.access.interface.Index.range_scan` when the index is
    ordered.  This is the paper's Section 2 access path -- both the
    ``emp.name = "Jones"`` and the ``emp.name = "J*"`` queries go through
    here.

    ``columnar=True`` keeps the probe itself unchanged but materialises
    the qualifying TIDs as a column feeding ``Relation.extend_columns``
    directly (see :func:`_gather_tid_runs`) instead of fetching row tuples
    one TID at a time.  Output rows, counter totals, and the cadence of
    ``token`` checks are identical either way.
    """
    counters = counters if counters is not None else OperationCounters()
    out = Relation(
        output_name or ("select(%s)" % relation.name),
        relation.schema,
        relation.page_bytes,
    )
    tpp = max(1, relation.tuples_per_page)
    if isinstance(predicate, Prefix):
        if not index.supports_range_scan:
            raise PlannerError(
                "prefix predicates need an ordered index on %r"
                % predicate.column
            )
        low, high = predicate.range_bounds
        if columnar:

            def prefix_tids() -> Iterable[Tuple[int, int]]:
                for i, (_key, tid) in enumerate(index.range_scan(low, high)):
                    if token is not None and i % tpp == 0:
                        token.check()
                    yield tid

            _gather_tid_runs(relation, out, prefix_tids(), counters, False)
            return out
        for i, (_key, tid) in enumerate(index.range_scan(low, high)):
            if token is not None and i % tpp == 0:
                token.check()
            counters.compare()
            counters.move_tuple()  # TID dereference
            out.insert_unchecked(relation.fetch(tid))
        return out
    if predicate.is_equality:
        if columnar:

            def equality_tids() -> Iterable[Tuple[int, int]]:
                for i, tid in enumerate(index.search(predicate.value)):
                    if token is not None and i % tpp == 0:
                        token.check()
                    yield tid

            _gather_tid_runs(relation, out, equality_tids(), counters, True)
            return out
        for i, tid in enumerate(index.search(predicate.value)):
            if token is not None and i % tpp == 0:
                token.check()
            counters.move_tuple()  # TID dereference
            out.insert_unchecked(relation.fetch(tid))
        return out
    if not index.supports_range_scan:
        raise PlannerError(
            "index on %r cannot serve a %r predicate; hash indexes only "
            "support equality" % (predicate.column, predicate.op)
        )
    low = high = None
    if predicate.op in (">", ">="):
        low = predicate.value
    elif predicate.op in ("<", "<="):
        high = predicate.value
    else:
        raise PlannerError("operator %r cannot use an index" % predicate.op)
    if columnar:

        def range_tids() -> Iterable[Tuple[int, int]]:
            for i, (key, tid) in enumerate(index.range_scan(low, high)):
                if token is not None and i % tpp == 0:
                    token.check()
                # Open endpoints: drop the boundary key itself.
                if predicate.op == ">" and key == predicate.value:
                    continue
                if predicate.op == "<" and key == predicate.value:
                    continue
                yield tid

        _gather_tid_runs(relation, out, range_tids(), counters, False)
        return out
    for i, (key, tid) in enumerate(index.range_scan(low, high)):
        if token is not None and i % tpp == 0:
            token.check()
        # Open endpoints: drop the boundary key itself.
        if predicate.op == ">" and key == predicate.value:
            continue
        if predicate.op == "<" and key == predicate.value:
            continue
        counters.compare()
        counters.move_tuple()  # TID dereference
        out.insert_unchecked(relation.fetch(tid))
    return out


__all__ = [
    "And",
    "Comparison",
    "Not",
    "Or",
    "Predicate",
    "Prefix",
    "select",
    "select_via_index",
]
