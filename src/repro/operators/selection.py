"""Selection: predicates and the scan / index-assisted operators.

Predicates form a small combinator algebra (:class:`Comparison` leaves with
``And`` / ``Or`` / ``Not``) so the Section 4 planner can inspect them for
selectivity estimation and index eligibility, rather than being handed an
opaque Python callable.
"""

from __future__ import annotations

import abc
import operator
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Tuple, Union

from repro.access.interface import Index
from repro.cost.counters import OperationCounters
from repro.storage.relation import Relation, Row
from repro.storage.tuples import Schema
from repro.errors import PlannerError

_OPS: dict = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Predicate(abc.ABC):
    """A boolean condition over one tuple of a known schema."""

    @abc.abstractmethod
    def evaluate(self, schema: Schema, row: Row) -> bool:
        """Whether ``row`` satisfies the predicate."""

    @abc.abstractmethod
    def comparisons(self) -> int:
        """Key comparisons one evaluation charges (for the cost model)."""

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        """A row -> bool closure with field indexes resolved up front.

        The batch executor evaluates predicates through this instead of
        :meth:`evaluate`, hoisting the ``schema.index_of`` lookups and the
        combinator-tree dispatch out of the per-tuple loop.  Semantics are
        identical to :meth:`evaluate` by construction.
        """
        return lambda row: self.evaluate(schema, row)

    def columns(self) -> List[str]:
        """Column names the predicate references."""
        return []

    def fingerprint(self) -> Tuple[Any, ...]:
        """A canonical hashable form (for plan fingerprints)."""
        return ("pred", repr(self))

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column <op> constant`` for op in =, !=, <, <=, >, >=."""

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise PlannerError("unknown comparison operator %r" % self.op)

    def evaluate(self, schema: Schema, row: Row) -> bool:
        return _OPS[self.op](row[schema.index_of(self.column)], self.value)

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        idx = schema.index_of(self.column)
        op = _OPS[self.op]
        value = self.value
        return lambda row: op(row[idx], value)

    def comparisons(self) -> int:
        return 1

    def columns(self) -> List[str]:
        return [self.column]

    def fingerprint(self) -> Tuple[Any, ...]:
        return ("cmp", self.column, self.op, self.value)

    @property
    def is_equality(self) -> bool:
        return self.op == "="


@dataclass(frozen=True)
class Prefix(Predicate):
    """``column = "J*"`` -- the paper's Section 2 sequential-access query.

    Matches string values starting with ``prefix``.  Served by an ordered
    index as the range ``[prefix, prefix + chr(max))``, which is exactly
    the "locate the first employee with a name beginning with J and then
    read sequentially" plan the paper analyses.
    """

    column: str
    prefix: str

    def __post_init__(self) -> None:
        if not self.prefix:
            raise PlannerError("empty prefix matches everything; use no "
                             "predicate instead")

    def evaluate(self, schema: Schema, row: Row) -> bool:
        value = row[schema.index_of(self.column)]
        return isinstance(value, str) and value.startswith(self.prefix)

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        idx = schema.index_of(self.column)
        prefix = self.prefix
        return lambda row: isinstance(row[idx], str) and row[idx].startswith(prefix)

    def comparisons(self) -> int:
        return 1

    def columns(self) -> List[str]:
        return [self.column]

    def fingerprint(self) -> Tuple[Any, ...]:
        return ("prefix", self.column, self.prefix)

    @property
    def range_bounds(self) -> Tuple[str, str]:
        """Half-open key range equivalent to the prefix match."""
        return self.prefix, self.prefix + chr(0x10FFFF)


@dataclass(frozen=True)
class And(Predicate):
    left: Predicate
    right: Predicate

    def evaluate(self, schema: Schema, row: Row) -> bool:
        return self.left.evaluate(schema, row) and self.right.evaluate(schema, row)

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        return lambda row: left(row) and right(row)

    def comparisons(self) -> int:
        return self.left.comparisons() + self.right.comparisons()

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()

    def fingerprint(self) -> Tuple[Any, ...]:
        return ("and", self.left.fingerprint(), self.right.fingerprint())


@dataclass(frozen=True)
class Or(Predicate):
    left: Predicate
    right: Predicate

    def evaluate(self, schema: Schema, row: Row) -> bool:
        return self.left.evaluate(schema, row) or self.right.evaluate(schema, row)

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        return lambda row: left(row) or right(row)

    def comparisons(self) -> int:
        return self.left.comparisons() + self.right.comparisons()

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()

    def fingerprint(self) -> Tuple[Any, ...]:
        return ("or", self.left.fingerprint(), self.right.fingerprint())


@dataclass(frozen=True)
class Not(Predicate):
    inner: Predicate

    def evaluate(self, schema: Schema, row: Row) -> bool:
        return not self.inner.evaluate(schema, row)

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        inner = self.inner.compile(schema)
        return lambda row: not inner(row)

    def comparisons(self) -> int:
        return self.inner.comparisons()

    def columns(self) -> List[str]:
        return self.inner.columns()

    def fingerprint(self) -> Tuple[Any, ...]:
        return ("not", self.inner.fingerprint())


def select(
    relation: Relation,
    predicate: Predicate,
    counters: Optional[OperationCounters] = None,
    output_name: Optional[str] = None,
    batch: bool = True,
    token: Optional[Any] = None,
) -> Relation:
    """Full-scan selection, charging the predicate's comparisons per tuple.

    The default batch path evaluates a precompiled predicate page-at-a-time
    and charges the counters in bulk; ``batch=False`` keeps the historical
    tuple-at-a-time loop.  Both produce identical outputs and identical
    counter totals (asserted by tests/test_batch_equivalence.py).

    ``token`` is a :class:`repro.governor.CancellationToken` checked once
    per page, so a cancelled or timed-out query stops scanning within one
    page of work.
    """
    counters = counters if counters is not None else OperationCounters()
    out = Relation(
        output_name or ("select(%s)" % relation.name),
        relation.schema,
        relation.page_bytes,
    )
    per_tuple = predicate.comparisons()
    if batch:
        test = predicate.compile(relation.schema)
        for page in relation.pages:
            if token is not None:
                token.check()
            rows = page.tuples
            counters.compare(per_tuple * len(rows))
            out.extend_rows([row for row in rows if test(row)])
        return out
    tpp = max(1, relation.tuples_per_page)
    for i, row in enumerate(relation):
        if token is not None and i % tpp == 0:
            token.check()
        counters.compare(per_tuple)
        if predicate.evaluate(relation.schema, row):
            out.insert_unchecked(row)
    return out


def select_via_index(
    relation: Relation,
    index: Index,
    predicate: "Union[Comparison, Prefix]",
    counters: Optional[OperationCounters] = None,
    output_name: Optional[str] = None,
    token: Optional[Any] = None,
) -> Relation:
    """Index-assisted selection for equality, range, and prefix predicates.

    The index stores TIDs into ``relation``; equality uses a point lookup,
    ranges and prefixes use
    :meth:`~repro.access.interface.Index.range_scan` when the index is
    ordered.  This is the paper's Section 2 access path -- both the
    ``emp.name = "Jones"`` and the ``emp.name = "J*"`` queries go through
    here.
    """
    counters = counters if counters is not None else OperationCounters()
    out = Relation(
        output_name or ("select(%s)" % relation.name),
        relation.schema,
        relation.page_bytes,
    )
    tpp = max(1, relation.tuples_per_page)
    if isinstance(predicate, Prefix):
        if not index.supports_range_scan:
            raise PlannerError(
                "prefix predicates need an ordered index on %r"
                % predicate.column
            )
        low, high = predicate.range_bounds
        for i, (_key, tid) in enumerate(index.range_scan(low, high)):
            if token is not None and i % tpp == 0:
                token.check()
            counters.compare()
            counters.move_tuple()  # TID dereference
            out.insert_unchecked(relation.fetch(tid))
        return out
    if predicate.is_equality:
        for i, tid in enumerate(index.search(predicate.value)):
            if token is not None and i % tpp == 0:
                token.check()
            counters.move_tuple()  # TID dereference
            out.insert_unchecked(relation.fetch(tid))
        return out
    if not index.supports_range_scan:
        raise PlannerError(
            "index on %r cannot serve a %r predicate; hash indexes only "
            "support equality" % (predicate.column, predicate.op)
        )
    low = high = None
    if predicate.op in (">", ">="):
        low = predicate.value
    elif predicate.op in ("<", "<="):
        high = predicate.value
    else:
        raise PlannerError("operator %r cannot use an index" % predicate.op)
    for i, (key, tid) in enumerate(index.range_scan(low, high)):
        if token is not None and i % tpp == 0:
            token.check()
        # Open endpoints: drop the boundary key itself.
        if predicate.op == ">" and key == predicate.value:
            continue
        if predicate.op == "<" and key == predicate.value:
            continue
        counters.compare()
        counters.move_tuple()  # TID dereference
        out.insert_unchecked(relation.fetch(tid))
    return out


__all__ = [
    "And",
    "Comparison",
    "Not",
    "Or",
    "Predicate",
    "Prefix",
    "select",
    "select_via_index",
]
