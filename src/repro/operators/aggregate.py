"""Aggregation with grouping -- the hash algorithms of Section 3.9.

"If there is enough memory to hold the result relation, then the fastest
algorithm will be a one pass hashing algorithm in which each incoming tuple
is hashed on the grouping attribute."  :func:`hash_aggregate` implements
that one-pass algorithm and, when the group table would overflow its memory
grant, degrades into the hybrid-hash variant the paper recommends: groups
already resident keep absorbing tuples, everything else is partitioned to
disk and aggregated bucket by bucket.

:func:`sort_aggregate` is the sort-based baseline (sort on the grouping
key, then fold adjacent runs of equal keys).
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
import operator
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cost.counters import OperationCounters, heap_push_charges
from repro.join.partition import SpillWriter, partition_hash, read_bucket
from repro.operators.columnar import charge_page_group, page_keys
from repro.storage.disk import SimulatedDisk
from repro.storage.relation import Relation, Row
from repro.storage.tuples import DataType, Field, Schema, tuple_projector
from repro.errors import PlannerError


class AggregateFunction(enum.Enum):
    """The aggregate functions supported by the reproduction."""

    COUNT = "count"
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    AVG = "avg"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate: ``function(column) AS alias``."""

    function: AggregateFunction
    column: Optional[str] = None  # COUNT may omit the column
    alias: Optional[str] = None

    def __post_init__(self) -> None:
        if self.function is not AggregateFunction.COUNT and self.column is None:
            raise PlannerError("%s requires a column" % self.function.value)

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        return "%s_%s" % (self.function.value, self.column or "all")


class _Accumulator:
    """Streaming state for one (group, aggregate) pair."""

    __slots__ = ("function", "count", "total", "extreme")

    def __init__(self, function: AggregateFunction) -> None:
        self.function = function
        self.count = 0
        self.total = 0.0
        self.extreme: Any = None

    def update(self, value: Any) -> None:
        self.count += 1
        if self.function in (AggregateFunction.SUM, AggregateFunction.AVG):
            self.total += value
        elif self.function is AggregateFunction.MIN:
            if self.extreme is None or value < self.extreme:
                self.extreme = value
        elif self.function is AggregateFunction.MAX:
            if self.extreme is None or value > self.extreme:
                self.extreme = value

    def result(self) -> Any:
        if self.function is AggregateFunction.COUNT:
            return self.count
        if self.function is AggregateFunction.SUM:
            return self.total
        if self.function is AggregateFunction.AVG:
            return self.total / self.count if self.count else 0.0
        return self.extreme


def _output_schema(
    schema: Schema, group_by: Sequence[str], aggregates: Sequence[AggregateSpec]
) -> Schema:
    fields: List[Field] = [schema.field(name) for name in group_by]
    for spec in aggregates:
        if spec.function is AggregateFunction.COUNT:
            dtype = DataType.INTEGER
        elif spec.function in (AggregateFunction.SUM, AggregateFunction.AVG):
            dtype = DataType.FLOAT
        else:
            dtype = schema.field(spec.column or "").dtype
        fields.append(Field(spec.output_name, dtype))
    if not fields:
        raise PlannerError("aggregation needs group-by columns or aggregates")
    return Schema(fields)


def _fold(
    groups: Dict[Tuple[Any, ...], List[_Accumulator]],
    key: Tuple[Any, ...],
    row: Row,
    agg_indexes: List[Optional[int]],
    aggregates: Sequence[AggregateSpec],
) -> None:
    accs = groups.get(key)
    if accs is None:
        accs = [_Accumulator(spec.function) for spec in aggregates]
        groups[key] = accs
    for acc, idx in zip(accs, agg_indexes):
        acc.update(row[idx] if idx is not None else 1)


def _emit_groups(
    out: Relation,
    groups: Dict[Tuple[Any, ...], List[_Accumulator]],
) -> None:
    out.extend_rows(
        [key + tuple(acc.result() for acc in accs) for key, accs in groups.items()]
    )


#: Distinguishes "no extreme yet" from any legal column value.
_MISSING = object()


def _hash_aggregate_columnar(
    relation: Relation,
    group_indexes: List[int],
    agg_indexes: List[Optional[int]],
    aggregates: Sequence[AggregateSpec],
    counters: OperationCounters,
    token: Optional[Any],
) -> List[Row]:
    """One-pass aggregation over packed column buffers; returns result rows.

    Only valid when the group table cannot overflow (no memory grant, so
    no spilling): group keys are scanned straight off the grouping
    column (scalar dict keys for a single column -- no per-row tuple),
    and each aggregate folds its value column in a dedicated tight loop
    over plain dicts instead of per-row ``_Accumulator`` method calls.

    Observational identity with the row paths is preserved carefully:
    group emit order is first-seen order, SUM/AVG totals start at ``0.0``
    and add in row order (same float rounding), and MIN/MAX keep the
    first extreme seen among equals.
    """
    single = len(group_indexes) == 1
    #: First-seen group order (dict used as an ordered set).
    order: Dict[Any, None] = {}
    states: List[Any] = []
    for spec in aggregates:
        if spec.function is AggregateFunction.AVG:
            states.append(({}, {}))  # totals, counts
        else:
            states.append({})

    for page in relation.pages:
        if token is not None:
            token.check()
        n = len(page)
        charge_page_group(counters, n)
        if not n:
            continue
        keys: Optional[Sequence[Any]]
        if not group_indexes:
            keys = None
            if () not in order:
                order[()] = None
        elif single:
            keys = page.column(group_indexes[0])
            for k in keys:
                if k not in order:
                    order[k] = None
        else:
            keys = page_keys(page, group_indexes)
            for k in keys:
                if k not in order:
                    order[k] = None
        for spec, idx, state in zip(aggregates, agg_indexes, states):
            func = spec.function
            col = page.column(idx) if idx is not None else None
            if keys is None:
                # Ungrouped: fold the whole column in one C-level call.
                if func is AggregateFunction.COUNT:
                    state[()] = state.get((), 0) + n
                elif func is AggregateFunction.SUM:
                    state[()] = sum(col, state.get((), 0.0))
                elif func is AggregateFunction.AVG:
                    totals, cnts = state
                    totals[()] = sum(col, totals.get((), 0.0))
                    cnts[()] = cnts.get((), 0) + n
                elif func is AggregateFunction.MIN:
                    m = min(col)
                    cur = state.get((), _MISSING)
                    if cur is _MISSING or m < cur:
                        state[()] = m
                else:
                    m = max(col)
                    cur = state.get((), _MISSING)
                    if cur is _MISSING or m > cur:
                        state[()] = m
            elif func is AggregateFunction.COUNT:
                get = state.get
                for k in keys:
                    state[k] = get(k, 0) + 1
            elif func is AggregateFunction.SUM:
                get = state.get
                for k, v in zip(keys, col):
                    state[k] = get(k, 0.0) + v
            elif func is AggregateFunction.AVG:
                totals, cnts = state
                tget = totals.get
                cget = cnts.get
                for k, v in zip(keys, col):
                    totals[k] = tget(k, 0.0) + v
                    cnts[k] = cget(k, 0) + 1
            elif func is AggregateFunction.MIN:
                get = state.get
                for k, v in zip(keys, col):
                    cur = get(k, _MISSING)
                    if cur is _MISSING or v < cur:
                        state[k] = v
            else:
                get = state.get
                for k, v in zip(keys, col):
                    cur = get(k, _MISSING)
                    if cur is _MISSING or v > cur:
                        state[k] = v

    rows: List[Row] = []
    for k in order:
        key = (k,) if single else k
        values: List[Any] = []
        for spec, state in zip(aggregates, states):
            if spec.function is AggregateFunction.AVG:
                totals, cnts = state
                c = cnts[k]
                values.append(totals[k] / c if c else 0.0)
            else:
                values.append(state[k])
        rows.append(key + tuple(values))
    return rows




def hash_aggregate(
    relation: Relation,
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
    counters: Optional[OperationCounters] = None,
    memory_pages: Optional[int] = None,
    fudge: float = 1.2,
    disk: Optional[SimulatedDisk] = None,
    output_name: Optional[str] = None,
    batch: bool = True,
    token: Optional[Any] = None,
    columnar: bool = True,
    _depth: int = 0,
) -> Relation:
    """One-pass hash aggregation with hybrid-hash overflow.

    Every tuple charges one ``hash`` (grouping attribute) and one
    comparison against its group entry.  When ``memory_pages`` is given and
    the group table outgrows ``memory_pages * tuples_per_page / fudge``
    entries, new groups stop being admitted: their tuples spill into hash
    partitions (one ``move`` plus IO, via ``disk``) which are then
    aggregated recursively -- the "variant of the hybrid-hash algorithm"
    the paper recommends when the result exceeds memory.

    The default ``batch`` path walks pages with a hoisted key extractor
    and charges the hash/compare counters in page-sized bulk; spill order,
    results, and counter totals are identical to ``batch=False``.  When no
    memory grant caps the group table (``memory_pages is None``, so no
    tuple can ever spill) the default ``columnar`` path drops to
    :func:`_hash_aggregate_columnar`, folding packed column buffers with
    per-aggregate tight loops -- again bit-identical rows and counters.

    ``token`` is a :class:`repro.governor.CancellationToken` checked once
    per page of input (and through every overflow recursion level).
    """
    counters = counters if counters is not None else OperationCounters()
    out_schema = _output_schema(relation.schema, group_by, aggregates)
    out = Relation(
        output_name or ("agg(%s)" % relation.name), out_schema, relation.page_bytes
    )

    group_indexes = [relation.schema.index_of(n) for n in group_by]
    agg_indexes: List[Optional[int]] = [
        relation.schema.index_of(s.column) if s.column is not None else None
        for s in aggregates
    ]

    capacity = None
    if memory_pages is not None:
        capacity = max(1, int(memory_pages * relation.tuples_per_page / fudge))

    groups: Dict[Tuple[Any, ...], List[_Accumulator]] = {}
    writer: Optional[SpillWriter] = None
    spill_files: List[str] = []
    buckets = 4

    def ensure_writer() -> SpillWriter:
        nonlocal disk, writer, spill_files
        if writer is None:
            if disk is None:
                disk = SimulatedDisk(counters)
            spill_files = [
                "agg:%s:%d.%d" % (relation.name, _depth, i) for i in range(buckets)
            ]
            writer = SpillWriter(
                disk, spill_files, relation.tuples_per_page, counters
            )
        return writer

    if batch:
        if columnar and capacity is None:
            out.extend_rows(
                _hash_aggregate_columnar(
                    relation, group_indexes, agg_indexes, aggregates,
                    counters, token,
                )
            )
            return out
        keyfn = tuple_projector(group_indexes)
        get = groups.get
        for page in relation.pages:
            if token is not None:
                token.check()
            rows = page.tuples
            counters.hash_key(len(rows))
            counters.compare(len(rows))
            for row in rows:
                key = keyfn(row)
                accs = get(key)
                if accs is None:
                    if capacity is not None and len(groups) >= capacity:
                        ensure_writer().write(
                            partition_hash((_depth, key)) % buckets, row
                        )
                        continue
                    accs = [_Accumulator(spec.function) for spec in aggregates]
                    groups[key] = accs
                for acc, idx in zip(accs, agg_indexes):
                    acc.update(row[idx] if idx is not None else 1)
    else:
        tpp = max(1, relation.tuples_per_page)
        for n, row in enumerate(relation):
            if token is not None and n % tpp == 0:
                token.check()
            key = tuple(row[i] for i in group_indexes)
            counters.hash_key()
            counters.compare()
            if key in groups or capacity is None or len(groups) < capacity:
                _fold(groups, key, row, agg_indexes, aggregates)
                continue
            # Overflow: this tuple's group cannot be admitted; partition it.
            # Salt the bucket hash with the recursion depth so a
            # re-partitioned bucket actually splits (the paper's "apply the
            # hybrid hash join recursively, adding an extra pass for the
            # overflow tuples").
            ensure_writer().write(partition_hash((_depth, key)) % buckets, row)

    _emit_groups(out, groups)

    if writer is not None:
        writer.close()
        for file_name in spill_files:
            rows = read_bucket(disk, file_name)
            disk.delete(file_name)
            if not rows:
                continue
            bucket_rel = Relation(
                "%s.bucket" % relation.name, relation.schema, relation.page_bytes
            )
            bucket_rel.extend_rows(rows)
            partial = hash_aggregate(
                bucket_rel,
                group_by,
                aggregates,
                counters=counters,
                memory_pages=memory_pages,
                fudge=fudge,
                disk=disk,
                batch=batch,
                token=token,
                columnar=columnar,
                _depth=_depth + 1,
            )
            for page in partial.pages:
                out.extend_rows(page.tuples)
    return out


def _sort_aggregate_columnar(
    relation: Relation,
    group_indexes: Sequence[int],
    agg_indexes: Sequence[Optional[int]],
    aggregates: Sequence[AggregateSpec],
    counters: OperationCounters,
    token: Optional[Any],
) -> List[Row]:
    """Sort-aggregate over packed columns: argsort keys, fold segments.

    Observationally identical to the pair-sort-then-accumulate batch arm:

    * Keys sort stably by position, exactly like the stable pair sort.
      Single-column groups sort the bare scalars -- ``(a,) < (b,)`` is
      ``a < b``, so the order cannot differ from 1-tuples.
    * Group boundaries use ``is``-then-``==``, the same identity shortcut
      tuple equality applies element-wise in the pair path.
    * Fold order within a group is ascending position (stable sort), the
      same float-addition sequence the accumulators see; SUM/AVG start at
      0.0 and MIN/MAX keep the first extreme, mirroring
      :class:`_Accumulator` exactly (including its None bootstrap).
    * Charges are the arithmetic heap totals plus one neighbour check per
      tuple -- identical numbers to the pair path.
    """
    single = len(group_indexes) == 1
    keys: List[Any] = []
    acols: List[Optional[List[Any]]] = [
        None if idx is None else [] for idx in agg_indexes
    ]
    for page in relation.pages:
        if token is not None:
            token.check()
        if not len(page):
            continue
        if single:
            keys.extend(page.column(group_indexes[0]))
        else:
            keys.extend(page_keys(page, group_indexes))
        for vals, idx in zip(acols, agg_indexes):
            if vals is not None:
                vals.extend(page.column(idx))

    charges = heap_push_charges(len(keys))
    counters.compare(charges)
    counters.swap_tuples(charges)
    order = sorted(range(len(keys)), key=keys.__getitem__)
    counters.compare(len(keys))  # one neighbour check per pop

    emitted: List[Row] = []
    n = len(keys)
    i = 0
    while i < n:
        k = keys[order[i]]
        j = i + 1
        while j < n:
            kj = keys[order[j]]
            if kj is k or kj == k:
                j += 1
            else:
                break
        seg = order[i:j]
        out_vals: List[Any] = []
        for spec, vals in zip(aggregates, acols):
            f = spec.function
            if f is AggregateFunction.COUNT:
                out_vals.append(j - i)
            elif f is AggregateFunction.SUM or f is AggregateFunction.AVG:
                total = 0.0
                for p in seg:
                    total += vals[p]
                out_vals.append(total if f is AggregateFunction.SUM
                                else total / (j - i))
            else:
                want_min = f is AggregateFunction.MIN
                cur: Any = None
                for p in seg:
                    v = vals[p]
                    if cur is None or (v < cur if want_min else v > cur):
                        cur = v
                out_vals.append(cur)
        emitted.append(((k,) if single else k) + tuple(out_vals))
        i = j
    return emitted


def sort_aggregate(
    relation: Relation,
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
    counters: Optional[OperationCounters] = None,
    output_name: Optional[str] = None,
    batch: bool = True,
    token: Optional[Any] = None,
    columnar: bool = True,
) -> Relation:
    """Sort-based baseline: heap-sort on the grouping key, fold neighbours.

    Charges ``log2(n)`` comparisons and swaps per tuple for the sort (the
    priority-queue accounting of Section 3.4) plus one comparison per tuple
    for the neighbour check.

    The ``batch`` path replaces the explicit heap with a stable
    ``list.sort`` (identical order: heap entries carry an insertion
    sequence number, so pops come out in stable key order) and computes
    the heap-operation charges arithmetically -- same results, same
    counter totals.
    """
    counters = counters if counters is not None else OperationCounters()
    out_schema = _output_schema(relation.schema, group_by, aggregates)
    out = Relation(
        output_name or ("agg(%s)" % relation.name), out_schema, relation.page_bytes
    )
    group_indexes = [relation.schema.index_of(n) for n in group_by]
    agg_indexes: List[Optional[int]] = [
        relation.schema.index_of(s.column) if s.column is not None else None
        for s in aggregates
    ]

    if batch:
        if columnar and group_indexes:
            out.extend_rows(
                _sort_aggregate_columnar(
                    relation, group_indexes, agg_indexes, aggregates,
                    counters, token,
                )
            )
            return out
        keyfn = tuple_projector(group_indexes)
        pairs: List[Tuple[Tuple[Any, ...], Row]] = []
        for page in relation.pages:
            if token is not None:
                token.check()
            pairs.extend((keyfn(row), row) for row in page.tuples)
        charges = heap_push_charges(len(pairs))
        counters.compare(charges)
        counters.swap_tuples(charges)
        # Stable sort by key == heap order with the sequence tiebreak.
        pairs.sort(key=operator.itemgetter(0))
        counters.compare(len(pairs))  # one neighbour check per pop
        ordered: Iterable[Tuple[Tuple[Any, ...], Row]] = pairs
    else:
        heap: List[Tuple[Tuple[Any, ...], int, Row]] = []
        seq = itertools.count()
        tpp = max(1, relation.tuples_per_page)
        for n, row in enumerate(relation):
            if token is not None and n % tpp == 0:
                token.check()
            levels = max(1, math.ceil(math.log2(len(heap) + 2)))
            counters.compare(levels)
            counters.swap_tuples(levels)
            heapq.heappush(
                heap, (tuple(row[i] for i in group_indexes), next(seq), row)
            )

        def _pop_all() -> Iterable[Tuple[Tuple[Any, ...], Row]]:
            while heap:
                key, _, row = heapq.heappop(heap)
                counters.compare()
                yield key, row

        ordered = _pop_all()

    current: Optional[Tuple[Any, ...]] = None
    accs: List[_Accumulator] = []
    emitted: List[Row] = []
    for key, row in ordered:
        if key != current:
            if current is not None:
                emitted.append(current + tuple(a.result() for a in accs))
            current = key
            accs = [_Accumulator(spec.function) for spec in aggregates]
        for acc, idx in zip(accs, agg_indexes):
            acc.update(row[idx] if idx is not None else 1)
    if current is not None:
        emitted.append(current + tuple(a.result() for a in accs))
    out.extend_rows(emitted)
    return out


__all__ = [
    "AggregateFunction",
    "AggregateSpec",
    "hash_aggregate",
    "sort_aggregate",
]
