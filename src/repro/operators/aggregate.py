"""Aggregation with grouping -- the hash algorithms of Section 3.9.

"If there is enough memory to hold the result relation, then the fastest
algorithm will be a one pass hashing algorithm in which each incoming tuple
is hashed on the grouping attribute."  :func:`hash_aggregate` implements
that one-pass algorithm and, when the group table would overflow its memory
grant, degrades into the hybrid-hash variant the paper recommends: groups
already resident keep absorbing tuples, everything else is partitioned to
disk and aggregated bucket by bucket.

:func:`sort_aggregate` is the sort-based baseline (sort on the grouping
key, then fold adjacent runs of equal keys).
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
import operator
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cost.counters import OperationCounters, heap_push_charges
from repro.join.partition import SpillWriter, partition_hash, read_bucket
from repro.storage.disk import SimulatedDisk
from repro.storage.relation import Relation, Row
from repro.storage.tuples import DataType, Field, Schema, tuple_projector
from repro.errors import PlannerError


class AggregateFunction(enum.Enum):
    """The aggregate functions supported by the reproduction."""

    COUNT = "count"
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    AVG = "avg"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate: ``function(column) AS alias``."""

    function: AggregateFunction
    column: Optional[str] = None  # COUNT may omit the column
    alias: Optional[str] = None

    def __post_init__(self) -> None:
        if self.function is not AggregateFunction.COUNT and self.column is None:
            raise PlannerError("%s requires a column" % self.function.value)

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        return "%s_%s" % (self.function.value, self.column or "all")


class _Accumulator:
    """Streaming state for one (group, aggregate) pair."""

    __slots__ = ("function", "count", "total", "extreme")

    def __init__(self, function: AggregateFunction) -> None:
        self.function = function
        self.count = 0
        self.total = 0.0
        self.extreme: Any = None

    def update(self, value: Any) -> None:
        self.count += 1
        if self.function in (AggregateFunction.SUM, AggregateFunction.AVG):
            self.total += value
        elif self.function is AggregateFunction.MIN:
            if self.extreme is None or value < self.extreme:
                self.extreme = value
        elif self.function is AggregateFunction.MAX:
            if self.extreme is None or value > self.extreme:
                self.extreme = value

    def result(self) -> Any:
        if self.function is AggregateFunction.COUNT:
            return self.count
        if self.function is AggregateFunction.SUM:
            return self.total
        if self.function is AggregateFunction.AVG:
            return self.total / self.count if self.count else 0.0
        return self.extreme


def _output_schema(
    schema: Schema, group_by: Sequence[str], aggregates: Sequence[AggregateSpec]
) -> Schema:
    fields: List[Field] = [schema.field(name) for name in group_by]
    for spec in aggregates:
        if spec.function is AggregateFunction.COUNT:
            dtype = DataType.INTEGER
        elif spec.function in (AggregateFunction.SUM, AggregateFunction.AVG):
            dtype = DataType.FLOAT
        else:
            dtype = schema.field(spec.column or "").dtype
        fields.append(Field(spec.output_name, dtype))
    if not fields:
        raise PlannerError("aggregation needs group-by columns or aggregates")
    return Schema(fields)


def _fold(
    groups: Dict[Tuple[Any, ...], List[_Accumulator]],
    key: Tuple[Any, ...],
    row: Row,
    agg_indexes: List[Optional[int]],
    aggregates: Sequence[AggregateSpec],
) -> None:
    accs = groups.get(key)
    if accs is None:
        accs = [_Accumulator(spec.function) for spec in aggregates]
        groups[key] = accs
    for acc, idx in zip(accs, agg_indexes):
        acc.update(row[idx] if idx is not None else 1)


def _emit_groups(
    out: Relation,
    groups: Dict[Tuple[Any, ...], List[_Accumulator]],
) -> None:
    out.extend_rows(
        [key + tuple(acc.result() for acc in accs) for key, accs in groups.items()]
    )




def hash_aggregate(
    relation: Relation,
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
    counters: Optional[OperationCounters] = None,
    memory_pages: Optional[int] = None,
    fudge: float = 1.2,
    disk: Optional[SimulatedDisk] = None,
    output_name: Optional[str] = None,
    batch: bool = True,
    token: Optional[Any] = None,
    _depth: int = 0,
) -> Relation:
    """One-pass hash aggregation with hybrid-hash overflow.

    Every tuple charges one ``hash`` (grouping attribute) and one
    comparison against its group entry.  When ``memory_pages`` is given and
    the group table outgrows ``memory_pages * tuples_per_page / fudge``
    entries, new groups stop being admitted: their tuples spill into hash
    partitions (one ``move`` plus IO, via ``disk``) which are then
    aggregated recursively -- the "variant of the hybrid-hash algorithm"
    the paper recommends when the result exceeds memory.

    The default ``batch`` path walks pages with a hoisted key extractor
    and charges the hash/compare counters in page-sized bulk; spill order,
    results, and counter totals are identical to ``batch=False``.

    ``token`` is a :class:`repro.governor.CancellationToken` checked once
    per page of input (and through every overflow recursion level).
    """
    counters = counters if counters is not None else OperationCounters()
    out_schema = _output_schema(relation.schema, group_by, aggregates)
    out = Relation(
        output_name or ("agg(%s)" % relation.name), out_schema, relation.page_bytes
    )

    group_indexes = [relation.schema.index_of(n) for n in group_by]
    agg_indexes: List[Optional[int]] = [
        relation.schema.index_of(s.column) if s.column is not None else None
        for s in aggregates
    ]

    capacity = None
    if memory_pages is not None:
        capacity = max(1, int(memory_pages * relation.tuples_per_page / fudge))

    groups: Dict[Tuple[Any, ...], List[_Accumulator]] = {}
    writer: Optional[SpillWriter] = None
    spill_files: List[str] = []
    buckets = 4

    def ensure_writer() -> SpillWriter:
        nonlocal disk, writer, spill_files
        if writer is None:
            if disk is None:
                disk = SimulatedDisk(counters)
            spill_files = [
                "agg:%s:%d.%d" % (relation.name, _depth, i) for i in range(buckets)
            ]
            writer = SpillWriter(
                disk, spill_files, relation.tuples_per_page, counters
            )
        return writer

    if batch:
        keyfn = tuple_projector(group_indexes)
        get = groups.get
        for page in relation.pages:
            if token is not None:
                token.check()
            rows = page.tuples
            counters.hash_key(len(rows))
            counters.compare(len(rows))
            for row in rows:
                key = keyfn(row)
                accs = get(key)
                if accs is None:
                    if capacity is not None and len(groups) >= capacity:
                        ensure_writer().write(
                            partition_hash((_depth, key)) % buckets, row
                        )
                        continue
                    accs = [_Accumulator(spec.function) for spec in aggregates]
                    groups[key] = accs
                for acc, idx in zip(accs, agg_indexes):
                    acc.update(row[idx] if idx is not None else 1)
    else:
        tpp = max(1, relation.tuples_per_page)
        for n, row in enumerate(relation):
            if token is not None and n % tpp == 0:
                token.check()
            key = tuple(row[i] for i in group_indexes)
            counters.hash_key()
            counters.compare()
            if key in groups or capacity is None or len(groups) < capacity:
                _fold(groups, key, row, agg_indexes, aggregates)
                continue
            # Overflow: this tuple's group cannot be admitted; partition it.
            # Salt the bucket hash with the recursion depth so a
            # re-partitioned bucket actually splits (the paper's "apply the
            # hybrid hash join recursively, adding an extra pass for the
            # overflow tuples").
            ensure_writer().write(partition_hash((_depth, key)) % buckets, row)

    _emit_groups(out, groups)

    if writer is not None:
        writer.close()
        for file_name in spill_files:
            rows = read_bucket(disk, file_name)
            disk.delete(file_name)
            if not rows:
                continue
            bucket_rel = Relation(
                "%s.bucket" % relation.name, relation.schema, relation.page_bytes
            )
            bucket_rel.extend_rows(rows)
            partial = hash_aggregate(
                bucket_rel,
                group_by,
                aggregates,
                counters=counters,
                memory_pages=memory_pages,
                fudge=fudge,
                disk=disk,
                batch=batch,
                token=token,
                _depth=_depth + 1,
            )
            for page in partial.pages:
                out.extend_rows(page.tuples)
    return out


def sort_aggregate(
    relation: Relation,
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
    counters: Optional[OperationCounters] = None,
    output_name: Optional[str] = None,
    batch: bool = True,
    token: Optional[Any] = None,
) -> Relation:
    """Sort-based baseline: heap-sort on the grouping key, fold neighbours.

    Charges ``log2(n)`` comparisons and swaps per tuple for the sort (the
    priority-queue accounting of Section 3.4) plus one comparison per tuple
    for the neighbour check.

    The ``batch`` path replaces the explicit heap with a stable
    ``list.sort`` (identical order: heap entries carry an insertion
    sequence number, so pops come out in stable key order) and computes
    the heap-operation charges arithmetically -- same results, same
    counter totals.
    """
    counters = counters if counters is not None else OperationCounters()
    out_schema = _output_schema(relation.schema, group_by, aggregates)
    out = Relation(
        output_name or ("agg(%s)" % relation.name), out_schema, relation.page_bytes
    )
    group_indexes = [relation.schema.index_of(n) for n in group_by]
    agg_indexes: List[Optional[int]] = [
        relation.schema.index_of(s.column) if s.column is not None else None
        for s in aggregates
    ]

    if batch:
        keyfn = tuple_projector(group_indexes)
        pairs: List[Tuple[Tuple[Any, ...], Row]] = []
        for page in relation.pages:
            if token is not None:
                token.check()
            pairs.extend((keyfn(row), row) for row in page.tuples)
        charges = heap_push_charges(len(pairs))
        counters.compare(charges)
        counters.swap_tuples(charges)
        # Stable sort by key == heap order with the sequence tiebreak.
        pairs.sort(key=operator.itemgetter(0))
        counters.compare(len(pairs))  # one neighbour check per pop
        ordered: Iterable[Tuple[Tuple[Any, ...], Row]] = pairs
    else:
        heap: List[Tuple[Tuple[Any, ...], int, Row]] = []
        seq = itertools.count()
        tpp = max(1, relation.tuples_per_page)
        for n, row in enumerate(relation):
            if token is not None and n % tpp == 0:
                token.check()
            levels = max(1, math.ceil(math.log2(len(heap) + 2)))
            counters.compare(levels)
            counters.swap_tuples(levels)
            heapq.heappush(
                heap, (tuple(row[i] for i in group_indexes), next(seq), row)
            )

        def _pop_all() -> Iterable[Tuple[Tuple[Any, ...], Row]]:
            while heap:
                key, _, row = heapq.heappop(heap)
                counters.compare()
                yield key, row

        ordered = _pop_all()

    current: Optional[Tuple[Any, ...]] = None
    accs: List[_Accumulator] = []
    emitted: List[Row] = []
    for key, row in ordered:
        if key != current:
            if current is not None:
                emitted.append(current + tuple(a.result() for a in accs))
            current = key
            accs = [_Accumulator(spec.function) for spec in aggregates]
        for acc, idx in zip(accs, agg_indexes):
            acc.update(row[idx] if idx is not None else 1)
    if current is not None:
        emitted.append(current + tuple(a.result() for a in accs))
    out.extend_rows(emitted)
    return out


__all__ = [
    "AggregateFunction",
    "AggregateSpec",
    "hash_aggregate",
    "sort_aggregate",
]
