"""Projection, with and without duplicate elimination -- Section 3.9.

"Projection with duplicate elimination is very similar in nature to the
aggregate function operation (in projection we are grouping identical
tuples)" -- so :func:`hash_project` delegates its distinct path to the
hash-aggregation engine with the projected columns as the grouping key and
no aggregates, inheriting the same one-pass / hybrid-overflow behaviour.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.cost.counters import OperationCounters
from repro.operators.aggregate import hash_aggregate, sort_aggregate
from repro.operators.columnar import charge_page_moves
from repro.storage.disk import SimulatedDisk
from repro.storage.relation import Relation
from repro.storage.tuples import tuple_projector


def _plain_project(
    relation: Relation,
    columns: Sequence[str],
    counters: OperationCounters,
    output_name: Optional[str],
    batch: bool = True,
    token: Optional[Any] = None,
    columnar: bool = True,
) -> Relation:
    out = Relation(
        output_name or ("project(%s)" % relation.name),
        relation.schema.project(list(columns)),
        relation.page_bytes,
    )
    indexes = [relation.schema.index_of(c) for c in columns]
    if batch:
        if columnar:
            # Kept columns flow buffer-to-buffer; dropped ones are never
            # touched -- no row tuple exists anywhere on this path.
            for page in relation.pages:
                if token is not None:
                    token.check()
                n = len(page)
                charge_page_moves(counters, n)
                if n:
                    out.extend_columns([page.column(i) for i in indexes], n)
            return out
        getter = tuple_projector(indexes)
        for page in relation.pages:
            if token is not None:
                token.check()
            rows = page.tuples
            counters.move_tuple(len(rows))
            out.extend_rows([getter(row) for row in rows])
        return out
    tpp = max(1, relation.tuples_per_page)
    for n, row in enumerate(relation):
        if token is not None and n % tpp == 0:
            token.check()
        counters.move_tuple()
        out.insert_unchecked(tuple(row[i] for i in indexes))
    return out


def hash_project(
    relation: Relation,
    columns: Sequence[str],
    distinct: bool = True,
    counters: Optional[OperationCounters] = None,
    memory_pages: Optional[int] = None,
    fudge: float = 1.2,
    disk: Optional[SimulatedDisk] = None,
    output_name: Optional[str] = None,
    batch: bool = True,
    token: Optional[Any] = None,
    columnar: bool = True,
) -> Relation:
    """Project onto ``columns``; hash-deduplicate when ``distinct``."""
    counters = counters if counters is not None else OperationCounters()
    if not distinct:
        return _plain_project(
            relation, columns, counters, output_name, batch, token=token,
            columnar=columnar,
        )
    return hash_aggregate(
        relation,
        group_by=list(columns),
        aggregates=[],
        counters=counters,
        memory_pages=memory_pages,
        fudge=fudge,
        disk=disk,
        output_name=output_name or ("project(%s)" % relation.name),
        batch=batch,
        token=token,
        columnar=columnar,
    )


def sort_project(
    relation: Relation,
    columns: Sequence[str],
    distinct: bool = True,
    counters: Optional[OperationCounters] = None,
    output_name: Optional[str] = None,
    batch: bool = True,
    token: Optional[Any] = None,
    columnar: bool = True,
) -> Relation:
    """Sort-based projection baseline (duplicates collapse after sorting)."""
    counters = counters if counters is not None else OperationCounters()
    if not distinct:
        return _plain_project(
            relation, columns, counters, output_name, batch, token=token,
            columnar=columnar,
        )
    return sort_aggregate(
        relation,
        group_by=list(columns),
        aggregates=[],
        counters=counters,
        output_name=output_name or ("project(%s)" % relation.name),
        batch=batch,
        token=token,
        columnar=columnar,
    )


__all__ = ["hash_project", "sort_project"]
