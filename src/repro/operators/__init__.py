"""Relational operators beyond join -- Section 3.9 of the paper.

The paper observes that the join results carry over: aggregation groups
tuples with equal grouping attributes, duplicate-eliminating projection
groups *identical* tuples, and both are fastest as one-pass hash algorithms
when the result fits in memory, falling back to a hybrid-hash-style
partitioning when it does not.  Sort-based variants are provided as the
baseline the hash algorithms displace.
"""

from repro.operators.aggregate import (
    AggregateFunction,
    AggregateSpec,
    hash_aggregate,
    sort_aggregate,
)
from repro.operators.projection import hash_project, sort_project
from repro.operators.relational import (
    cross_product,
    difference,
    divide,
    intersect,
    union_,
)
from repro.operators.selection import (
    And,
    Comparison,
    Not,
    Or,
    Predicate,
    Prefix,
    select,
    select_via_index,
)

__all__ = [
    "AggregateFunction",
    "AggregateSpec",
    "And",
    "Comparison",
    "Not",
    "Or",
    "Predicate",
    "Prefix",
    "cross_product",
    "difference",
    "divide",
    "hash_aggregate",
    "hash_project",
    "intersect",
    "select",
    "select_via_index",
    "sort_aggregate",
    "sort_project",
    "union_",
]
