"""Cross product, division, and set operators -- the rest of Section 3.9.

"Many of the techniques used for executing the relational join operator can
also be used for other relational operators (e.g. aggregate functions,
cross product, and division)."  This module supplies those remaining
operators with the same hash-first design and counter instrumentation:

* :func:`cross_product` -- the degenerate join (every pair matches).
* :func:`divide` -- relational division ``R(x, y) / S(y)``: the x-values
  related to *every* y in S.  Implemented as hash grouping on x with a
  counting check against a hash set of S -- one pass over each input,
  exactly the aggregation pattern the paper recommends.
* :func:`union_`, :func:`intersect`, :func:`difference` -- set operators
  over union-compatible relations, via hash-based duplicate handling.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.cost.counters import OperationCounters
from repro.operators.columnar import (
    charge_page_group,
    charge_page_hashes,
    charge_page_moves,
    page_keys,
)
from repro.storage.relation import Relation, Row
from repro.storage.tuples import Schema, tuple_projector
from repro.errors import PlannerError


def _require_compatible(a: Relation, b: Relation, op: str) -> None:
    if len(a.schema) != len(b.schema) or any(
        fa.dtype is not fb.dtype
        for fa, fb in zip(a.schema.fields, b.schema.fields)
    ):
        raise PlannerError(
            "%s requires union-compatible schemas; got %r and %r"
            % (op, a.schema, b.schema)
        )


def cross_product(
    r: Relation,
    s: Relation,
    counters: Optional[OperationCounters] = None,
    output_name: Optional[str] = None,
    batch: bool = True,
    columnar: bool = True,
) -> Relation:
    """``R x S`` -- every pairing, charged one move per output tuple."""
    counters = counters if counters is not None else OperationCounters()
    clash = set(r.schema.names) & set(s.schema.names)
    schema = (
        r.schema.concat(s.schema, "r_", "s_") if clash else r.schema.concat(s.schema)
    )
    out = Relation(
        output_name or ("product(%s,%s)" % (r.name, s.name)),
        schema,
        max(r.page_bytes, schema.tuple_bytes),
    )
    if batch:
        s_pages = s.pages
        if columnar:
            # Per (r-row, s-page): the r-values broadcast into constant
            # columns and the s-columns copy buffer-to-buffer.
            for r_page in r.pages:
                for r_row in r_page.tuples:
                    for s_page in s_pages:
                        n = len(s_page)
                        charge_page_moves(counters, n)
                        if n:
                            out.extend_columns(
                                [[v] * n for v in r_row] + list(s_page.columns),
                                n,
                            )
            return out
        for r_page in r.pages:
            for r_row in r_page.tuples:
                for s_page in s_pages:
                    rows = s_page.tuples
                    counters.move_tuple(len(rows))
                    out.extend_rows([r_row + s_row for s_row in rows])
        return out
    for r_row in r:
        for s_row in s:
            counters.move_tuple()
            out.insert_unchecked(r_row + s_row)
    return out


def divide(
    r: Relation,
    divisor: Relation,
    r_group: Sequence[str],
    r_attr: Sequence[str],
    divisor_attr: Optional[Sequence[str]] = None,
    counters: Optional[OperationCounters] = None,
    output_name: Optional[str] = None,
    batch: bool = True,
    columnar: bool = True,
) -> Relation:
    """Relational division: group values related to every divisor tuple.

    ``r_group`` are the dividend's result columns (the paper's "x"),
    ``r_attr`` the columns matched against the divisor (the "y");
    ``divisor_attr`` defaults to the divisor's full schema.

    Hash-based, two passes, no sorting: build a hash set of the divisor,
    then for each x-group count the *distinct* divisor members it covers;
    emit the groups covering all of them.  Example -- "suppliers who supply
    every part": ``divide(supplies, parts, ["supplier"], ["part"])``.
    """
    counters = counters if counters is not None else OperationCounters()
    if divisor_attr is None:
        divisor_attr = divisor.schema.names
    if len(r_attr) != len(divisor_attr):
        raise PlannerError("dividend/divisor attribute lists differ in length")
    if not r_group:
        raise PlannerError("division needs at least one result column")

    group_idx = [r.schema.index_of(c) for c in r_group]
    attr_idx = [r.schema.index_of(c) for c in r_attr]
    div_idx = [divisor.schema.index_of(c) for c in divisor_attr]

    group_key = tuple_projector(group_idx)
    attr_key = tuple_projector(attr_idx)
    div_key = tuple_projector(div_idx)

    # Pass 1: hash the divisor into a set.
    required: Set[Tuple[Any, ...]] = set()
    if batch:
        for page in divisor.pages:
            if columnar:
                charge_page_hashes(counters, len(page))
                required.update(page_keys(page, div_idx))
                continue
            rows = page.tuples
            counters.hash_key(len(rows))
            required.update(map(div_key, rows))
    else:
        for row in divisor:
            counters.hash_key()
            required.add(tuple(row[i] for i in div_idx))

    out = Relation(
        output_name or ("divide(%s,%s)" % (r.name, divisor.name)),
        r.schema.project(list(r_group)),
        r.page_bytes,
    )
    if not required:
        # X / {} is all x-values by convention (vacuous universality).
        seen_groups: Set[Tuple[Any, ...]] = set()
        if batch:
            for page in r.pages:
                if columnar:
                    charge_page_hashes(counters, len(page))
                    keys = page_keys(page, group_idx)
                else:
                    rows = page.tuples
                    counters.hash_key(len(rows))
                    keys = [group_key(row) for row in rows]
                fresh: List[Tuple[Any, ...]] = []
                for key in keys:
                    if key not in seen_groups:
                        seen_groups.add(key)
                        fresh.append(key)
                out.extend_rows(fresh)
            return out
        for row in r:
            counters.hash_key()
            key = tuple(row[i] for i in group_idx)
            if key not in seen_groups:
                seen_groups.add(key)
                out.insert_unchecked(key)
        return out

    # Pass 2: per x-group, collect which required members are covered.
    covered: Dict[Tuple[Any, ...], Set[Tuple[Any, ...]]] = {}
    if batch:
        for page in r.pages:
            if columnar:
                charge_page_group(counters, len(page))
                for member, key in zip(
                    page_keys(page, attr_idx), page_keys(page, group_idx)
                ):
                    if member not in required:
                        continue
                    covered.setdefault(key, set()).add(member)
                continue
            rows = page.tuples
            counters.hash_key(len(rows))
            counters.compare(len(rows))
            for row in rows:
                member = attr_key(row)
                if member not in required:
                    continue
                covered.setdefault(group_key(row), set()).add(member)
        counters.compare(len(covered))
        want = len(required)
        out.extend_rows(
            [key for key, members in covered.items() if len(members) == want]
        )
        return out
    for row in r:
        counters.hash_key()
        counters.compare()
        member = tuple(row[i] for i in attr_idx)
        if member not in required:
            continue
        key = tuple(row[i] for i in group_idx)
        covered.setdefault(key, set()).add(member)

    for key, members in covered.items():
        counters.compare()
        if len(members) == len(required):
            out.insert_unchecked(key)
    return out


def union_(
    a: Relation,
    b: Relation,
    distinct: bool = True,
    counters: Optional[OperationCounters] = None,
    output_name: Optional[str] = None,
    batch: bool = True,
) -> Relation:
    """``A UNION B`` (hash-deduplicated) or ``UNION ALL``."""
    counters = counters if counters is not None else OperationCounters()
    _require_compatible(a, b, "union")
    out = Relation(
        output_name or ("union(%s,%s)" % (a.name, b.name)),
        a.schema,
        a.page_bytes,
    )
    if not distinct:
        if batch:
            for source in (a, b):
                for page in source.pages:
                    rows = page.tuples
                    counters.move_tuple(len(rows))
                    out.extend_rows(rows)
            return out
        for row in a:
            counters.move_tuple()
            out.insert_unchecked(row)
        for row in b:
            counters.move_tuple()
            out.insert_unchecked(row)
        return out
    seen: Set[Row] = set()
    if batch:
        for source in (a, b):
            for page in source.pages:
                rows = page.tuples
                counters.hash_key(len(rows))
                fresh: List[Row] = []
                for row in rows:
                    if row not in seen:
                        seen.add(row)
                        fresh.append(row)
                out.extend_rows(fresh)
        return out
    for source in (a, b):
        for row in source:
            counters.hash_key()
            if row not in seen:
                seen.add(row)
                out.insert_unchecked(row)
    return out


def intersect(
    a: Relation,
    b: Relation,
    counters: Optional[OperationCounters] = None,
    output_name: Optional[str] = None,
    batch: bool = True,
) -> Relation:
    """``A INTERSECT B`` (set semantics): hash the smaller, probe the
    larger -- the simple-hash pattern."""
    counters = counters if counters is not None else OperationCounters()
    _require_compatible(a, b, "intersect")
    build, probe = (a, b) if a.cardinality <= b.cardinality else (b, a)
    table: Set[Row] = set()
    out = Relation(
        output_name or ("intersect(%s,%s)" % (a.name, b.name)),
        a.schema,
        a.page_bytes,
    )
    emitted: Set[Row] = set()
    if batch:
        for page in build.pages:
            rows = page.tuples
            counters.hash_key(len(rows))
            table.update(rows)
        for page in probe.pages:
            rows = page.tuples
            counters.hash_key(len(rows))
            counters.compare(len(rows))
            fresh: List[Row] = []
            for row in rows:
                if row in table and row not in emitted:
                    emitted.add(row)
                    fresh.append(row)
            out.extend_rows(fresh)
        return out
    for row in build:
        counters.hash_key()
        table.add(row)
    for row in probe:
        counters.hash_key()
        counters.compare()
        if row in table and row not in emitted:
            emitted.add(row)
            out.insert_unchecked(row)
    return out


def difference(
    a: Relation,
    b: Relation,
    counters: Optional[OperationCounters] = None,
    output_name: Optional[str] = None,
    batch: bool = True,
) -> Relation:
    """``A EXCEPT B`` (set semantics): hash B, anti-probe with A."""
    counters = counters if counters is not None else OperationCounters()
    _require_compatible(a, b, "difference")
    table: Set[Row] = set()
    out = Relation(
        output_name or ("except(%s,%s)" % (a.name, b.name)),
        a.schema,
        a.page_bytes,
    )
    emitted: Set[Row] = set()
    if batch:
        for page in b.pages:
            rows = page.tuples
            counters.hash_key(len(rows))
            table.update(rows)
        for page in a.pages:
            rows = page.tuples
            counters.hash_key(len(rows))
            counters.compare(len(rows))
            fresh: List[Row] = []
            for row in rows:
                if row not in table and row not in emitted:
                    emitted.add(row)
                    fresh.append(row)
            out.extend_rows(fresh)
        return out
    for row in b:
        counters.hash_key()
        table.add(row)
    for row in a:
        counters.hash_key()
        counters.compare()
        if row not in table and row not in emitted:
            emitted.add(row)
            out.insert_unchecked(row)
    return out


__all__ = ["cross_product", "difference", "divide", "intersect", "union_"]
