"""The system catalog: relations, their indexes, and optimizer statistics.

Section 4 reduces query optimization to selectivity ordering once hash
algorithms are chosen; the statistics the planner needs (cardinality, page
count, distinct values per column, min/max) live here, collected lazily per
relation with an explicit ``analyze`` step, as a real system would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.storage.histogram import EquiDepthHistogram
from repro.storage.relation import Relation
from repro.errors import ConfigurationError


@dataclass
class ColumnStats:
    """Per-column statistics used for selectivity estimation."""

    distinct: int = 0
    minimum: Optional[Any] = None
    maximum: Optional[Any] = None
    #: Optional equi-depth histogram (numeric columns, built on request).
    histogram: Optional[EquiDepthHistogram] = None

    def selectivity_equals(self, cardinality: int) -> float:
        """Estimated fraction of tuples matching ``col = const``."""
        if self.distinct <= 0 or cardinality <= 0:
            return 1.0
        return 1.0 / self.distinct

    def selectivity_range(self, low: Any, high: Any) -> float:
        """Estimated fraction matching ``low <= col <= high``.

        Uses the equi-depth histogram when one was built (robust to skew);
        falls back to the uniform min/max interpolation otherwise.
        """
        if self.histogram is not None:
            return self.histogram.fraction_between(low, high)
        if (
            self.minimum is None
            or self.maximum is None
            or not isinstance(self.minimum, (int, float))
            or self.maximum == self.minimum
        ):
            return 0.5  # Selinger's default for un-analyzable ranges
        span = self.maximum - self.minimum
        width = max(0.0, min(high, self.maximum) - max(low, self.minimum))
        return max(0.0, min(1.0, width / span))


@dataclass
class RelationStats:
    """Statistics snapshot for one relation."""

    cardinality: int = 0
    page_count: int = 0
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats:
        return self.columns.get(name, ColumnStats())


class Catalog:
    """A registry of named relations and their indexes."""

    def __init__(self) -> None:
        self._relations: Dict[str, Relation] = {}
        self._indexes: Dict[Tuple[str, str], Any] = {}
        self._stats: Dict[str, RelationStats] = {}
        #: Per-relation access-path epoch, bumped whenever an index is
        #: created or dropped.  Plan fingerprints embed it so cached
        #: subplans become unaddressable when the set of available access
        #: paths changes, not just when the data does.
        self._access_epochs: Dict[str, int] = {}
        #: Per-relation statistics epoch, bumped by every ``analyze``.
        #: Join fingerprints embed it so a cached join order planned
        #: against stale histograms cannot be served after a refresh.
        self._stats_epochs: Dict[str, int] = {}

    # -- relations ---------------------------------------------------------------

    def register(self, relation: Relation) -> Relation:
        """Add ``relation``; raises if the name exists."""
        if relation.name in self._relations:
            raise ConfigurationError("relation %r already exists" % relation.name)
        self._relations[relation.name] = relation
        return relation

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError("no relation named %r" % name) from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def drop(self, name: str) -> None:
        """Remove a relation, its indexes, and its statistics."""
        if name not in self._relations:
            raise KeyError("no relation named %r" % name)
        del self._relations[name]
        self._stats.pop(name, None)
        self._access_epochs.pop(name, None)
        self._stats_epochs.pop(name, None)
        for key in [k for k in self._indexes if k[0] == name]:
            del self._indexes[key]

    def relations(self) -> List[str]:
        return sorted(self._relations)

    # -- indexes -----------------------------------------------------------------

    def register_index(self, relation_name: str, column: str, index: Any) -> None:
        """Attach an index object to ``(relation, column)``."""
        self.relation(relation_name)  # existence check
        key = (relation_name, column)
        if key in self._indexes:
            raise ConfigurationError("index on %s.%s already exists" % key)
        self._indexes[key] = index
        self._bump_access_epoch(relation_name)

    def index(self, relation_name: str, column: str) -> Optional[Any]:
        return self._indexes.get((relation_name, column))

    def indexes_on(self, relation_name: str) -> Dict[str, Any]:
        return {
            col: idx
            for (rel, col), idx in self._indexes.items()
            if rel == relation_name
        }

    def drop_index(self, relation_name: str, column: str) -> None:
        key = (relation_name, column)
        if key not in self._indexes:
            raise KeyError("no index on %s.%s" % key)
        del self._indexes[key]
        self._bump_access_epoch(relation_name)

    def _bump_access_epoch(self, relation_name: str) -> None:
        self._access_epochs[relation_name] = (
            self._access_epochs.get(relation_name, 0) + 1
        )

    def access_epoch(self, relation_name: str) -> int:
        """Monotonic counter of index create/drop events on a relation.

        Embedded in scan fingerprints so the plan-reuse cache cannot serve
        a subplan materialised under a different set of access paths.
        """
        return self._access_epochs.get(relation_name, 0)

    # -- statistics ---------------------------------------------------------------

    def analyze(self, name: str, histogram_buckets: int = 0) -> RelationStats:
        """Scan ``name`` and record fresh optimizer statistics.

        ``histogram_buckets > 0`` additionally builds equi-depth
        histograms for numeric columns, sharpening range selectivity on
        skewed data.
        """
        rel = self.relation(name)
        columns: Dict[str, ColumnStats] = {}
        for i, f in enumerate(rel.schema.fields):
            values = [row[i] for row in rel]
            if values:
                numeric = isinstance(values[0], (int, float))
                histogram = None
                if numeric and histogram_buckets > 0:
                    histogram = EquiDepthHistogram.build(
                        values, histogram_buckets
                    )
                columns[f.name] = ColumnStats(
                    distinct=len(set(values)),
                    minimum=min(values) if numeric else None,
                    maximum=max(values) if numeric else None,
                    histogram=histogram,
                )
            else:
                columns[f.name] = ColumnStats()
        stats = RelationStats(
            cardinality=rel.cardinality,
            page_count=rel.page_count,
            columns=columns,
        )
        self._stats[name] = stats
        self._stats_epochs[name] = self._stats_epochs.get(name, 0) + 1
        return stats

    def stats(self, name: str) -> RelationStats:
        """Statistics for ``name``, analyzing on first request."""
        if name not in self._stats:
            return self.analyze(name)
        return self._stats[name]

    def stats_epoch(self, relation_name: str) -> int:
        """Monotonic counter of ``analyze`` runs on a relation.

        Embedded in join fingerprints so the plan-reuse cache cannot keep
        serving a join subtree whose order and algorithm were chosen
        against statistics that have since been refreshed.
        """
        return self._stats_epochs.get(relation_name, 0)

    def __repr__(self) -> str:
        return "Catalog(%d relations, %d indexes)" % (
            len(self._relations),
            len(self._indexes),
        )


__all__ = ["Catalog", "ColumnStats", "RelationStats"]
