"""Schema-driven column codecs for packed pages.

The paper's §2 premise is that a main-memory engine should trade the
disk-era slotted page for compact, directly-scannable layouts.  This
module maps :class:`~repro.storage.tuples.DataType` columns onto packed
``array`` buffers -- 8-byte signed integers (``'q'``) and doubles
(``'d'``) -- with a plain object list (kind ``'o'``) for strings and
anything that does not pack.

A column *kind* is one character:

* ``'q'`` -- packed int64 buffer (``array('q')``), only exact ``int``s
* ``'d'`` -- packed float64 buffer (``array('d')``), only exact ``float``s
* ``'o'`` -- object list fallback (strings, mixed, oversized ints)

The kind rules are deliberately stricter than ``DataType.validate``:
a FLOAT column legally holds Python ints, but packing an int into a
double buffer would hand ``2.0`` back where ``2`` went in.  Pages
therefore demote a packed column to the ``'o'`` list the moment a value
arrives that would not round-trip with its exact type and value, so the
tuple view stays byte-identical to the historical row storage.
"""

from __future__ import annotations

from array import array
from itertools import compress
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.storage.tuples import DataType, Schema

try:
    # Optional accelerator only: the package itself stays dependency-free
    # (``pyproject.toml`` declares none) and every consumer keeps a pure
    # stdlib fallback, but when numpy is around, predicate masks and
    # survivor compression run over zero-copy views of the packed buffers
    # at C speed instead of one boxed element at a time.
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    np = None  # type: ignore[assignment]

#: Little-endian numpy dtypes matching the packed array typecodes.
_NP_DTYPES = {"q": "<i8", "d": "<f8"}

INT_KIND = "q"
FLOAT_KIND = "d"
OBJECT_KIND = "o"

#: A column buffer: a packed array or the object-list fallback.
Column = Union[array, List[Any]]

_KIND_FOR_DTYPE = {
    DataType.INTEGER: INT_KIND,
    DataType.FLOAT: FLOAT_KIND,
    DataType.STRING: OBJECT_KIND,
}

#: Pointer estimate for one object-list entry (CPython 64-bit PyObject*).
_POINTER_BYTES = 8


def kind_for_dtype(dtype: DataType) -> str:
    """The preferred column kind for a schema type."""
    return _KIND_FOR_DTYPE[dtype]


def column_kinds(schema: Schema) -> Tuple[str, ...]:
    """Per-column kinds for ``schema``, in field order."""
    return tuple(kind_for_dtype(f.dtype) for f in schema.fields)


def infer_kind(value: Any) -> str:
    """The kind a fresh column should use for its first ``value``.

    Exact-type checks on purpose: ``bool`` must not land in an int
    buffer and ints must not land in a double buffer (see module doc).
    """
    if type(value) is int:
        return INT_KIND
    if type(value) is float:
        return FLOAT_KIND
    return OBJECT_KIND


def make_column(kind: str) -> Column:
    """A fresh, empty buffer of the given kind."""
    if kind == OBJECT_KIND:
        return []
    return array(kind)


def is_packed(column: Column) -> bool:
    """Whether ``column`` is a contiguous packed buffer (not a list)."""
    return isinstance(column, array)


def column_bytes(column: Column) -> int:
    """Resident bytes of one column buffer.

    Exact for packed arrays; object lists are estimated at one pointer
    per slot (the boxed values themselves are shared and unaccounted).
    """
    if isinstance(column, array):
        return len(column) * column.itemsize
    return len(column) * _POINTER_BYTES


def packed_view(column: Column) -> Optional[Any]:
    """Zero-copy numpy view of a packed buffer, or None.

    None when numpy is unavailable or the column is the object-list
    fallback; callers must keep a pure-Python path for that case.
    """
    if np is None or type(column) is not array:
        return None
    return np.frombuffer(column, dtype=_NP_DTYPES[column.typecode])


def compress_column(column: Column, mask: Sequence[bool]) -> Column:
    """``column`` filtered by ``mask``, preserving packedness.

    ``mask`` may be a plain boolean list or a numpy boolean array (the
    vectorised predicate masks); either filters any column kind.
    """
    if isinstance(column, array):
        if np is not None and isinstance(mask, np.ndarray):
            out = array(column.typecode)
            out.frombytes(packed_view(column)[mask].tobytes())
            return out
        return array(column.typecode, compress(column, mask))
    return list(compress(column, mask))


__all__ = [
    "Column",
    "FLOAT_KIND",
    "INT_KIND",
    "OBJECT_KIND",
    "column_bytes",
    "column_kinds",
    "compress_column",
    "infer_kind",
    "is_packed",
    "kind_for_dtype",
    "make_column",
    "np",
    "packed_view",
]
