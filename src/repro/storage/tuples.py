"""Schemas and fixed-width tuples.

The 1984 paper works with fixed-width tuples (the Table 2 workload packs
exactly 40 tuples on a 4 KB page).  A :class:`Schema` records field names,
types, and byte widths; actual tuples are plain Python tuples, which keeps
the executable algorithms allocation-light while the schema supplies all
size arithmetic for the cost model.
"""

from __future__ import annotations

import enum
import operator
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Sequence, Tuple
from repro.errors import ConfigurationError


class DataType(enum.Enum):
    """The column types the reproduction needs."""

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"

    def validate(self, value: Any) -> bool:
        """Whether ``value`` is acceptable for this type."""
        if self is DataType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is DataType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        return isinstance(value, str)


#: Default byte widths per type, used when a field does not override.
_DEFAULT_WIDTHS = {
    DataType.INTEGER: 4,
    DataType.FLOAT: 8,
    DataType.STRING: 16,
}


@dataclass(frozen=True)
class Field:
    """One column: a name, a type, and a fixed byte width."""

    name: str
    dtype: DataType
    width: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("field name must be non-empty")
        if self.width == 0:
            object.__setattr__(self, "width", _DEFAULT_WIDTHS[self.dtype])
        if self.width <= 0:
            raise ConfigurationError("field width must be positive")


class Schema:
    """An ordered collection of :class:`Field` objects.

    Provides the byte arithmetic (tuple width, tuples per page) the cost
    model needs, plus field lookup and projection for the operators.
    """

    def __init__(self, fields: Sequence[Field]) -> None:
        if not fields:
            raise ConfigurationError("a schema needs at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate field names in schema: %r" % (names,))
        self._fields: Tuple[Field, ...] = tuple(fields)
        self._index = {f.name: i for i, f in enumerate(self._fields)}

    # -- structure -----------------------------------------------------------

    @property
    def fields(self) -> Tuple[Field, ...]:
        return self._fields

    @property
    def names(self) -> List[str]:
        return [f.name for f in self._fields]

    def __len__(self) -> int:
        return len(self._fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    def __repr__(self) -> str:
        inner = ", ".join("%s:%s" % (f.name, f.dtype.value) for f in self._fields)
        return "Schema(%s)" % inner

    def index_of(self, name: str) -> int:
        """Position of field ``name`` (raises ``KeyError`` if absent)."""
        return self._index[name]

    def field(self, name: str) -> Field:
        return self._fields[self.index_of(name)]

    def has_field(self, name: str) -> bool:
        return name in self._index

    # -- byte arithmetic -------------------------------------------------------

    @property
    def tuple_bytes(self) -> int:
        """Fixed width of one tuple under this schema (the paper's L)."""
        return sum(f.width for f in self._fields)

    def tuples_per_page(self, page_bytes: int) -> int:
        """How many tuples fit on one ``page_bytes`` page."""
        per_page = page_bytes // self.tuple_bytes
        if per_page < 1:
            raise ConfigurationError(
                "tuple of %d bytes does not fit on a %d-byte page"
                % (self.tuple_bytes, page_bytes)
            )
        return per_page

    # -- tuple helpers -----------------------------------------------------------

    def validate(self, values: Sequence[Any]) -> Tuple[Any, ...]:
        """Check arity and types; return the values as a plain tuple."""
        if len(values) != len(self._fields):
            raise ConfigurationError(
                "expected %d values, got %d" % (len(self._fields), len(values))
            )
        for value, f in zip(values, self._fields):
            if not f.dtype.validate(value):
                raise TypeError(
                    "field %r expects %s, got %r" % (f.name, f.dtype.value, value)
                )
        return tuple(values)

    def validate_batch(self, rows: Iterable[Sequence[Any]]) -> List[Tuple[Any, ...]]:
        """Validate many tuples in one call; return them as plain tuples.

        Column-wise fast path: each column is swept with its type check
        hoisted out of the row loop, so a bulk load pays one Python-level
        pass per *column* instead of one :meth:`validate` call per row.
        Raises the same exception types with the same messages as per-row
        :meth:`validate` (though when several rows are bad, the one blamed
        may differ: arity is checked before types, and types column-major).
        """
        n = len(self._fields)
        out: List[Tuple[Any, ...]] = []
        for values in rows:
            if len(values) != n:
                raise ConfigurationError(
                    "expected %d values, got %d" % (n, len(values))
                )
            out.append(tuple(values))
        for i, f in enumerate(self._fields):
            check = f.dtype.validate
            if all(check(row[i]) for row in out):
                continue
            for row in out:
                if not check(row[i]):
                    raise TypeError(
                        "field %r expects %s, got %r"
                        % (f.name, f.dtype.value, row[i])
                    )
        return out

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema of a projection onto ``names`` (order preserved)."""
        return Schema([self.field(n) for n in names])

    def concat(self, other: "Schema", prefix_self: str = "", prefix_other: str = "") -> "Schema":
        """Schema of a join result; optional prefixes disambiguate clashes."""
        fields: List[Field] = []
        for f in self._fields:
            fields.append(Field(prefix_self + f.name, f.dtype, f.width))
        for f in other._fields:
            fields.append(Field(prefix_other + f.name, f.dtype, f.width))
        return Schema(fields)


def make_schema(*specs: Tuple[str, DataType]) -> Schema:
    """Shorthand: ``make_schema(("id", DataType.INTEGER), ...)``."""
    return Schema([Field(name, dtype) for name, dtype in specs])


def tuple_projector(indexes: Sequence[int]) -> Callable[[Sequence[Any]], Tuple[Any, ...]]:
    """A row -> tuple-of-fields extractor over ``indexes``.

    Multi-column extraction is a C-level ``operator.itemgetter``; the
    single-column case is wrapped so it still yields a 1-tuple (a bare
    itemgetter would return the scalar).  Batch operators hoist one of
    these out of their page loops instead of building per-row tuples with
    a generator expression.
    """
    if not indexes:
        # Zero-column extraction (ungrouped aggregation): every row maps
        # to the empty key.  A bare itemgetter() would raise.
        return lambda row: ()
    if len(indexes) == 1:
        i = indexes[0]
        return lambda row: (row[i],)
    return operator.itemgetter(*indexes)


__all__ = ["DataType", "Field", "Schema", "make_schema", "tuple_projector"]
