"""Equi-depth histograms for selectivity estimation.

The paper's planner discussion inherits Selinger's uniform-distribution
assumption; on skewed columns that assumption misorders operators.  An
equi-depth histogram -- bucket boundaries chosen so each bucket holds the
same number of values -- fixes range estimates with a small, fixed budget,
and slots into :class:`~repro.storage.catalog.ColumnStats` as an optional
refinement (built by ``Catalog.analyze(..., histogram_buckets=N)``).

Heavy hitters make several quantile boundaries coincide; the structure
therefore stores the *exact cumulative fraction at each distinct boundary*
(so a value occupying many quantiles keeps its true weight) and
interpolates linearly inside buckets.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence
from repro.errors import ConfigurationError


class EquiDepthHistogram:
    """Distinct quantile boundaries with exact cumulative fractions."""

    def __init__(
        self,
        boundaries: Sequence[float],
        cumulative: Sequence[float],
        total: int,
    ) -> None:
        if len(boundaries) < 1 or len(boundaries) != len(cumulative):
            raise ConfigurationError("boundaries and cumulative fractions must align")
        if list(boundaries) != sorted(set(boundaries)):
            raise ConfigurationError("boundaries must be strictly increasing")
        self.boundaries: List[float] = list(boundaries)
        #: cumulative[i] = exact fraction of values <= boundaries[i].
        self.cumulative: List[float] = list(cumulative)
        self.total = total

    @classmethod
    def build(
        cls, values: Sequence[float], buckets: int = 16
    ) -> Optional["EquiDepthHistogram"]:
        """Build from a column's values; ``None`` for empty input.

        ``buckets`` is a maximum: duplicate-heavy columns produce fewer
        distinct boundaries, but each boundary carries its exact
        cumulative weight, so heavy hitters do not distort estimates.
        """
        if buckets < 1:
            raise ConfigurationError("need at least one bucket")
        if not values:
            return None
        ordered = sorted(values)
        n = len(ordered)
        quantiles = {ordered[0], ordered[-1]}
        for b in range(1, buckets):
            quantiles.add(ordered[min(n - 1, (b * n) // buckets)])
        boundaries = sorted(quantiles)
        cumulative = [bisect.bisect_right(ordered, b) / n for b in boundaries]
        return cls(boundaries, cumulative, n)

    @property
    def bucket_count(self) -> int:
        return max(1, len(self.boundaries) - 1)

    @property
    def depth(self) -> float:
        """Average tuples per bucket."""
        return self.total / self.bucket_count

    # -- estimation ---------------------------------------------------------------

    def fraction_below(self, x: float) -> float:
        """Estimated fraction of values ``<= x`` (exact at boundaries)."""
        bounds = self.boundaries
        if x < bounds[0]:
            return 0.0
        if x >= bounds[-1]:
            return 1.0
        i = bisect.bisect_right(bounds, x) - 1
        lo, hi = bounds[i], bounds[i + 1]
        c_lo, c_hi = self.cumulative[i], self.cumulative[i + 1]
        within = 0.0 if hi == lo else (x - lo) / (hi - lo)
        return c_lo + (c_hi - c_lo) * within

    def fraction_between(self, lo: float, hi: float) -> float:
        """Estimated fraction of values in ``[lo, hi]``.

        ``fraction_below`` is inclusive, so the interval's left endpoint
        mass is under-counted by whatever sits exactly at ``lo`` -- a
        one-point error at estimation precision.  Endpoints at or below
        the minimum boundary count from zero.
        """
        if hi < lo:
            return 0.0
        below_hi = self.fraction_below(hi)
        below_lo = self.fraction_below(lo) if lo > self.boundaries[0] else 0.0
        return max(0.0, below_hi - below_lo)

    def __repr__(self) -> str:
        return "EquiDepthHistogram(%d buckets over [%g, %g], n=%d)" % (
            self.bucket_count,
            self.boundaries[0],
            self.boundaries[-1],
            self.total,
        )


__all__ = ["EquiDepthHistogram"]
