"""Paged heap relations.

A :class:`Relation` is the memory-resident representation the paper's title
is about: a schema plus a list of pages of tuples.  It supports appends,
scans, page-wise iteration (what the join algorithms consume), and spilling
to / loading from a :class:`~repro.storage.disk.SimulatedDisk`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page
from repro.storage.tuples import Schema

DEFAULT_PAGE_BYTES = 4096

Row = Tuple[Any, ...]


class Relation:
    """A named, paged collection of fixed-width tuples."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ) -> None:
        if not name:
            raise ValueError("relation name must be non-empty")
        self.name = name
        self.schema = schema
        self.page_bytes = page_bytes
        self._tuples_per_page = schema.tuples_per_page(page_bytes)
        self._pages: List[Page] = []

    # -- geometry ---------------------------------------------------------------

    @property
    def tuples_per_page(self) -> int:
        """The paper's ``||R|| / |R|`` density (40 for the Table 2 workload)."""
        return self._tuples_per_page

    @property
    def page_count(self) -> int:
        """``|R|`` -- the relation's size in pages."""
        return len(self._pages)

    @property
    def cardinality(self) -> int:
        """``||R||`` -- the number of tuples."""
        return sum(len(p) for p in self._pages)

    def __len__(self) -> int:
        return self.cardinality

    @property
    def pages(self) -> List[Page]:
        """The underlying pages, in order (do not mutate the list)."""
        return self._pages

    # -- mutation ---------------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> Tuple[int, int]:
        """Validate and append one tuple; return its (page, slot) TID."""
        row = self.schema.validate(values)
        return self.insert_unchecked(row)

    def insert_unchecked(self, row: Row) -> Tuple[int, int]:
        """Append a pre-validated tuple (hot path for generators/joins)."""
        if not self._pages or self._pages[-1].is_full:
            self._pages.append(Page(len(self._pages), self._tuples_per_page))
        slot = self._pages[-1].add(row)
        return len(self._pages) - 1, slot

    def extend(self, rows: Iterable[Sequence[Any]]) -> int:
        """Insert many tuples; return how many were added."""
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def truncate(self) -> None:
        """Drop every tuple (the schema survives)."""
        self._pages.clear()

    # -- access -------------------------------------------------------------------

    def fetch(self, tid: Tuple[int, int]) -> Row:
        """Return the tuple at TID ``(page, slot)``."""
        page_no, slot = tid
        return self._pages[page_no][slot]

    def update(self, tid: Tuple[int, int], values: Sequence[Any]) -> Row:
        """Overwrite the tuple at ``tid``; return the old value."""
        row = self.schema.validate(values)
        page_no, slot = tid
        return self._pages[page_no].replace(slot, row)

    def __iter__(self) -> Iterator[Row]:
        for page in self._pages:
            for row in page:
                yield row

    def scan(self) -> Iterator[Tuple[Tuple[int, int], Row]]:
        """Yield ``(tid, tuple)`` pairs in physical order."""
        for page_no, page in enumerate(self._pages):
            for slot, row in enumerate(page):
                yield (page_no, slot), row

    def value(self, row: Row, field: str) -> Any:
        """Field accessor by name (thin sugar over the schema index)."""
        return row[self.schema.index_of(field)]

    def key_of(self, field: str) -> Callable[[Row], Any]:
        """A fast key extractor for ``field``."""
        idx = self.schema.index_of(field)
        return lambda row: row[idx]

    # -- disk interchange ------------------------------------------------------------

    def spill(self, disk: SimulatedDisk, file_name: Optional[str] = None) -> str:
        """Write every page to ``disk`` sequentially; return the file name."""
        name = file_name or ("rel:" + self.name)
        if disk.exists(name):
            disk.delete(name)
        disk.create(name)
        for i, page in enumerate(self._pages):
            disk.append(name, page.copy(), sequential=None if i == 0 else True)
        return name

    @classmethod
    def load(
        cls,
        disk: SimulatedDisk,
        file_name: str,
        name: str,
        schema: Schema,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ) -> "Relation":
        """Read a spilled relation back from ``disk`` (sequential IO)."""
        rel = cls(name, schema, page_bytes)
        for page in disk.scan(file_name):
            for row in page:
                rel.insert_unchecked(row)
        return rel

    def __repr__(self) -> str:
        return "Relation(%r, %d tuples on %d pages)" % (
            self.name,
            self.cardinality,
            self.page_count,
        )


__all__ = ["DEFAULT_PAGE_BYTES", "Relation", "Row"]
