"""Paged heap relations.

A :class:`Relation` is the memory-resident representation the paper's title
is about: a schema plus a list of pages of tuples.  It supports appends,
scans, page-wise iteration (what the join algorithms consume), and spilling
to / loading from a :class:`~repro.storage.disk.SimulatedDisk`.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.storage.codecs import Column, column_bytes, column_kinds, is_packed
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page
from repro.storage.tuples import Schema
from repro.errors import ConfigurationError

DEFAULT_PAGE_BYTES = 4096

Row = Tuple[Any, ...]


class Relation:
    """A named, paged collection of fixed-width tuples."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ) -> None:
        if not name:
            raise ConfigurationError("relation name must be non-empty")
        self.name = name
        self.schema = schema
        self.page_bytes = page_bytes
        self._tuples_per_page = schema.tuples_per_page(page_bytes)
        #: Schema-driven column kinds every page of this relation packs to.
        self._kinds = column_kinds(schema)
        self._pages: List[Page] = []
        #: Incrementally maintained tuple count (``||R||``).
        self._count = 0
        #: Monotonic mutation stamp; any change to the contents bumps it.
        #: The planner's reuse cache keys fingerprints on it so cached
        #: results of stale subplans can never be served.
        self._version = 0

    # -- geometry ---------------------------------------------------------------

    @property
    def tuples_per_page(self) -> int:
        """The paper's ``||R|| / |R|`` density (40 for the Table 2 workload)."""
        return self._tuples_per_page

    @property
    def page_count(self) -> int:
        """``|R|`` -- the relation's size in pages."""
        return len(self._pages)

    @property
    def cardinality(self) -> int:
        """``||R||`` -- the number of tuples (O(1), maintained on mutation)."""
        return self._count

    @property
    def version(self) -> int:
        """Mutation stamp for cache invalidation (bumped on every change)."""
        return self._version

    def __len__(self) -> int:
        return self.cardinality

    @property
    def pages(self) -> List[Page]:
        """The underlying pages, in order (do not mutate the list)."""
        return self._pages

    # -- mutation ---------------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> Tuple[int, int]:
        """Validate and append one tuple; return its (page, slot) TID."""
        row = self.schema.validate(values)
        return self.insert_unchecked(row)

    def insert_unchecked(self, row: Row) -> Tuple[int, int]:
        """Append a pre-validated tuple (hot path for generators/joins)."""
        if not self._pages or self._pages[-1].is_full:
            self._pages.append(
                Page(len(self._pages), self._tuples_per_page, self._kinds)
            )
        slot = self._pages[-1].add(row)
        self._count += 1
        self._version += 1
        return len(self._pages) - 1, slot

    def extend(self, rows: Iterable[Sequence[Any]]) -> int:
        """Validate and insert many tuples; return how many were added.

        Validation happens in a single :meth:`Schema.validate_batch` call
        and the rows land page-at-a-time, so a bulk load costs a few
        Python-level calls per page rather than several per row.
        """
        return self.extend_rows(self.schema.validate_batch(rows))

    def extend_rows(self, rows: Sequence[Row]) -> int:
        """Append many pre-validated tuples page-at-a-time; return count.

        The bulk analogue of :meth:`insert_unchecked` -- the batch
        executor's only output path.  ``rows`` must already be plain
        tuples matching the schema.
        """
        if not isinstance(rows, (list, tuple)):
            rows = list(rows)
        n = len(rows)
        if n == 0:
            return 0
        pages = self._pages
        cap = self._tuples_per_page
        pos = 0
        while pos < n:
            if not pages or pages[-1].is_full:
                pages.append(Page(len(pages), cap, self._kinds))
            # Slice at most one page worth per round: O(n) total copying.
            pos += pages[-1].extend_rows(rows[pos:pos + cap])
        self._count += n
        self._version += 1
        return n

    def extend_columns(self, columns: Sequence[Column], count: int) -> int:
        """Append ``count`` pre-validated rows given column-wise; return count.

        The batch operators' columnar output path: column slices flow from
        input pages straight into output pages without materialising a
        single row tuple (see :meth:`Page.extend_columns`).
        """
        if count <= 0:
            return 0
        pages = self._pages
        cap = self._tuples_per_page
        kinds = self._kinds
        pos = 0
        while pos < count:
            if not pages or pages[-1].is_full:
                pages.append(Page(len(pages), cap, kinds))
            page = pages[-1]
            room = min(cap - len(page), count - pos)
            page.extend_columns(
                [c[pos:pos + room] for c in columns] if pos or room < count else columns,
                room,
            )
            pos += room
        self._count += count
        self._version += 1
        return count

    def append_page(self, page: Page) -> int:
        """Adopt a whole page of pre-validated tuples; return its count.

        When the relation's last page is full (or absent) and ``page`` has
        the native capacity, the page object is adopted directly (re-ided,
        zero per-tuple work); otherwise its tuples are folded in through
        :meth:`extend_rows`.
        """
        n = len(page)
        if n == 0:
            return 0
        if page.capacity == self._tuples_per_page and (
            not self._pages or self._pages[-1].is_full
        ):
            page.page_id = len(self._pages)
            self._pages.append(page)
            self._count += n
            self._version += 1
            return n
        return self.extend_rows(page.tuples)

    def truncate(self) -> None:
        """Drop every tuple (the schema survives)."""
        self._pages.clear()
        self._count = 0
        self._version += 1

    # -- access -------------------------------------------------------------------

    def fetch(self, tid: Tuple[int, int]) -> Row:
        """Return the tuple at TID ``(page, slot)``."""
        page_no, slot = tid
        return self._pages[page_no][slot]

    def update(self, tid: Tuple[int, int], values: Sequence[Any]) -> Row:
        """Overwrite the tuple at ``tid``; return the old value."""
        row = self.schema.validate(values)
        page_no, slot = tid
        self._version += 1
        return self._pages[page_no].replace(slot, row)

    def __iter__(self) -> Iterator[Row]:
        for page in self._pages:
            for row in page:
                yield row

    def scan(self) -> Iterator[Tuple[Tuple[int, int], Row]]:
        """Yield ``(tid, tuple)`` pairs in physical order."""
        for page_no, page in enumerate(self._pages):
            for slot, row in enumerate(page):
                yield (page_no, slot), row

    def value(self, row: Row, field: str) -> Any:
        """Field accessor by name (thin sugar over the schema index)."""
        return row[self.schema.index_of(field)]

    def key_of(self, field: str) -> Callable[[Row], Any]:
        """A fast key extractor for ``field`` (a C-level itemgetter)."""
        return operator.itemgetter(self.schema.index_of(field))

    # -- disk interchange ------------------------------------------------------------

    def spill(self, disk: SimulatedDisk, file_name: Optional[str] = None) -> str:
        """Write every page to ``disk`` sequentially; return the file name."""
        name = file_name or ("rel:" + self.name)
        if disk.exists(name):
            disk.delete(name)
        disk.create(name)
        for i, page in enumerate(self._pages):
            disk.append(name, page.copy(), sequential=None if i == 0 else True)
        return name

    @classmethod
    def load(
        cls,
        disk: SimulatedDisk,
        file_name: str,
        name: str,
        schema: Schema,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ) -> "Relation":
        """Read a spilled relation back from ``disk`` (sequential IO)."""
        rel = cls(name, schema, page_bytes)
        for page in disk.scan(file_name):
            # Copy before adopting: the disk hands back its stored page
            # objects, which must not alias the relation's live pages.
            rel.append_page(page.copy())
        return rel

    # -- introspection -----------------------------------------------------------

    def storage_stats(self) -> dict:
        """Packed-layout statistics for the ``db.storage_stats()`` facade.

        Counts packed (``array``) versus object-list column buffers across
        all pages and sums their resident bytes (exact for packed buffers,
        pointer-estimated for object lists -- see
        :func:`repro.storage.codecs.column_bytes`).
        """
        packed = 0
        total = 0
        buffer_bytes = 0
        for page in self._pages:
            for col in page.columns:
                total += 1
                if is_packed(col):
                    packed += 1
                buffer_bytes += column_bytes(col)
        return {
            "pages": self.page_count,
            "tuples": self._count,
            "tuples_per_page": self._tuples_per_page,
            "columns": len(self.schema),
            "packed_columns": packed,
            "total_columns": total,
            "packed_fraction": (packed / total) if total else 1.0,
            "buffer_bytes": buffer_bytes,
            "bytes_per_row": (buffer_bytes / self._count) if self._count else 0.0,
            "schema_bytes_per_row": self.schema.tuple_bytes,
        }

    def __repr__(self) -> str:
        return "Relation(%r, %d tuples on %d pages)" % (
            self.name,
            self.cardinality,
            self.page_count,
        )


__all__ = ["DEFAULT_PAGE_BYTES", "Relation", "Row"]
