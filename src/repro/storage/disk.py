"""A simulated disk charging the paper's two IO costs.

The paper models storage with exactly two constants -- ``IOseq`` (10 ms) and
``IOrand`` (25 ms) -- so the disk here does the minimum faithful thing:
store pages in named files, tally sequential vs random transfers into an
:class:`~repro.cost.counters.OperationCounters`, and optionally advance a
:class:`~repro.sim.clock.SimulatedClock` by the corresponding Table 2 time.

Sequentiality is determined the way a real drive would see it: an access is
sequential when it touches the page immediately after the previous access
*on this device*; anything else pays the random (seek + latency) price.
Callers that know better (e.g. the hybrid-hash spill with a single output
buffer) can force the classification.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cost.counters import OperationCounters
from repro.cost.parameters import CostParameters
from repro.sim.clock import SimulatedClock
from repro.storage.page import Page


class DiskFile:
    """A named, append-able array of pages on a :class:`SimulatedDisk`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.pages: List[Page] = []

    def __len__(self) -> int:
        return len(self.pages)

    def __repr__(self) -> str:
        return "DiskFile(%r, %d pages)" % (self.name, len(self.pages))


class SimulatedDisk:
    """Page-granularity storage with sequential/random IO accounting."""

    def __init__(
        self,
        counters: Optional[OperationCounters] = None,
        params: Optional[CostParameters] = None,
        clock: Optional[SimulatedClock] = None,
    ) -> None:
        self.counters = counters if counters is not None else OperationCounters()
        self.params = params
        self.clock = clock
        self._files: Dict[str, DiskFile] = {}
        #: (file name, page index) of the most recent transfer, for the
        #: sequentiality heuristic.
        self._head: Optional[Tuple[str, int]] = None

    # -- file namespace --------------------------------------------------------

    def create(self, name: str) -> DiskFile:
        """Create an empty file; raises if the name is taken."""
        if name in self._files:
            raise FileExistsError("disk file %r already exists" % name)
        f = DiskFile(name)
        self._files[name] = f
        return f

    def open(self, name: str) -> DiskFile:
        """Look up an existing file."""
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundError("no disk file named %r" % name) from None

    def ensure(self, name: str) -> DiskFile:
        """Open the file, creating it if needed."""
        if name in self._files:
            return self._files[name]
        return self.create(name)

    def delete(self, name: str) -> None:
        """Remove a file and its pages."""
        if name not in self._files:
            raise FileNotFoundError("no disk file named %r" % name)
        del self._files[name]
        if self._head and self._head[0] == name:
            self._head = None

    def exists(self, name: str) -> bool:
        return name in self._files

    def files(self) -> List[str]:
        return sorted(self._files)

    # -- IO ---------------------------------------------------------------------

    def _charge(self, name: str, index: int, sequential: Optional[bool]) -> None:
        if sequential is None:
            sequential = self._head == (name, index - 1) or (
                self._head is None and index == 0
            )
        if sequential:
            self.counters.io_sequential()
            if self.clock is not None and self.params is not None:
                self.clock.advance(self.params.io_seq)
        else:
            self.counters.io_random()
            if self.clock is not None and self.params is not None:
                self.clock.advance(self.params.io_rand)
        self._head = (name, index)

    def append(
        self, name: str, page: Page, sequential: Optional[bool] = None
    ) -> int:
        """Write ``page`` at the end of ``name``; return its index."""
        f = self.ensure(name)
        index = len(f.pages)
        page.dirty = False
        f.pages.append(page)
        self._charge(name, index, sequential)
        return index

    def write(
        self, name: str, index: int, page: Page, sequential: Optional[bool] = None
    ) -> None:
        """Overwrite page ``index`` of ``name`` in place."""
        f = self.open(name)
        if not 0 <= index < len(f.pages):
            raise IndexError("page %d out of range for %r" % (index, name))
        page.dirty = False
        f.pages[index] = page
        self._charge(name, index, sequential)

    def read(
        self, name: str, index: int, sequential: Optional[bool] = None
    ) -> Page:
        """Read page ``index`` of ``name`` (returns the stored page)."""
        f = self.open(name)
        if not 0 <= index < len(f.pages):
            raise IndexError("page %d out of range for %r" % (index, name))
        self._charge(name, index, sequential)
        return f.pages[index]

    def scan(self, name: str):
        """Yield every page of ``name`` with sequential-IO accounting."""
        f = self.open(name)
        for i in range(len(f.pages)):
            # First page goes through the head heuristic (a seek unless the
            # head happens to be parked just before it); the rest are
            # sequential by construction.
            yield self.read(name, i, sequential=None if i == 0 else True)

    def page_count(self, name: str) -> int:
        return len(self.open(name).pages)

    def __repr__(self) -> str:
        return "SimulatedDisk(%d files, ioseq=%d, iorand=%d)" % (
            len(self._files),
            self.counters.sequential_ios,
            self.counters.random_ios,
        )


__all__ = ["DiskFile", "SimulatedDisk"]
