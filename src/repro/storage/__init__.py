"""Storage substrate: tuples, pages, relations, simulated disk, buffering.

The paper assumes a conventional paged storage engine under its algorithms;
this package supplies one.  Data lives in :class:`~repro.storage.relation.
Relation` objects (paged heaps of fixed-width tuples), spills go through a
:class:`~repro.storage.disk.SimulatedDisk` that charges sequential/random IO
to operation counters, and partially-resident structures are exercised with
:class:`~repro.storage.buffer.BufferPool` (random replacement, as assumed by
the Section 2 fault model, plus LRU/FIFO for comparison).
"""

from repro.storage.buffer import BufferPool, ReplacementPolicy
from repro.storage.catalog import Catalog, RelationStats
from repro.storage.disk import DiskFile, SimulatedDisk
from repro.storage.histogram import EquiDepthHistogram
from repro.storage.page import Page
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, Field, Schema, make_schema

__all__ = [
    "BufferPool",
    "Catalog",
    "DataType",
    "DiskFile",
    "EquiDepthHistogram",
    "Field",
    "Page",
    "Relation",
    "RelationStats",
    "ReplacementPolicy",
    "Schema",
    "SimulatedDisk",
    "make_schema",
]
