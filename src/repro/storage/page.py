"""Fixed-capacity pages of tuples, stored column-wise.

A :class:`Page` is the unit of IO everywhere in the reproduction: relations
are lists of pages, the simulated disk stores pages, spill files are written
a page at a time, and the Section 2 fault model counts page reads.

Since PR 7 the primary storage is *columnar*: each column lives in a packed
``array('q')``/``array('d')`` buffer (or an object list for strings -- see
:mod:`repro.storage.codecs`), so batch operators can scan contiguous
buffers instead of lists of tuple objects.  The historical row interface
(:meth:`add`, :meth:`extend_rows`, :attr:`tuples`, indexing, iteration) is
preserved exactly: :attr:`tuples` materialises a cached row view on demand,
and every value round-trips with its exact type -- a column silently
demotes itself to the object-list fallback rather than coerce (int into a
double buffer, oversized int into int64).
"""

from __future__ import annotations

from array import array
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.storage.codecs import Column, infer_kind, make_column
from repro.storage.tuples import Schema
from repro.errors import ConfigurationError


class Page:
    """A page holding up to ``capacity`` fixed-width tuples, column-wise."""

    __slots__ = ("page_id", "capacity", "dirty", "_kinds", "_columns", "_rows", "_count")

    def __init__(
        self,
        page_id: int,
        capacity: int,
        kinds: Optional[Sequence[str]] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("page capacity must be at least one tuple")
        self.page_id = page_id
        self.capacity = capacity
        self.dirty = False
        #: Declared column kinds (from the schema); None means "infer from
        #: the first row", which keeps schema-less scratch pages working.
        self._kinds = tuple(kinds) if kinds is not None else None
        self._columns: Optional[List[Column]] = (
            [make_column(k) for k in self._kinds] if self._kinds else None
        )
        #: Cached row view; built lazily by :attr:`tuples`, maintained
        #: incrementally on append, invalidated by in-place mutation.
        self._rows: Optional[List[Tuple[Any, ...]]] = None
        self._count = 0

    @classmethod
    def for_schema(cls, page_id: int, schema: Schema, page_bytes: int) -> "Page":
        """A page sized so ``page_bytes // schema.tuple_bytes`` tuples fit."""
        from repro.storage.codecs import column_kinds

        return cls(page_id, schema.tuples_per_page(page_bytes), column_kinds(schema))

    # -- contents ------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.tuples)

    def __getitem__(self, slot: int) -> Tuple[Any, ...]:
        return self.tuples[slot]

    @property
    def tuples(self) -> List[Tuple[Any, ...]]:
        """The live tuples, in slot order (do not mutate).

        A cached view zipped out of the column buffers; building it costs
        one C-level ``zip`` per page and subsequent reads are free.
        """
        rows = self._rows
        if rows is None:
            cols = self._columns
            rows = list(zip(*cols)) if self._count else []
            self._rows = rows
        return rows

    @property
    def columns(self) -> List[Column]:
        """The column buffers, in field order (do not mutate).

        Empty list while the page has never seen a row and has no
        declared kinds (the arity is unknown until then).
        """
        cols = self._columns
        return cols if cols is not None else []

    def column(self, index: int) -> Column:
        """The buffer for column ``index`` -- the batch operators' scan path."""
        return self.columns[index]

    @property
    def is_full(self) -> bool:
        return self._count >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._count

    @property
    def free_slots(self) -> int:
        return self.capacity - self._count

    # -- columnar write paths ---------------------------------------------------

    def _init_columns(self, row: Sequence[Any]) -> List[Column]:
        cols: List[Column] = [make_column(infer_kind(v)) for v in row]
        self._columns = cols
        return cols

    def _append_value(self, index: int, value: Any) -> None:
        """Append one value to one column, demoting on type mismatch."""
        col = self._columns[index]  # type: ignore[index]
        if type(col) is list:
            col.append(value)
            return
        if col.typecode == "q":
            if type(value) is int:
                try:
                    col.append(value)
                    return
                except OverflowError:
                    pass
        elif type(value) is float:
            col.append(value)
            return
        demoted = list(col)
        demoted.append(value)
        self._columns[index] = demoted  # type: ignore[index]

    def _extend_column(self, index: int, values: Sequence[Any]) -> None:
        """Bulk-append ``values`` to one column, demoting on mismatch."""
        col = self._columns[index]  # type: ignore[index]
        if type(col) is list:
            col.extend(values)
            return
        if type(values) is array and values.typecode == col.typecode:
            col.extend(values)
            return
        if col.typecode == "q":
            before = len(col)
            try:
                # array('q').extend raises on non-int and on overflow --
                # but only after having appended the valid prefix, so the
                # partial write must be rolled back before demoting.
                # (Exact bools slip through as ints; schema validation
                # rejects them upstream of every packed write path.)
                col.extend(values)
                return
            except (TypeError, OverflowError):
                del col[before:]
        else:
            # A double buffer accepts ints silently but would hand back
            # floats, so the exact-type sweep must happen up front.
            if all(type(v) is float for v in values):
                col.extend(values)
                return
        demoted = list(col)
        demoted.extend(values)
        self._columns[index] = demoted  # type: ignore[index]

    def _set_value(self, index: int, slot: int, value: Any) -> None:
        """Overwrite one cell, demoting the column on type mismatch."""
        col = self._columns[index]  # type: ignore[index]
        if type(col) is list:
            col[slot] = value
            return
        if col.typecode == "q":
            if type(value) is int:
                try:
                    col[slot] = value
                    return
                except OverflowError:
                    pass
        elif type(value) is float:
            col[slot] = value
            return
        demoted = list(col)
        demoted[slot] = value
        self._columns[index] = demoted  # type: ignore[index]

    # -- mutation ------------------------------------------------------------

    def add(self, row: Tuple[Any, ...]) -> int:
        """Append a tuple; return its slot.  Raises when full."""
        if self._count >= self.capacity:
            raise OverflowError("page %d is full" % self.page_id)
        cols = self._columns
        if cols is None:
            cols = self._init_columns(row)
        for i, value in enumerate(row):
            self._append_value(i, value)
        self._count += 1
        if self._rows is not None:
            self._rows.append(row)
        self.dirty = True
        return self._count - 1

    def extend_rows(self, rows: Sequence[Tuple[Any, ...]]) -> int:
        """Append as many of ``rows`` as fit; return how many were taken.

        The bulk analogue of :meth:`add`: the rows are transposed once
        with a C-level ``zip`` and land as one buffer ``extend`` per
        *column*, so page-at-a-time producers pay near-constant
        interpreter overhead per page.
        """
        free = self.capacity - self._count
        if free <= 0:
            return 0
        taken = rows[:free] if len(rows) > free else rows
        n = len(taken)
        if n == 0:
            return 0
        if self._columns is None:
            self._init_columns(taken[0])
        for i, values in enumerate(zip(*taken)):
            self._extend_column(i, values)
        self._count += n
        if self._rows is not None:
            self._rows.extend(taken)
        self.dirty = True
        return n

    def extend_columns(self, columns: Sequence[Column], count: int) -> int:
        """Append up to ``count`` pre-validated column slices; return taken.

        The columnar analogue of :meth:`extend_rows` -- the batch
        operators' output path.  ``columns`` must all hold at least
        ``count`` values in matching row order; packed slices are copied
        buffer-to-buffer without materialising any row tuple.
        """
        free = self.capacity - self._count
        if free <= 0 or count <= 0:
            return 0
        n = count if count <= free else free
        cols = self._columns
        if cols is None:
            if not columns:
                return 0
            self._columns = [
                make_column(c.typecode if type(c) is array else infer_kind(c[0]))
                for c in columns
            ]
        for i, src in enumerate(columns):
            self._extend_column(i, src[:n] if len(src) > n else src)
        self._count += n
        self._rows = None
        self.dirty = True
        return n

    def replace(self, slot: int, row: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Overwrite ``slot``; return the previous tuple."""
        old = self.tuples[slot]
        for i, value in enumerate(row):
            self._set_value(i, slot, value)
        self._rows = None
        self.dirty = True
        return old

    def remove_slot(self, slot: int) -> Tuple[Any, ...]:
        """Delete the tuple at ``slot`` (later slots shift down)."""
        old = self.tuples[slot]
        for col in self._columns:  # type: ignore[union-attr]
            del col[slot]
        self._count -= 1
        self._rows = None
        self.dirty = True
        return old

    def clear(self) -> None:
        self._columns = (
            [make_column(k) for k in self._kinds] if self._kinds else None
        )
        self._rows = None
        self._count = 0
        self.dirty = True

    def copy(self) -> "Page":
        """Deep-enough copy (tuples are immutable) for snapshots."""
        clone = Page(self.page_id, self.capacity, self._kinds)
        if self._columns is not None:
            clone._columns = [col[:] for col in self._columns]
        clone._count = self._count
        clone.dirty = self.dirty
        return clone

    def __repr__(self) -> str:
        return "Page(id=%d, %d/%d tuples%s)" % (
            self.page_id,
            self._count,
            self.capacity,
            ", dirty" if self.dirty else "",
        )


__all__ = ["Page"]
