"""Fixed-capacity pages of tuples.

A :class:`Page` is the unit of IO everywhere in the reproduction: relations
are lists of pages, the simulated disk stores pages, spill files are written
a page at a time, and the Section 2 fault model counts page reads.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.storage.tuples import Schema
from repro.errors import ConfigurationError


class Page:
    """A slotted page holding up to ``capacity`` fixed-width tuples."""

    __slots__ = ("page_id", "capacity", "_tuples", "dirty")

    def __init__(self, page_id: int, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("page capacity must be at least one tuple")
        self.page_id = page_id
        self.capacity = capacity
        self._tuples: List[Tuple[Any, ...]] = []
        self.dirty = False

    @classmethod
    def for_schema(cls, page_id: int, schema: Schema, page_bytes: int) -> "Page":
        """A page sized so ``page_bytes // schema.tuple_bytes`` tuples fit."""
        return cls(page_id, schema.tuples_per_page(page_bytes))

    # -- contents ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self._tuples)

    def __getitem__(self, slot: int) -> Tuple[Any, ...]:
        return self._tuples[slot]

    @property
    def tuples(self) -> List[Tuple[Any, ...]]:
        """The live tuples, in slot order (do not mutate)."""
        return self._tuples

    @property
    def is_full(self) -> bool:
        return len(self._tuples) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._tuples

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._tuples)

    # -- mutation ------------------------------------------------------------

    def add(self, row: Tuple[Any, ...]) -> int:
        """Append a tuple; return its slot.  Raises when full."""
        if self.is_full:
            raise OverflowError("page %d is full" % self.page_id)
        self._tuples.append(row)
        self.dirty = True
        return len(self._tuples) - 1

    def extend_rows(self, rows: Sequence[Tuple[Any, ...]]) -> int:
        """Append as many of ``rows`` as fit; return how many were taken.

        The bulk analogue of :meth:`add`: one list ``extend`` instead of a
        Python-level call per tuple, so page-at-a-time producers pay
        near-constant interpreter overhead per page.
        """
        free = self.capacity - len(self._tuples)
        if free <= 0:
            return 0
        taken = rows[:free] if len(rows) > free else rows
        self._tuples.extend(taken)
        self.dirty = True
        return len(taken)

    def replace(self, slot: int, row: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Overwrite ``slot``; return the previous tuple."""
        old = self._tuples[slot]
        self._tuples[slot] = row
        self.dirty = True
        return old

    def remove_slot(self, slot: int) -> Tuple[Any, ...]:
        """Delete the tuple at ``slot`` (later slots shift down)."""
        self.dirty = True
        return self._tuples.pop(slot)

    def clear(self) -> None:
        self._tuples.clear()
        self.dirty = True

    def copy(self) -> "Page":
        """Deep-enough copy (tuples are immutable) for snapshots."""
        clone = Page(self.page_id, self.capacity)
        clone._tuples = list(self._tuples)
        clone.dirty = self.dirty
        return clone

    def __repr__(self) -> str:
        return "Page(id=%d, %d/%d tuples%s)" % (
            self.page_id,
            len(self._tuples),
            self.capacity,
            ", dirty" if self.dirty else "",
        )


__all__ = ["Page"]
