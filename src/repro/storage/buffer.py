"""A buffer pool with the paper's random-replacement assumption.

Section 2's fault model -- a lookup touching ``C`` distinct pages of an
``S``-page structure faults ``C * (1 - |M|/S)`` times -- assumes *random
replacement*.  This pool implements random replacement (seeded, so tests
are deterministic) plus LRU and FIFO for the ablation benchmark that checks
how well the closed-form model predicts measured fault rates.
"""

from __future__ import annotations

import enum
import random
from collections import OrderedDict
from typing import Callable, Dict, Hashable, List, Optional, Tuple
from repro.errors import ConfigurationError


class ReplacementPolicy(enum.Enum):
    """Victim-selection policies supported by :class:`BufferPool`."""

    RANDOM = "random"
    LRU = "lru"
    FIFO = "fifo"


class BufferPool:
    """Fixed-capacity cache of page identifiers.

    The pool does not hold page *contents* -- the structures in
    :mod:`repro.access` keep their nodes in Python objects -- it models
    which pages are memory resident, which is the only thing the Section 2
    cost function depends on.  ``access(page_id)`` returns ``True`` on a hit
    and ``False`` on a fault, updating hit/fault statistics.

    An optional ``on_fault`` callback lets callers charge a random IO to
    their counters; an optional ``on_evict_dirty`` supports the recovery
    checkpointer.
    """

    def __init__(
        self,
        capacity: int,
        policy: ReplacementPolicy = ReplacementPolicy.RANDOM,
        seed: int = 1984,
        on_fault: Optional[Callable[[Hashable], None]] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("buffer pool needs at least one frame")
        self.capacity = capacity
        self.policy = policy
        self._rng = random.Random(seed)
        self._on_fault = on_fault
        # OrderedDict doubles as recency (LRU) and insertion (FIFO) order.
        self._frames: "OrderedDict[Hashable, bool]" = OrderedDict()
        self.hits = 0
        self.faults = 0
        #: Optional :class:`repro.chaos.FaultInjector`: every page fault
        #: (the pool's only I/O) is a schedulable crash point.
        self.fault_injector = None

    # -- statistics --------------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.hits + self.faults

    @property
    def fault_rate(self) -> float:
        """Observed fault fraction (0 when never accessed)."""
        return self.faults / self.accesses if self.accesses else 0.0

    @property
    def resident(self) -> int:
        """Number of occupied frames."""
        return len(self._frames)

    def contains(self, page_id: Hashable) -> bool:
        """Residence check with no statistics side effects."""
        return page_id in self._frames

    def reset_stats(self) -> None:
        self.hits = 0
        self.faults = 0

    # -- operation -----------------------------------------------------------------

    def access(self, page_id: Hashable, dirty: bool = False) -> bool:
        """Touch ``page_id``; return ``True`` on hit, ``False`` on fault."""
        if page_id in self._frames:
            self.hits += 1
            self._frames[page_id] = self._frames[page_id] or dirty
            if self.policy is ReplacementPolicy.LRU:
                self._frames.move_to_end(page_id)
            return True

        self.faults += 1
        if self.fault_injector is not None:
            self.fault_injector.point("buffer fault %r" % (page_id,))
        if self._on_fault is not None:
            self._on_fault(page_id)
        if len(self._frames) >= self.capacity:
            self._evict()
        self._frames[page_id] = dirty
        return False

    def _evict(self) -> Hashable:
        if self.policy is ReplacementPolicy.RANDOM:
            victim = self._rng.choice(list(self._frames.keys()))
        else:
            # Both LRU and FIFO evict the oldest entry; they differ only in
            # whether access() refreshes recency above.
            victim = next(iter(self._frames))
        del self._frames[victim]
        return victim

    def pin_all(self, page_ids: List[Hashable]) -> None:
        """Pre-load pages without counting faults (warm-up helper)."""
        for pid in page_ids:
            if len(self._frames) >= self.capacity:
                break
            self._frames.setdefault(pid, False)

    def dirty_pages(self) -> List[Hashable]:
        """Identifiers of dirty resident pages (for the checkpointer)."""
        return [pid for pid, dirty in self._frames.items() if dirty]

    def mark_clean(self, page_id: Hashable) -> None:
        if page_id in self._frames:
            self._frames[page_id] = False

    def __repr__(self) -> str:
        return "BufferPool(%s, %d/%d frames, %.1f%% faults)" % (
            self.policy.value,
            len(self._frames),
            self.capacity,
            100.0 * self.fault_rate,
        )


__all__ = ["BufferPool", "ReplacementPolicy"]
