"""Hash partitioning of relations -- Section 3.3 of the paper.

"A general way to create a partition of R compatible with h is to partition
the set of hash values X that h can assume into subsets X1..Xn" -- here the
hash-value space is the integers and the subsets are residue classes of a
salted hash, so partitioning R and S with the same function reduces the big
join to bucket-wise joins.

Spilled buckets stage through one output-buffer page each (that is where
the GRACE/hybrid fan-out limit ``B < |M|`` comes from), and flushing a
buffer is a *random* IO unless there is only one spill bucket -- the source
of the hybrid discontinuity in Figure 1.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.cost.counters import OperationCounters
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page
from repro.storage.relation import Relation, Row
from repro.errors import ConfigurationError

#: Salt so partition hashing is independent of Python's string hashing and
#: of the bucket hashing inside HashIndex.
_PARTITION_SALT = 0x5DB5


def partition_hash(key: Any) -> int:
    """The shared partitioning function ``h`` (deterministic per run)."""
    return hash((_PARTITION_SALT, key))


#: Resolution of the hash-value space split between a resident class and
#: the spill buckets (Section 3.3: partition the set of hash values).
_HASH_SPACE = 1 << 20


def hybrid_class(key: Any, q: float, buckets: int, depth: int = 0) -> int:
    """Hybrid-hash class of ``key``: 0 = resident, 1..B = spill buckets.

    The hash is salted with ``depth`` so a recursive re-partition of an
    overflowing bucket actually splits it.  Lives here (not on the join
    class) so parallel workers can recompute classes from keys alone.
    """
    u = (partition_hash((depth, key)) % _HASH_SPACE) / _HASH_SPACE
    if u < q or buckets == 0:
        return 0
    return 1 + min(buckets - 1, int((u - q) / (1.0 - q) * buckets))


#: Salt for re-splitting a hot spill bucket, independent of both the
#: bucket-level hash and any recursion level's depth-salted hash -- so an
#: adaptive re-split divides exactly the keys the bucket hash collided,
#: and a later static recursion on a still-hot sub-bucket divides again.
_RESPLIT_SALT = 0x9E37


def resplit_class(key: Any, sub_buckets: int, depth: int) -> int:
    """Sub-bucket of ``key`` when a skew-hot spill bucket is re-split."""
    return partition_hash((_RESPLIT_SALT, depth, key)) % sub_buckets


def partition_fan_out(
    r_pages: int, memory_pages: int, fudge: float
) -> Tuple[int, float]:
    """The hybrid partition plan ``(B, q)`` of Section 3.7.

    ``B`` spill buckets plus an in-memory hash table for the resident
    bucket R0 covering fraction ``q`` of R.  ``B == 0`` when R fits.
    """
    table_pages = r_pages * fudge
    if table_pages <= memory_pages:
        return 0, 1.0
    if memory_pages < 2:
        raise ConfigurationError("partitioning needs at least two pages of memory")
    b = math.ceil((table_pages - memory_pages) / (memory_pages - 1))
    q = max(0.0, (memory_pages - b) / table_pages)
    return b, q


class SpillWriter:
    """Per-bucket output buffering with the paper's IO accounting."""

    def __init__(
        self,
        disk: SimulatedDisk,
        file_names: Sequence[str],
        tuples_per_page: int,
        counters: OperationCounters,
    ) -> None:
        self.disk = disk
        self.file_names = list(file_names)
        self.tuples_per_page = tuples_per_page
        self.counters = counters
        self._buffers: List[List[Row]] = [[] for _ in file_names]
        self._single_bucket = len(file_names) == 1
        for name in self.file_names:
            if disk.exists(name):
                disk.delete(name)
            disk.create(name)

    def write(self, bucket: int, row: Row) -> None:
        """Buffer ``row`` for ``bucket``, flushing a full page to disk."""
        self.counters.move_tuple()
        buf = self._buffers[bucket]
        buf.append(row)
        if len(buf) >= self.tuples_per_page:
            self._flush(bucket)

    def write_many(self, bucket: int, rows: Sequence[Row]) -> None:
        """Buffer many rows for ``bucket`` with one bulk move charge.

        Page contents and per-file page order are identical to calling
        :meth:`write` per row; flush IO classification is forced (single
        vs many buckets), so grouping rows per bucket cannot change the
        sequential/random tallies either.
        """
        if not rows:
            return
        self.counters.move_tuple(len(rows))
        buf = self._buffers[bucket]
        buf.extend(rows)
        tpp = self.tuples_per_page
        while len(buf) >= tpp:
            page = Page(0, tpp)
            page.extend_rows(buf[:tpp])
            self.disk.append(
                self.file_names[bucket], page, sequential=self._single_bucket
            )
            del buf[:tpp]

    def _flush(self, bucket: int) -> None:
        buf = self._buffers[bucket]
        if not buf:
            return
        page = Page(0, self.tuples_per_page)
        for row in buf:
            page.add(row)
        # One spill bucket => the file grows contiguously (sequential);
        # many buckets => the disk head jumps between them (random).
        self.disk.append(
            self.file_names[bucket], page, sequential=self._single_bucket
        )
        buf.clear()

    def close(self) -> List[str]:
        """Flush every partial buffer; return the bucket file names."""
        for bucket in range(len(self._buffers)):
            self._flush(bucket)
        return self.file_names


def partition_relation(
    relation: Relation,
    key: Callable[[Row], Any],
    buckets: int,
    disk: SimulatedDisk,
    counters: OperationCounters,
    file_prefix: str,
    resident_bucket: bool = False,
    on_resident: Optional[Callable[[Any, Row], None]] = None,
    batch: bool = True,
    classify: Optional[Callable[[Sequence[Any]], List[int]]] = None,
    checkpoint: Optional[Callable[[], None]] = None,
    key_index: Optional[int] = None,
) -> List[str]:
    """Partition ``relation`` into ``buckets`` spill files by hash.

    With ``resident_bucket=True`` (hybrid hash), tuples whose hash lands on
    residue 0 are *not* spilled: they are handed to ``on_resident`` (which
    builds the in-memory hash table for R0 or probes it for S0) and the
    remaining residues map to the ``buckets`` spill files.

    Each tuple is charged one ``hash``; spilled tuples additionally charge
    one ``move`` into the output buffer (inside :class:`SpillWriter`).
    Returns the spill file names (empty when everything stayed resident).

    The default ``batch`` path walks pages, charges hashes in bulk, and
    groups spill writes per bucket per page -- identical files, charges,
    and resident-callback order.  ``classify`` optionally supplies the
    residue computation for a whole page of keys (the parallel partition
    phase plugs worker-computed residues in here); it must return
    ``partition_hash(key) % (buckets + resident)`` per key.

    ``checkpoint`` (the governor's cooperative cancellation hook) is
    called once per input page in both execution modes, so a cancelled or
    timed-out query stops partitioning within one page of work.

    ``key_index`` (batch path only) names the join-key column position:
    keys are then read straight off each page's packed column buffer
    instead of calling ``key`` once per row.  Key extraction is uncharged
    in both forms, so the counters cannot differ.
    """
    if buckets < 0:
        raise ConfigurationError("bucket count cannot be negative")
    total_classes = buckets + (1 if resident_bucket else 0)
    if total_classes == 0:
        raise ConfigurationError("partitioning into zero classes")

    writer: Optional[SpillWriter] = None
    if buckets > 0:
        names = ["%s.%d" % (file_prefix, i) for i in range(buckets)]
        writer = SpillWriter(disk, names, relation.tuples_per_page, counters)

    if batch:
        for page in relation.pages:
            if checkpoint is not None:
                checkpoint()
            rows = page.tuples
            if not rows:
                continue
            counters.hash_key(len(rows))
            keys = (
                page.column(key_index)
                if key_index is not None
                else [key(row) for row in rows]
            )
            residues = (
                classify(keys)
                if classify is not None
                else [partition_hash(k) % total_classes for k in keys]
            )
            if writer is None:
                assert on_resident is not None, "resident bucket needs a consumer"
                for k, row in zip(keys, rows):
                    on_resident(k, row)
                continue
            pending: List[List[Row]] = [[] for _ in range(buckets)]
            if resident_bucket:
                for k, row, residue in zip(keys, rows, residues):
                    if residue == 0:
                        assert on_resident is not None
                        on_resident(k, row)
                    else:
                        pending[residue - 1].append(row)
            else:
                for row, residue in zip(rows, residues):
                    pending[residue].append(row)
            for b, bucket_rows in enumerate(pending):
                writer.write_many(b, bucket_rows)
        return writer.close() if writer is not None else []

    tpp = max(1, relation.tuples_per_page)
    for i, row in enumerate(relation):
        if checkpoint is not None and i % tpp == 0:
            checkpoint()
        counters.hash_key()
        residue = partition_hash(key(row)) % total_classes
        if resident_bucket and residue == 0:
            assert on_resident is not None, "resident bucket needs a consumer"
            on_resident(key(row), row)
        else:
            assert writer is not None
            writer.write(residue - (1 if resident_bucket else 0), row)

    return writer.close() if writer is not None else []


def read_bucket(
    disk: SimulatedDisk, file_name: str
) -> List[Row]:
    """Read a spilled bucket back (sequential IO, charged via the disk)."""
    rows: List[Row] = []
    for page in disk.scan(file_name):
        rows.extend(page.tuples)
    return rows


__all__ = [
    "SpillWriter",
    "hybrid_class",
    "partition_fan_out",
    "partition_hash",
    "partition_relation",
    "read_bucket",
    "resplit_class",
]
