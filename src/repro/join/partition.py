"""Hash partitioning of relations -- Section 3.3 of the paper.

"A general way to create a partition of R compatible with h is to partition
the set of hash values X that h can assume into subsets X1..Xn" -- here the
hash-value space is the integers and the subsets are residue classes of a
salted hash, so partitioning R and S with the same function reduces the big
join to bucket-wise joins.

Spilled buckets stage through one output-buffer page each (that is where
the GRACE/hybrid fan-out limit ``B < |M|`` comes from), and flushing a
buffer is a *random* IO unless there is only one spill bucket -- the source
of the hybrid discontinuity in Figure 1.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.cost.counters import OperationCounters
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page
from repro.storage.relation import Relation, Row

#: Salt so partition hashing is independent of Python's string hashing and
#: of the bucket hashing inside HashIndex.
_PARTITION_SALT = 0x5DB5


def partition_hash(key: Any) -> int:
    """The shared partitioning function ``h`` (deterministic per run)."""
    return hash((_PARTITION_SALT, key))


def partition_fan_out(
    r_pages: int, memory_pages: int, fudge: float
) -> Tuple[int, float]:
    """The hybrid partition plan ``(B, q)`` of Section 3.7.

    ``B`` spill buckets plus an in-memory hash table for the resident
    bucket R0 covering fraction ``q`` of R.  ``B == 0`` when R fits.
    """
    table_pages = r_pages * fudge
    if table_pages <= memory_pages:
        return 0, 1.0
    if memory_pages < 2:
        raise ValueError("partitioning needs at least two pages of memory")
    b = math.ceil((table_pages - memory_pages) / (memory_pages - 1))
    q = max(0.0, (memory_pages - b) / table_pages)
    return b, q


class SpillWriter:
    """Per-bucket output buffering with the paper's IO accounting."""

    def __init__(
        self,
        disk: SimulatedDisk,
        file_names: Sequence[str],
        tuples_per_page: int,
        counters: OperationCounters,
    ) -> None:
        self.disk = disk
        self.file_names = list(file_names)
        self.tuples_per_page = tuples_per_page
        self.counters = counters
        self._buffers: List[List[Row]] = [[] for _ in file_names]
        self._single_bucket = len(file_names) == 1
        for name in self.file_names:
            if disk.exists(name):
                disk.delete(name)
            disk.create(name)

    def write(self, bucket: int, row: Row) -> None:
        """Buffer ``row`` for ``bucket``, flushing a full page to disk."""
        self.counters.move_tuple()
        buf = self._buffers[bucket]
        buf.append(row)
        if len(buf) >= self.tuples_per_page:
            self._flush(bucket)

    def _flush(self, bucket: int) -> None:
        buf = self._buffers[bucket]
        if not buf:
            return
        page = Page(0, self.tuples_per_page)
        for row in buf:
            page.add(row)
        # One spill bucket => the file grows contiguously (sequential);
        # many buckets => the disk head jumps between them (random).
        self.disk.append(
            self.file_names[bucket], page, sequential=self._single_bucket
        )
        buf.clear()

    def close(self) -> List[str]:
        """Flush every partial buffer; return the bucket file names."""
        for bucket in range(len(self._buffers)):
            self._flush(bucket)
        return self.file_names


def partition_relation(
    relation: Relation,
    key: Callable[[Row], Any],
    buckets: int,
    disk: SimulatedDisk,
    counters: OperationCounters,
    file_prefix: str,
    resident_bucket: bool = False,
    on_resident: Optional[Callable[[Any, Row], None]] = None,
) -> List[str]:
    """Partition ``relation`` into ``buckets`` spill files by hash.

    With ``resident_bucket=True`` (hybrid hash), tuples whose hash lands on
    residue 0 are *not* spilled: they are handed to ``on_resident`` (which
    builds the in-memory hash table for R0 or probes it for S0) and the
    remaining residues map to the ``buckets`` spill files.

    Each tuple is charged one ``hash``; spilled tuples additionally charge
    one ``move`` into the output buffer (inside :class:`SpillWriter`).
    Returns the spill file names (empty when everything stayed resident).
    """
    if buckets < 0:
        raise ValueError("bucket count cannot be negative")
    total_classes = buckets + (1 if resident_bucket else 0)
    if total_classes == 0:
        raise ValueError("partitioning into zero classes")

    writer: Optional[SpillWriter] = None
    if buckets > 0:
        names = ["%s.%d" % (file_prefix, i) for i in range(buckets)]
        writer = SpillWriter(disk, names, relation.tuples_per_page, counters)

    for row in relation:
        counters.hash_key()
        residue = partition_hash(key(row)) % total_classes
        if resident_bucket and residue == 0:
            assert on_resident is not None, "resident bucket needs a consumer"
            on_resident(key(row), row)
        else:
            assert writer is not None
            writer.write(residue - (1 if resident_bucket else 0), row)

    return writer.close() if writer is not None else []


def read_bucket(
    disk: SimulatedDisk, file_name: str
) -> List[Row]:
    """Read a spilled bucket back (sequential IO, charged via the disk)."""
    rows: List[Row] = []
    for page in disk.scan(file_name):
        rows.extend(page.tuples)
    return rows


__all__ = [
    "SpillWriter",
    "partition_fan_out",
    "partition_hash",
    "partition_relation",
    "read_bucket",
]
