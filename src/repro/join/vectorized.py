"""Columnar (vectorized) join kernels -- the PR-9 hot path.

The row-view batch arms of the hash joins materialise every tuple twice:
once when a page's cached row view is built for the build/probe loops, and
once more when each match concatenates ``r_row + s_row``.  The kernels here
never touch a row tuple on the happy path.  The build side stages its pages
into a :class:`ColumnStore` (one oversized columnar page) and the hash
table stores **row indices** instead of row tuples; probing hashes a whole
key column per page, flattens the match chains into parallel build/probe
index lists, and group-gathers both sides' survivor columns straight into
``Relation.extend_columns``.

Counter identity with the row arms is by construction:

* :meth:`~repro.access.hash_index.HashIndex.insert_batch` and
  :meth:`~repro.access.hash_index.HashIndex.probe_batch` charge from the
  *keys* and their order alone -- one hash + one move + one comparison per
  chain entry scanned per insert, one hash + one comparison per chain
  entry per probe.  Storing an index where the row arm stores a tuple
  changes no charge.
* Gathers and ``extend_columns`` are uncharged, exactly like the row
  arms' uncharged ``emit`` / ``extend_rows`` output paths.

The differential suite (tests/test_batch_equivalence.py and
tests/test_join_pipeline.py) asserts byte-identical rows *and*
``OperationCounters`` across the tuple / row-view / columnar modes for
every algorithm.
"""

from __future__ import annotations

from itertools import repeat
from typing import Any, List, Optional, Sequence, Tuple

from repro.access.hash_index import HashIndex
from repro.cost.counters import OperationCounters
from repro.operators.columnar import gather_columns
from repro.storage.codecs import Column, column_kinds
from repro.storage.page import Page
from repro.storage.relation import Relation, Row


class ColumnStore:
    """Append-only columnar staging area for build-side rows.

    One oversized :class:`~repro.storage.page.Page` sized for the whole
    relation: ``Page._extend_column`` keeps packed buffers packed and
    demotes exactly like the relation's own pages, so stored values
    round-trip with their exact types.  Rows are addressed by their
    global append index -- the values the columnar hash table stores.
    """

    __slots__ = ("_page",)

    def __init__(self, relation: Relation) -> None:
        self._page = Page(
            0, max(1, relation.cardinality), column_kinds(relation.schema)
        )

    def __len__(self) -> int:
        return len(self._page)

    @property
    def columns(self) -> List[Column]:
        return self._page.columns

    def add_page(self, page: Page) -> None:
        """Stage a whole input page (buffer-to-buffer column extends)."""
        self._page.extend_columns(page.columns, len(page))

    def add_columns(self, columns: Sequence[Column], count: int) -> None:
        """Stage a pre-gathered subset of an input page."""
        self._page.extend_columns(columns, count)

    def row(self, index: int) -> Row:
        """One staged row as a tuple (the demotion/overflow slow paths)."""
        return self._page.tuples[index]


def insert_page(
    table: HashIndex, store: ColumnStore, keys: Sequence[Any], page: Page
) -> None:
    """Build step for one full page: index the keys, stage the columns.

    Charges are identical to inserting ``(key, row)`` pairs -- the table
    stores the rows' global store indices instead.
    """
    base = len(store)
    table.insert_batch(zip(keys, range(base, base + len(page))))
    store.add_page(page)


def flatten_chains(
    chains: Sequence[List[int]],
) -> Tuple[List[int], List[int]]:
    """Flatten probe chains into parallel (build, probe) index lists.

    Preserves the row arms' match order exactly: probe rows in input
    order, each probe row's matches in chain order.
    """
    build_idx: List[int] = []
    probe_idx: List[int] = []
    for s_i, chain in enumerate(chains):
        if chain:
            build_idx.extend(chain)
            probe_idx.extend(repeat(s_i, len(chain)))
    return build_idx, probe_idx


def probe_page(
    table: HashIndex,
    store: ColumnStore,
    output: Relation,
    keys: Sequence[Any],
    page: Page,
    positions: Optional[List[int]] = None,
) -> int:
    """Probe one page's key column and emit matches columnar-ly.

    ``positions`` maps probe-key ordinals back to page slots when only a
    subset of the page was probed (hybrid's resident class); ``None``
    means the whole page in slot order.  Returns the match count.
    """
    chains = table.probe_batch(keys)
    build_idx, probe_idx = flatten_chains(chains)
    if not build_idx:
        return 0
    if positions is not None:
        probe_idx = [positions[i] for i in probe_idx]
    out_cols = gather_columns(store.columns, build_idx)
    out_cols.extend(gather_columns(page.columns, probe_idx))
    output.extend_columns(out_cols, len(build_idx))
    return len(build_idx)


def join_bucket_columnar(
    r_rows: List[Row],
    s_rows: List[Row],
    r_key_index: int,
    s_key_index: int,
    fudge: float,
    counters: OperationCounters,
    output: Relation,
) -> int:
    """Columnar twin of :func:`repro.join.parallel.join_bucket`.

    Same hash-table build and probe (hence identical charges), but the
    matched pairs are emitted by transposing the bucket rows once and
    group-gathering survivor columns instead of concatenating one tuple
    per match.  Returns the match count.
    """
    table = HashIndex(counters, max_load=fudge)
    table.insert_batch(
        (row[r_key_index], i) for i, row in enumerate(r_rows)
    )
    chains = table.probe_batch([row[s_key_index] for row in s_rows])
    build_idx, probe_idx = flatten_chains(chains)
    if not build_idx:
        return 0
    out_cols = gather_columns(list(zip(*r_rows)), build_idx)
    out_cols.extend(gather_columns(list(zip(*s_rows)), probe_idx))
    output.extend_columns(out_cols, len(build_idx))
    return len(build_idx)


__all__ = [
    "ColumnStore",
    "flatten_chains",
    "insert_page",
    "join_bucket_columnar",
    "probe_page",
]
