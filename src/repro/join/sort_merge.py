"""Sort-merge join -- Section 3.4.

Phase 1 forms sorted runs with replacement selection (Knuth's selection
tree): a priority queue of the ``{M}`` tuples that fit in memory emits the
smallest key that can still extend the current run, so runs average twice
the memory size.  Phase 2 merges *all* runs of R and S concurrently --
possible in one go because the paper assumes ``sqrt(|S|*F) <= |M|`` -- and
joins matching keys as they surface from the merge.

Charging follows the paper's formula: every priority-queue insert costs
``log2(queue)`` comparisons+swaps, run pages are written sequentially and
reread randomly (the merge alternates between runs), and the final merge
charges one comparison per joined tuple.
"""

from __future__ import annotations

import heapq
import itertools
import math
import operator
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.cost.counters import heap_push_charges
from repro.join.base import JoinAlgorithm, JoinSpec
from repro.join.vectorized import ColumnStore
from repro.operators.columnar import gather_columns
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page
from repro.storage.relation import Relation, Row
from repro.errors import ConfigurationError


class _RunCursor:
    """Streams one sorted run back from disk, page at a time."""

    def __init__(self, disk: SimulatedDisk, file_name: str) -> None:
        self.disk = disk
        self.file_name = file_name
        self._page_index = 0
        self._rows: List[Tuple[Any, Row]] = []
        self._slot = 0

    def next(self) -> Optional[Tuple[Any, Row]]:
        if self._slot >= len(self._rows):
            if self._page_index >= self.disk.page_count(self.file_name):
                return None
            # Merge reads hop between runs, so let the disk-head heuristic
            # classify them (they come out random in a many-run merge).
            page = self.disk.read(self.file_name, self._page_index)
            self._page_index += 1
            self._rows = list(page.tuples)
            self._slot = 0
            if not self._rows:
                return None
        item = self._rows[self._slot]
        self._slot += 1
        return item


class SortMergeJoin(JoinAlgorithm):
    """Replacement-selection runs + one n-way merge-join pass."""

    name = "sort-merge"

    # -- phase 1: run formation ------------------------------------------------

    def _form_runs(
        self, spec: JoinSpec, relation: Relation, key_field: str, tag: str
    ) -> List[str]:
        """Sort ``relation`` into runs on disk; return the run file names.

        In batch mode the replacement-selection charges are computed
        arithmetically up front instead of per heap operation.  The heap
        holds exactly ``capacity`` entries from the end of the initial
        fill until the source dries up (every pop is followed by a push),
        so the fill charges :func:`heap_push_charges` and each of the
        remaining ``n - capacity`` pushes charges the constant
        ``log2(capacity)`` compare+swap plus one fence comparison --
        identical totals to the per-operation accounting.
        """
        key = relation.key_of(key_field)
        capacity = spec.memory_tuples(relation.tuples_per_page)
        tuples_per_page = relation.tuples_per_page

        bulk = self.batch
        if bulk:
            n = relation.cardinality
            fill = min(n, capacity)
            fill_charges = heap_push_charges(fill)
            steady = n - fill
            per_push = max(1, math.ceil(math.log2(capacity + 1)))
            self.counters.compare(fill_charges + steady * (per_push + 1))
            self.counters.swap_tuples(fill_charges + steady * per_push)

        run_names: List[str] = []
        # Heap entries: (fence, key, seq, row); fence orders the *next* run
        # after everything still eligible for the current one.
        seq = itertools.count()
        heap: List[Tuple[int, Any, int, Row]] = []
        source = iter(relation)

        for row in itertools.islice(source, capacity):
            if not bulk:
                self.charge_heap_op(len(heap) + 1)
            heapq.heappush(heap, (0, key(row), next(seq), row))

        current_fence = 0
        run_buffer: List[Row] = []
        page_index = 0
        run_name: Optional[str] = None

        def open_run() -> None:
            nonlocal run_name, page_index
            run_name = self.scratch_name(spec, "%s-run%d" % (tag, len(run_names)))
            if self.disk.exists(run_name):
                self.disk.delete(run_name)
            self.disk.create(run_name)
            run_names.append(run_name)
            page_index = 0

        def emit_to_run(out_row: Row) -> None:
            nonlocal page_index
            run_buffer.append(out_row)
            if len(run_buffer) >= tuples_per_page:
                flush_run_page()

        def flush_run_page() -> None:
            nonlocal page_index
            if not run_buffer:
                return
            self.checkpoint()
            page = Page(page_index, tuples_per_page)
            page.extend_rows(run_buffer)
            assert run_name is not None
            self.disk.append(run_name, page, sequential=page_index > 0)
            page_index += 1
            run_buffer.clear()

        open_run()
        while heap:
            fence, k, _, row = heapq.heappop(heap)
            if fence != current_fence:
                # Queue rolled over to the next run: close this one.
                flush_run_page()
                open_run()
                current_fence = fence
            # Runs store (key, row) pairs so the merge cursors need not
            # re-derive keys (the paper's TID-key-pair option).
            emit_to_run((k, row))
            nxt = next(source, None)
            if nxt is not None:
                nk = key(nxt)
                if not bulk:
                    self.counters.compare()
                nfence = fence if nk >= k else fence + 1
                if not bulk:
                    self.charge_heap_op(len(heap) + 1)
                heapq.heappush(heap, (nfence, nk, next(seq), nxt))
        flush_run_page()
        # Drop a trailing empty run (possible when input size divides runs).
        if run_names and self.disk.page_count(run_names[-1]) == 0:
            self.disk.delete(run_names.pop())
        return run_names

    # -- phase 2: merge-join -------------------------------------------------------

    def _merged_stream(
        self, runs: List[str]
    ) -> Iterator[Tuple[Any, int, Row]]:
        """Globally sorted (key, source, row) stream over tagged runs.

        ``runs`` holds (file name, source tag) pairs encoded as
        ``"tag|name"``; heap inserts charge ``log2(#runs)`` as in the
        paper's final-merge term.
        """
        cursors: List[Tuple[int, _RunCursor]] = []
        for encoded in runs:
            tag, name = encoded.split("|", 1)
            cursors.append((int(tag), _RunCursor(self.disk, name)))

        heap: List[Tuple[Any, int, int, Row, int]] = []
        for idx, (source, cursor) in enumerate(cursors):
            item = cursor.next()
            if item is not None:
                k, row = item
                self.charge_heap_op(len(heap) + 1)
                heapq.heappush(heap, (k, source, idx, row, 0))
        emitted = 0
        while heap:
            if emitted % 256 == 0:
                self.checkpoint()
            emitted += 1
            k, source, idx, row, _ = heapq.heappop(heap)
            yield k, source, row
            item = cursors[idx][1].next()
            if item is not None:
                nk, nrow = item
                self.charge_heap_op(len(heap) + 1)
                heapq.heappush(heap, (nk, source, idx, nrow, 0))

    def _execute(self, spec: JoinSpec, output: Relation) -> None:
        total_pages = (spec.r.page_count + spec.s.page_count) * spec.params.fudge
        if total_pages <= spec.memory_pages:
            if self.batch:
                if self.columnar:
                    self._execute_in_memory_columnar(spec, output)
                else:
                    self._execute_in_memory_batch(spec, output)
            else:
                self._execute_in_memory(spec, output)
            return

        r_runs = self._form_runs(spec, spec.r, spec.r_field, "r")
        s_runs = self._form_runs(spec, spec.s, spec.s_field, "s")
        if len(r_runs) + len(s_runs) > spec.memory_pages:
            raise ConfigurationError(
                "cannot merge %d runs with %d pages of memory; the paper "
                "assumes sqrt(|S|*F) <= |M|"
                % (len(r_runs) + len(s_runs), spec.memory_pages)
            )

        tagged = ["0|%s" % n for n in r_runs] + ["1|%s" % n for n in s_runs]
        self._merge_join(self._merged_stream(tagged), output)

        for name in r_runs + s_runs:
            self.disk.delete(name)

    def _execute_in_memory(self, spec: JoinSpec, output: Relation) -> None:
        """Both relations fit: heap-sort each in memory, then merge-join."""

        def in_memory_sorted(
            relation: Relation, field: str, source: int
        ) -> List[Tuple[Any, int, Row]]:
            key = relation.key_of(field)
            heap: List[Tuple[Any, int, int, Row]] = []
            seq = itertools.count()
            for row in relation:
                self.charge_heap_op(len(heap) + 1)
                heapq.heappush(heap, (key(row), source, next(seq), row))
            out: List[Tuple[Any, int, Row]] = []
            while heap:
                k, src, _, row = heapq.heappop(heap)
                out.append((k, src, row))
            return out

        merged = list(
            heapq.merge(
                in_memory_sorted(spec.r, spec.r_field, 0),
                in_memory_sorted(spec.s, spec.s_field, 1),
                key=lambda item: item[0],
            )
        )
        self._merge_join(iter(merged), output)

    def _execute_in_memory_batch(self, spec: JoinSpec, output: Relation) -> None:
        """Batch in-memory variant: stable sorts instead of explicit heaps.

        Heap entries carry an insertion sequence number, so the tuple path
        pops rows in *stable* key order -- exactly what ``list.sort`` on
        the key produces -- and ``heapq.merge`` of two sorted streams with
        ties favouring the first equals concatenation plus a stable sort.
        Heap charges are computed arithmetically; identical totals.
        """

        def sorted_rows(
            relation: Relation, field: str, source: int
        ) -> List[Tuple[Any, int, Row]]:
            ki = relation.schema.index_of(field)
            items: List[Tuple[Any, int, Row]] = []
            for page in relation.pages:
                # Keys come straight off the packed join-key column; zip
                # against the cached row view yields the same triples.
                items.extend(
                    zip(page.column(ki), itertools.repeat(source), page.tuples)
                )
            charges = heap_push_charges(len(items))
            self.counters.compare(charges)
            self.counters.swap_tuples(charges)
            items.sort(key=operator.itemgetter(0))
            return items

        merged = sorted_rows(spec.r, spec.r_field, 0)
        merged.extend(sorted_rows(spec.s, spec.s_field, 1))
        merged.sort(key=operator.itemgetter(0))
        self._merge_join_batch(merged, output)

    def _execute_in_memory_columnar(
        self, spec: JoinSpec, output: Relation
    ) -> None:
        """Vectorized in-memory variant: sort row *indices*, gather matches.

        Identical sort keys, stability, and charges to the row-view batch
        arm -- the triples carry a global row index into a
        :class:`~repro.join.vectorized.ColumnStore` instead of the row
        tuple, and the merge loop group-gathers survivor columns straight
        into ``Relation.extend_columns``.
        """

        def sorted_entries(
            relation: Relation, field: str, source: int
        ) -> Tuple[ColumnStore, List[Tuple[Any, int, int]]]:
            ki = relation.schema.index_of(field)
            store = ColumnStore(relation)
            items: List[Tuple[Any, int, int]] = []
            base = 0
            for page in relation.pages:
                n = len(page)
                if not n:
                    continue
                items.extend(
                    zip(
                        page.column(ki),
                        itertools.repeat(source),
                        range(base, base + n),
                    )
                )
                store.add_page(page)
                base += n
            charges = heap_push_charges(len(items))
            self.counters.compare(charges)
            self.counters.swap_tuples(charges)
            items.sort(key=operator.itemgetter(0))
            return store, items

        r_store, merged = sorted_entries(spec.r, spec.r_field, 0)
        s_store, s_items = sorted_entries(spec.s, spec.s_field, 1)
        merged.extend(s_items)
        merged.sort(key=operator.itemgetter(0))
        self._merge_join_columnar(merged, r_store, s_store, output)

    def _merge_join_columnar(
        self,
        merged: Sequence[Tuple[Any, int, int]],
        r_store: ColumnStore,
        s_store: ColumnStore,
        output: Relation,
    ) -> None:
        """Group the sorted index stream and emit matches buffer-to-buffer."""
        self.checkpoint()
        self.counters.compare(len(merged))  # one merge comparison per tuple
        build_idx: List[int] = []
        probe_idx: List[int] = []
        i, n = 0, len(merged)
        while i < n:
            k = merged[i][0]
            r_group: List[int] = []
            s_group: List[int] = []
            j = i
            while j < n and merged[j][0] == k:
                (r_group if merged[j][1] == 0 else s_group).append(merged[j][2])
                j += 1
            if r_group and s_group:
                for r_i in r_group:
                    build_idx.extend(itertools.repeat(r_i, len(s_group)))
                    probe_idx.extend(s_group)
            i = j
        if build_idx:
            out_cols = gather_columns(r_store.columns, build_idx)
            out_cols.extend(gather_columns(s_store.columns, probe_idx))
            output.extend_columns(out_cols, len(build_idx))

    def _merge_join(
        self, stream: Iterator[Tuple[Any, int, Row]], output: Relation
    ) -> None:
        """Group the sorted stream by key and cross-match R x S groups."""
        current_key: Any = None
        r_group: List[Row] = []
        s_group: List[Row] = []
        have_group = False

        def flush_group() -> None:
            for r_row in r_group:
                for s_row in s_group:
                    self.emit(output, r_row, s_row)

        for k, source, row in stream:
            self.counters.compare()  # the (||R||+||S||) * comp merge term
            if not have_group or k != current_key:
                flush_group()
                current_key = k
                r_group, s_group = [], []
                have_group = True
            (r_group if source == 0 else s_group).append(row)
        flush_group()

    def _merge_join_batch(
        self, merged: Sequence[Tuple[Any, int, Row]], output: Relation
    ) -> None:
        """Group a materialised sorted stream and cross-match in bulk."""
        self.checkpoint()
        self.counters.compare(len(merged))  # one merge comparison per tuple
        matched: List[Row] = []
        i, n = 0, len(merged)
        while i < n:
            k = merged[i][0]
            r_group: List[Row] = []
            s_group: List[Row] = []
            j = i
            while j < n and merged[j][0] == k:
                (r_group if merged[j][1] == 0 else s_group).append(merged[j][2])
                j += 1
            if r_group and s_group:
                for r_row in r_group:
                    matched.extend(r_row + s_row for s_row in s_group)
            i = j
        output.extend_rows(matched)


__all__ = ["SortMergeJoin"]
