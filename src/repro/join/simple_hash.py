"""Simple (multipass) hash join -- Section 3.5.

Pass ``i`` pins in memory a hash table for the slice of R whose hash falls
in the pass's range and streams the surviving part of S against it; tuples
outside the range are *passed over*: rehashed, written to a fresh file, and
reprocessed on the next pass.  With ``A = ceil(|R|*F / |M|)`` passes, the
passed-over volume is quadratic in ``A`` -- cheap when R nearly fits,
catastrophic when it does not, exactly the steep curve of Figure 1.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Tuple

from repro.access.hash_index import HashIndex
from repro.join.base import JoinAlgorithm, JoinSpec
from repro.join.partition import partition_hash
from repro.join.vectorized import ColumnStore, insert_page, probe_page
from repro.storage.page import Page
from repro.storage.relation import Relation, Row
from repro.errors import StateError


class SimpleHashJoin(JoinAlgorithm):
    """Multipass simple hash join with passed-over spill files."""

    name = "simple-hash"

    def _execute(self, spec: JoinSpec, output: Relation) -> None:
        if self.batch:
            self._execute_batch(spec, output)
        else:
            self._execute_tuple(spec, output)

    def _execute_batch(self, spec: JoinSpec, output: Relation) -> None:
        """Bulk variant: keys hashed once per row, batch table ops."""
        params = spec.params
        passes = max(
            1, math.ceil(spec.r.page_count * params.fudge / spec.memory_pages)
        )
        if passes == 1 and self.columnar:
            # One pass means no passed-over spill: the whole join is one
            # build + one probe, which the columnar kernels run without
            # materialising a single row tuple.
            self._execute_columnar(spec, output)
            return
        r_key, s_key = spec.r_key, spec.s_key

        r_rows: List[Row] = list(spec.r)
        s_rows: List[Row] = list(spec.s)

        r_tpp = max(1, spec.r.tuples_per_page)
        s_tpp = max(1, spec.s.tuples_per_page)
        for current in range(passes):
            table = HashIndex(self.counters, max_load=params.fudge)
            self.counters.hash_key(len(r_rows))
            passed_r: List[Row] = []
            to_insert: List[Tuple[Any, Row]] = []
            for i, row in enumerate(r_rows):
                if i % r_tpp == 0:
                    self.checkpoint()
                k = r_key(row)
                if partition_hash(k) % passes == current:
                    to_insert.append((k, row))
                else:
                    passed_r.append(row)
            table.insert_batch(to_insert)

            self.counters.hash_key(len(s_rows))
            passed_s: List[Row] = []
            probe_keys: List[Any] = []
            probe_rows: List[Row] = []
            for i, row in enumerate(s_rows):
                if i % s_tpp == 0:
                    self.checkpoint()
                k = s_key(row)
                if partition_hash(k) % passes == current:
                    probe_keys.append(k)
                    probe_rows.append(row)
                else:
                    passed_s.append(row)
            matched: List[Row] = []
            for chain, s_row in zip(table.probe_batch(probe_keys), probe_rows):
                if chain:
                    matched.extend(r_row + s_row for r_row in chain)
            output.extend_rows(matched)

            if current == passes - 1:
                if passed_r:
                    raise StateError(
                        "simple hash left %d R tuples unprocessed" % len(passed_r)
                    )
                break

            self._charge_spill(spec.r, passed_r)
            self._charge_spill(spec.s, passed_s)
            r_rows, s_rows = passed_r, passed_s

    def _execute_columnar(self, spec: JoinSpec, output: Relation) -> None:
        """Single-pass vectorized arm (see :mod:`repro.join.vectorized`).

        Charge-identical to the one-pass batch arm: the up-front bulk
        ``hash_key`` per relation (the pass's partition hash), then the
        hash table's own insert/probe charges -- only the *values* differ
        (store indices instead of row tuples), which no charge observes.
        """
        params = spec.params
        r_ki, s_ki = spec.r_key_index, spec.s_key_index
        table = HashIndex(self.counters, max_load=params.fudge)
        store = ColumnStore(spec.r)
        self.counters.hash_key(spec.r.cardinality)
        for page in spec.r.pages:
            self.checkpoint()
            if len(page):
                insert_page(table, store, page.column(r_ki), page)
        self.counters.hash_key(spec.s.cardinality)
        for page in spec.s.pages:
            self.checkpoint()
            if len(page):
                probe_page(table, store, output, page.column(s_ki), page)

    def _execute_tuple(self, spec: JoinSpec, output: Relation) -> None:
        params = spec.params
        passes = max(
            1, math.ceil(spec.r.page_count * params.fudge / spec.memory_pages)
        )
        r_key, s_key = spec.r_key, spec.s_key

        # Pass 0 reads the base relations (not charged, per the paper);
        # later passes stream the passed-over files (charged, sequential).
        r_rows: List[Row] = list(spec.r)
        s_rows: List[Row] = list(spec.s)

        r_tpp = max(1, spec.r.tuples_per_page)
        s_tpp = max(1, spec.s.tuples_per_page)
        for current in range(passes):
            table = HashIndex(self.counters, max_load=params.fudge)
            passed_r: List[Row] = []
            for i, row in enumerate(r_rows):
                if i % r_tpp == 0:
                    self.checkpoint()
                self.counters.hash_key()
                if partition_hash(r_key(row)) % passes == current:
                    table.insert(r_key(row), row)
                else:
                    passed_r.append(row)
            passed_s: List[Row] = []
            for i, row in enumerate(s_rows):
                if i % s_tpp == 0:
                    self.checkpoint()
                self.counters.hash_key()
                if partition_hash(s_key(row)) % passes == current:
                    for r_row in table.probe(s_key(row)):
                        self.emit(output, r_row, row)
                else:
                    passed_s.append(row)

            if current == passes - 1:
                if passed_r:
                    raise StateError(
                        "simple hash left %d R tuples unprocessed" % len(passed_r)
                    )
                break

            # Passed-over tuples are moved to an output buffer, written
            # out sequentially, and reread on the next pass (2 * IOseq per
            # page in the paper's formula).
            self._charge_spill(spec.r, passed_r)
            self._charge_spill(spec.s, passed_s)
            r_rows, s_rows = passed_r, passed_s

    def _charge_spill(self, relation: Relation, rows: List[Row]) -> None:
        self.counters.move_tuple(len(rows))
        pages = math.ceil(len(rows) / relation.tuples_per_page)
        self.counters.io_sequential(2 * pages)  # write now, read next pass


__all__ = ["SimpleHashJoin"]
