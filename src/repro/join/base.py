"""Shared machinery for the executable join algorithms.

A join is configured once as a :class:`JoinSpec` (inputs, join columns,
memory grant) and executed by a :class:`JoinAlgorithm`, producing a
:class:`JoinResult` that bundles the output relation with the costed
operation counters.

Conventions, following Section 3.2 of the paper:

* R is the build (smaller) relation.  If the caller passes them the other
  way around the spec swaps internally but the output schema always lists
  R's columns before S's, prefixed ``r_`` / ``s_`` on name clashes.
* The initial scan of both inputs and the write of the result are **not**
  charged -- they are identical for every algorithm and the paper excludes
  them from its formulas.
* The memory grant is in pages; a structure of ``n`` tuples occupies
  ``n / tuples_per_page * F`` pages.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.cost.counters import CostReport, OperationCounters
from repro.cost.parameters import CostParameters
from repro.storage.disk import SimulatedDisk
from repro.storage.relation import Relation, Row
from repro.storage.tuples import Schema


def join_schema(r: Relation, s: Relation) -> Schema:
    """Result schema: R's fields then S's, prefixed only on name clashes."""
    clash = set(r.schema.names) & set(s.schema.names)
    if clash:
        return r.schema.concat(s.schema, prefix_self="r_", prefix_other="s_")
    return r.schema.concat(s.schema)


@dataclass
class JoinSpec:
    """One join problem: inputs, join columns, and the memory grant."""

    r: Relation
    s: Relation
    r_field: str
    s_field: str
    memory_pages: int
    params: CostParameters = field(default_factory=CostParameters)

    def __post_init__(self) -> None:
        if self.memory_pages < 2:
            raise ValueError("a join needs at least two pages of memory")
        if not self.r.schema.has_field(self.r_field):
            raise KeyError("R has no field %r" % self.r_field)
        if not self.s.schema.has_field(self.s_field):
            raise KeyError("S has no field %r" % self.s_field)
        # The paper assumes |R| <= |S|: R is the build side.  Swap if the
        # caller got it backwards; the result schema is fixed afterwards.
        if self.r.page_count > self.s.page_count:
            self.r, self.s = self.s, self.r
            self.r_field, self.s_field = self.s_field, self.r_field

    @property
    def r_key(self) -> Callable[[Row], Any]:
        return self.r.key_of(self.r_field)

    @property
    def s_key(self) -> Callable[[Row], Any]:
        return self.s.key_of(self.s_field)

    def table_pages(self, tuples: int, tuples_per_page: int) -> float:
        """Pages a hash/sort structure of ``tuples`` tuples occupies."""
        return tuples / tuples_per_page * self.params.fudge

    def memory_tuples(self, tuples_per_page: int) -> int:
        """``{M}`` -- tuples whose structure fits in the memory grant."""
        return max(1, int(self.memory_pages * tuples_per_page / self.params.fudge))

    def r_fits_in_memory(self) -> bool:
        """``|R| * F <= |M|`` -- whether R's hash table fits outright."""
        return self.r.page_count * self.params.fudge <= self.memory_pages


@dataclass
class JoinResult:
    """The output relation plus the costed instrumentation."""

    relation: Relation
    counters: OperationCounters
    params: CostParameters
    algorithm: str

    @property
    def cardinality(self) -> int:
        return self.relation.cardinality

    def report(self) -> CostReport:
        return self.counters.report(self.params, label=self.algorithm)

    @property
    def modelled_seconds(self) -> float:
        return self.counters.cost(self.params)


class JoinAlgorithm(abc.ABC):
    """Base class: owns the counters, disk, and output plumbing."""

    name = "join"

    def __init__(
        self,
        counters: Optional[OperationCounters] = None,
        disk: Optional[SimulatedDisk] = None,
        batch: bool = True,
        workers: int = 1,
    ) -> None:
        self.counters = counters if counters is not None else OperationCounters()
        # Spills share the counters so IO lands in the same report.
        self.disk = disk if disk is not None else SimulatedDisk(self.counters)
        #: Page-at-a-time execution with bulk counter charging (results and
        #: counters are identical to the tuple-at-a-time path; see
        #: tests/test_batch_equivalence.py).  ``batch=False`` selects the
        #: historical per-row loops.
        self.batch = batch
        #: Worker processes for the partitioned hash joins (GRACE/hybrid).
        #: 1 means serial; >1 offloads pure-CPU bucket work to a fork pool
        #: with deterministic bucket-order assembly, so results and
        #: counters are independent of the worker count.
        self.workers = max(1, int(workers))

    def join(self, spec: JoinSpec) -> JoinResult:
        """Execute the join and return the materialised result."""
        output = Relation(
            "%s(%s,%s)" % (self.name, spec.r.name, spec.s.name),
            join_schema(spec.r, spec.s),
            page_bytes=max(
                spec.r.page_bytes,
                join_schema(spec.r, spec.s).tuple_bytes,
            ),
        )
        self._execute(spec, output)
        return JoinResult(
            relation=output,
            counters=self.counters.snapshot(),
            params=spec.params,
            algorithm=self.name,
        )

    @abc.abstractmethod
    def _execute(self, spec: JoinSpec, output: Relation) -> None:
        """Algorithm body: emit matches into ``output``."""

    # -- shared helpers ----------------------------------------------------------

    def emit(self, output: Relation, r_row: Row, s_row: Row) -> None:
        """Materialise one matched pair (not charged, per the paper)."""
        output.insert_unchecked(r_row + s_row)

    def charge_heap_op(self, heap_size: int) -> None:
        """Priority-queue insert/replace: ~log2(n) comparisons and swaps."""
        levels = max(1, math.ceil(math.log2(heap_size + 1)))
        self.counters.compare(levels)
        self.counters.swap_tuples(levels)

    def scratch_name(self, spec: JoinSpec, tag: str) -> str:
        """A disk file name unique to this join and ``tag``."""
        return "%s:%s+%s:%s" % (self.name, spec.r.name, spec.s.name, tag)


__all__ = ["JoinAlgorithm", "JoinResult", "JoinSpec", "join_schema"]
