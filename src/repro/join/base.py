"""Shared machinery for the executable join algorithms.

A join is configured once as a :class:`JoinSpec` (inputs, join columns,
memory grant) and executed by a :class:`JoinAlgorithm`, producing a
:class:`JoinResult` that bundles the output relation with the costed
operation counters.

Conventions, following Section 3.2 of the paper:

* R is the build (smaller) relation.  If the caller passes them the other
  way around the spec swaps internally but the output schema always lists
  R's columns before S's, prefixed ``r_`` / ``s_`` on name clashes.
* The initial scan of both inputs and the write of the result are **not**
  charged -- they are identical for every algorithm and the paper excludes
  them from its formulas.
* The memory grant is in pages; a structure of ``n`` tuples occupies
  ``n / tuples_per_page * F`` pages.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.cost.counters import CostReport, OperationCounters
from repro.cost.parameters import CostParameters
from repro.errors import ConfigurationError, WorkerPoolError
from repro.join.parallel import (
    OK_SENTINEL,
    guarded_bucket_join_task,
    join_bucket,
    validate_workers,
)
from repro.storage.disk import SimulatedDisk
from repro.storage.relation import Relation, Row
from repro.storage.tuples import Schema


def join_schema(r: Relation, s: Relation) -> Schema:
    """Result schema: R's fields then S's, prefixed only on name clashes."""
    clash = set(r.schema.names) & set(s.schema.names)
    if clash:
        return r.schema.concat(s.schema, prefix_self="r_", prefix_other="s_")
    return r.schema.concat(s.schema)


@dataclass
class JoinSpec:
    """One join problem: inputs, join columns, and the memory grant."""

    r: Relation
    s: Relation
    r_field: str
    s_field: str
    memory_pages: int
    params: CostParameters = field(default_factory=CostParameters)

    def __post_init__(self) -> None:
        if self.memory_pages < 2:
            raise ConfigurationError("a join needs at least two pages of memory")
        if not self.r.schema.has_field(self.r_field):
            raise KeyError("R has no field %r" % self.r_field)
        if not self.s.schema.has_field(self.s_field):
            raise KeyError("S has no field %r" % self.s_field)
        # The paper assumes |R| <= |S|: R is the build side.  Swap if the
        # caller got it backwards; the result schema is fixed afterwards.
        if self.r.page_count > self.s.page_count:
            self.r, self.s = self.s, self.r
            self.r_field, self.s_field = self.s_field, self.r_field

    @property
    def r_key(self) -> Callable[[Row], Any]:
        return self.r.key_of(self.r_field)

    @property
    def s_key(self) -> Callable[[Row], Any]:
        return self.s.key_of(self.s_field)

    @property
    def r_key_index(self) -> int:
        """Column position of the R join key (for packed-column scans)."""
        return self.r.schema.index_of(self.r_field)

    @property
    def s_key_index(self) -> int:
        """Column position of the S join key (for packed-column scans)."""
        return self.s.schema.index_of(self.s_field)

    def table_pages(self, tuples: int, tuples_per_page: int) -> float:
        """Pages a hash/sort structure of ``tuples`` tuples occupies."""
        return tuples / tuples_per_page * self.params.fudge

    def memory_tuples(self, tuples_per_page: int) -> int:
        """``{M}`` -- tuples whose structure fits in the memory grant."""
        return max(1, int(self.memory_pages * tuples_per_page / self.params.fudge))

    def r_fits_in_memory(self) -> bool:
        """``|R| * F <= |M|`` -- whether R's hash table fits outright."""
        return self.r.page_count * self.params.fudge <= self.memory_pages


@dataclass
class JoinResult:
    """The output relation plus the costed instrumentation."""

    relation: Relation
    counters: OperationCounters
    params: CostParameters
    algorithm: str

    @property
    def cardinality(self) -> int:
        return self.relation.cardinality

    def report(self) -> CostReport:
        return self.counters.report(self.params, label=self.algorithm)

    @property
    def modelled_seconds(self) -> float:
        return self.counters.cost(self.params)


class JoinAlgorithm(abc.ABC):
    """Base class: owns the counters, disk, and output plumbing."""

    name = "join"

    def __init__(
        self,
        counters: Optional[OperationCounters] = None,
        disk: Optional[SimulatedDisk] = None,
        batch: bool = True,
        columnar: bool = True,
        workers: int = 1,
    ) -> None:
        self.counters = counters if counters is not None else OperationCounters()
        # Spills share the counters so IO lands in the same report.
        self.disk = disk if disk is not None else SimulatedDisk(self.counters)
        #: Page-at-a-time execution with bulk counter charging (results and
        #: counters are identical to the tuple-at-a-time path; see
        #: tests/test_batch_equivalence.py).  ``batch=False`` selects the
        #: historical per-row loops.
        self.batch = batch
        #: Columnar (vectorized) build/probe/merge kernels inside the batch
        #: arms: hash tables store row indices into a column staging area
        #: and matches are group-gathered buffer-to-buffer (see
        #: :mod:`repro.join.vectorized`).  Results and counters stay
        #: byte-identical to the row-view batch path; only effective when
        #: ``batch`` is on.
        self.columnar = columnar
        #: Worker processes for the partitioned hash joins (GRACE/hybrid).
        #: 1 means serial; >1 offloads pure-CPU bucket work to a fork pool
        #: with deterministic bucket-order assembly, so results and
        #: counters are independent of the worker count.  Invalid counts
        #: (negatives, non-integral floats) raise ConfigurationError.
        self.workers = validate_workers(workers)
        #: Optional :class:`repro.governor.QueryGuard` -- cancellation
        #: checkpoints, the revocable memory grant, and worker fault
        #: policy.  ``None`` (the default) costs one attribute test per
        #: page boundary.
        self.guard = None
        # Bound token.check, cached by set_guard so a checkpoint is one
        # attribute test + one call instead of a three-deep method chain.
        self._token_check = None
        #: True once a worker was killed or hung during this execution;
        #: a dirty pool must be terminate()d -- close()/join() would block
        #: forever behind a wedged worker.
        self.pool_dirty = False
        #: Bucket jobs that failed on the pool and were retried serially.
        self.pool_failures = 0

    def set_guard(self, guard) -> "JoinAlgorithm":
        """Attach a governor guard for this execution; returns self."""
        self.guard = guard
        self._token_check = None if guard is None else guard.token.check
        return self

    def checkpoint(self) -> None:
        """Cooperative cancellation point -- call once per page of work."""
        if self._token_check is not None:
            self._token_check()

    def effective_memory_pages(self, requested: int) -> int:
        """The memory grant's current view of a ``requested``-page budget."""
        if self.guard is not None:
            return self.guard.effective_pages(requested)
        return requested

    def join(self, spec: JoinSpec) -> JoinResult:
        """Execute the join and return the materialised result."""
        output = Relation(
            "%s(%s,%s)" % (self.name, spec.r.name, spec.s.name),
            join_schema(spec.r, spec.s),
            page_bytes=max(
                spec.r.page_bytes,
                join_schema(spec.r, spec.s).tuple_bytes,
            ),
        )
        self._execute(spec, output)
        return JoinResult(
            relation=output,
            counters=self.counters.snapshot(),
            params=spec.params,
            algorithm=self.name,
        )

    @abc.abstractmethod
    def _execute(self, spec: JoinSpec, output: Relation) -> None:
        """Algorithm body: emit matches into ``output``."""

    # -- shared helpers ----------------------------------------------------------

    def pool_workers(self) -> int:
        """The worker count to actually use: 1 once the breaker tripped."""
        if self.guard is not None and not self.guard.allows_parallel():
            return 1
        return self.workers

    def run_bucket_jobs(
        self, pool: Any, payloads: List[Tuple]
    ) -> List[Tuple[List[Row], OperationCounters]]:
        """Dispatch bucket-join payloads to the pool, surviving worker loss.

        Each payload is the :func:`repro.join.parallel.bucket_join_task`
        tuple.  Jobs go out via ``apply_async`` wrapped in
        :func:`~repro.join.parallel.guarded_bucket_join_task`, and results
        are collected in input order with the guard's worker timeout.  Any
        job that times out (killed or wedged worker -- the fork pool loses
        the tasks of a dead process), errors, or returns a payload without
        the OK sentinel (garbled result) is **retried serially in the
        coordinator** with fresh counters -- identical rows and charges to
        a healthy worker by construction, since the worker runs the very
        same :func:`~repro.join.parallel.join_bucket`.  Each failure is
        recorded against the session circuit breaker; a killed/hung worker
        also marks the pool dirty so teardown uses ``terminate()``.
        """
        guard = self.guard
        timeout = guard.worker_timeout if guard is not None else 60.0
        handles: List[Optional[Any]] = []
        for payload in payloads:
            fault = guard.worker_fault() if guard is not None else None
            try:
                handles.append(
                    pool.apply_async(guarded_bucket_join_task, ((payload, fault),))
                )
            except Exception:
                # The pool itself refused the dispatch (already broken);
                # fall through to the serial retry below.
                handles.append(None)
                self.pool_dirty = True
        results: List[Tuple[List[Row], OperationCounters]] = []
        for payload, handle in zip(payloads, handles):
            outcome: Optional[Tuple[List[Row], OperationCounters]] = None
            if handle is not None:
                try:
                    raw = handle.get(timeout)
                except Exception:
                    # Timeout (killed or hung worker) or a transport
                    # error: the pool can no longer be trusted to drain.
                    self.pool_dirty = True
                else:
                    if (
                        isinstance(raw, tuple)
                        and len(raw) == 3
                        and raw[0] == OK_SENTINEL
                    ):
                        outcome = (raw[1], raw[2])
                    # else: garbled result -- worker alive, payload junk.
            if outcome is None:
                self.pool_failures += 1
                if guard is not None:
                    guard.record_worker_failure()
                r_rows, s_rows, r_idx, s_idx, fudge = payload
                retry_counters = OperationCounters()
                try:
                    rows = join_bucket(
                        r_rows, s_rows, r_idx, s_idx, fudge, retry_counters
                    )
                except Exception as exc:
                    raise WorkerPoolError(
                        "bucket job failed on the pool and its serial "
                        "retry also failed: %s" % (exc,)
                    ) from exc
                outcome = (rows, retry_counters)
            results.append(outcome)
        return results

    def finish_pool(self, pool: Optional[Any]) -> None:
        """Tear a pool down; ``terminate()`` when a worker was lost."""
        if pool is None:
            return
        if self.pool_dirty:
            pool.terminate()
        else:
            pool.close()
        pool.join()

    def emit(self, output: Relation, r_row: Row, s_row: Row) -> None:
        """Materialise one matched pair (not charged, per the paper)."""
        output.insert_unchecked(r_row + s_row)

    def charge_heap_op(self, heap_size: int) -> None:
        """Priority-queue insert/replace: ~log2(n) comparisons and swaps."""
        levels = max(1, math.ceil(math.log2(heap_size + 1)))
        self.counters.compare(levels)
        self.counters.swap_tuples(levels)

    def scratch_name(self, spec: JoinSpec, tag: str) -> str:
        """A disk file name unique to this join and ``tag``."""
        return "%s:%s+%s:%s" % (self.name, spec.r.name, spec.s.name, tag)


__all__ = ["JoinAlgorithm", "JoinResult", "JoinSpec", "join_schema"]
