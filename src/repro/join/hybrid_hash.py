"""Hybrid hash join -- Section 3.7, the paper's new algorithm.

Hybrid hash is GRACE with the leftover memory put to work: memory holds the
``B`` output buffers *plus* a live hash table for bucket R0 covering the
fraction ``q = (|M| - B) / (|R|*F)`` of R.  R0 tuples never touch disk, and
S0 tuples probe the resident table during partitioning.  Only the ``1-q``
spilled remainder pays IO and a second hashing pass, so the algorithm
interpolates smoothly between GRACE (``q -> 0``) and the one-pass simple
hash (``q = 1``), dominating both across Figure 1.

The partitioning function splits the hash-value space *unevenly*: a ``q``
share to the resident class, the rest evenly over the B spill buckets --
the Section 3.3 construction of a partition compatible with ``h`` (see
:func:`repro.join.partition.hybrid_class`).

Skew handling follows Section 3.3's remedy: "if we err slightly we can
always apply the hybrid hash join recursively, thereby adding an extra pass
for the overflow tuples."  When a spilled R-bucket's hash table would
exceed the memory grant, the bucket pair is re-joined recursively with a
depth-salted hash, so pathological key distributions degrade gracefully
instead of overflowing memory.

Under the governor the memory grant is **live**: a mid-query revocation
(:meth:`repro.governor.grant.MemoryGrant.revoke`) can shrink the budget the
level was planned against.  The join reacts at the next page boundary by
**demoting** the resident partition R0 to an *overflow spill pair* --
dumping the live hash table to disk and routing all later class-0 tuples to
the pair -- which degrades the level toward pure GRACE (``q`` effectively
0) at the honest cost of the extra moves and IO.  Demotion is correct at
any boundary: the resident table only ever grows during phase 1a, so every
S0 tuple probed before the demotion saw *all* R0 tuples it could match
(phase 1a completed first), and every S0 tuple after it goes to the
overflow pair, where phase 2 joins it against the complete dumped R0.  The
overflow pair is processed exactly like a spill bucket, including the
recursion check against the *shrunken* capacity -- the degradation ladder
of docs/ROBUSTNESS.md.

Execution comes in three flavours with identical results and counters: the
historical tuple-at-a-time loops (``batch=False``), the page-at-a-time
batch path (default), and the batch path with a worker pool
(``workers > 1``) where the coordinator keeps all disk IO in serial order
and workers handle classification and bucket build/probe (see
:mod:`repro.join.parallel`).  Recursive overflow buckets are always joined
serially in the coordinator, at their in-order sequence point.  Worker
failures in phase 2 are absorbed by
:meth:`~repro.join.base.JoinAlgorithm.run_bucket_jobs` (serial retry,
identical rows and counters).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.access.hash_index import HashIndex
from repro.join.base import JoinAlgorithm, JoinSpec
from repro.join.parallel import (
    hybrid_class_chunk_task,
    join_bucket,
    make_pool,
    precomputed_classifier,
)
from repro.join.partition import (
    SpillWriter,
    hybrid_class,
    partition_fan_out,
    read_bucket,
)
from repro.storage.relation import Relation, Row


class HybridHashJoin(JoinAlgorithm):
    """Partitioned hash join with a memory-resident first bucket."""

    name = "hybrid-hash"

    #: Recursion backstop: 2 levels handle |R| up to ~|M|^3 / F pages;
    #: deeper than 8 means the partitioning hash has failed entirely.
    MAX_RECURSION = 8

    def _classify(
        self, key: Any, q: float, buckets: int, depth: int = 0
    ) -> int:
        """Class of ``key``: 0 = resident, 1..B = spill buckets."""
        return hybrid_class(key, q, buckets, depth)

    def _execute(self, spec: JoinSpec, output: Relation) -> None:
        if not self.batch:
            self._execute_level(spec, output, depth=0)
            return
        pool = make_pool(self.pool_workers())
        try:
            self._execute_level_batch(spec, output, depth=0, pool=pool)
        finally:
            self.finish_pool(pool)

    # -- grant-aware degradation -------------------------------------------------

    def _bucket_capacity(self, spec: JoinSpec) -> int:
        """Tuples a phase-2 hash table may hold under the *current* grant."""
        if self.guard is None or self.guard.grant is None:
            return spec.memory_tuples(spec.r.tuples_per_page)
        pages = self.guard.effective_pages(spec.memory_pages)
        return max(1, int(pages * spec.r.tuples_per_page / spec.params.fudge))

    def _degrade_now(
        self, memory: int, buckets: int, resident: HashIndex, spec: JoinSpec
    ) -> bool:
        """Whether a revoked grant can no longer hold R0's live table.

        Checked at page boundaries during phase 1.  The happy path (no
        revocation: the grant still covers the planned budget) is two
        attribute loads and a compare; only a constrained grant pays for
        the live footprint computation (table pages plus B output
        buffers -- the Section 3.7 memory layout), which also feeds the
        grant's high-water accounting.
        """
        guard = self.guard
        if guard is None or guard.grant is None:
            return False
        grant = guard.grant
        if grant.pages >= memory:
            return False
        used = spec.table_pages(len(resident), spec.r.tuples_per_page) + buckets
        grant.charge(used)
        return grant.over_budget(used)

    def _demote_resident(
        self, resident: HashIndex, spec: JoinSpec, depth: int
    ) -> Tuple[SpillWriter, SpillWriter]:
        """Dump the live R0 table to a fresh overflow spill pair.

        Charges one move per dumped tuple plus the flush IO -- the honest
        price of giving the memory back.  The caller replaces ``resident``
        with an empty table and routes all later class-0 tuples to the
        returned writers; phase 2 then joins the pair like any spilled
        bucket.
        """
        base = self.scratch_name(spec, "ovf")
        ovf_r = SpillWriter(
            self.disk,
            ["%s.d%d.r" % (base, depth)],
            spec.r.tuples_per_page,
            self.counters,
        )
        ovf_s = SpillWriter(
            self.disk,
            ["%s.d%d.s" % (base, depth)],
            spec.s.tuples_per_page,
            self.counters,
        )
        for _, row in resident.items():
            ovf_r.write(0, row)
        return ovf_r, ovf_s

    # -- tuple-at-a-time path ----------------------------------------------------

    def _execute_level(
        self, spec: JoinSpec, output: Relation, depth: int
    ) -> None:
        params = spec.params
        memory = self.effective_memory_pages(spec.memory_pages)
        buckets, q = partition_fan_out(
            spec.r.page_count, memory, params.fudge
        )
        r_key, s_key = spec.r_key, spec.s_key

        resident = HashIndex(self.counters, max_load=params.fudge)
        demoted = False
        ovf_r: Optional[SpillWriter] = None
        ovf_s: Optional[SpillWriter] = None

        # ---- Phase 1a: partition R, building R0's table on the fly. ----
        r_writer = None
        if buckets > 0:
            r_files = [
                "%s.d%d.%d" % (self.scratch_name(spec, "r"), depth, i)
                for i in range(buckets)
            ]
            r_writer = SpillWriter(
                self.disk, r_files, spec.r.tuples_per_page, self.counters
            )
        r_tpp = max(1, spec.r.tuples_per_page)
        for i, row in enumerate(spec.r):
            if i % r_tpp == 0:
                self.checkpoint()
                if not demoted and self._degrade_now(
                    memory, buckets, resident, spec
                ):
                    ovf_r, ovf_s = self._demote_resident(resident, spec, depth)
                    resident = HashIndex(self.counters, max_load=params.fudge)
                    demoted = True
            cls = self._classify(r_key(row), q, buckets, depth)
            if cls == 0:
                if demoted:
                    self.counters.hash_key()
                    ovf_r.write(0, row)
                else:
                    # insert() charges the hash and the move into the table.
                    resident.insert(r_key(row), row)
            else:
                self.counters.hash_key()
                r_writer.write(cls - 1, row)

        # ---- Phase 1b: partition S, probing R0 on the fly. ----
        s_writer = None
        if buckets > 0:
            s_files = [
                "%s.d%d.%d" % (self.scratch_name(spec, "s"), depth, i)
                for i in range(buckets)
            ]
            s_writer = SpillWriter(
                self.disk, s_files, spec.s.tuples_per_page, self.counters
            )
        s_tpp = max(1, spec.s.tuples_per_page)
        for i, row in enumerate(spec.s):
            if i % s_tpp == 0:
                self.checkpoint()
                if not demoted and self._degrade_now(
                    memory, buckets, resident, spec
                ):
                    ovf_r, ovf_s = self._demote_resident(resident, spec, depth)
                    resident = HashIndex(self.counters, max_load=params.fudge)
                    demoted = True
            cls = self._classify(s_key(row), q, buckets, depth)
            if cls == 0:
                if demoted:
                    self.counters.hash_key()
                    ovf_s.write(0, row)
                else:
                    for r_row in resident.probe(s_key(row)):
                        self.emit(output, r_row, row)
            else:
                self.counters.hash_key()
                s_writer.write(cls - 1, row)

        r_files = r_writer.close() if r_writer is not None else []
        s_files = s_writer.close() if s_writer is not None else []
        if demoted:
            r_files = r_files + ovf_r.close()
            s_files = s_files + ovf_s.close()
        if not r_files:
            return

        # ---- Phase 2: join the spilled bucket pairs. ----
        bucket_capacity = self._bucket_capacity(spec)
        for r_file, s_file in zip(r_files, s_files):
            self.checkpoint()
            r_rows = read_bucket(self.disk, r_file)
            s_rows = read_bucket(self.disk, s_file)
            self.disk.delete(r_file)
            self.disk.delete(s_file)

            if len(r_rows) > bucket_capacity and depth < self.MAX_RECURSION:
                # Section 3.3's overflow remedy: recurse on this bucket
                # pair with a fresh (depth-salted) partitioning -- but only
                # when partitioning can actually split it.  A bucket
                # dominated by one key is indivisible; repartitioning it
                # just rewrites the same rows, so it is processed directly
                # (the hash table runs over its budget, the honest cost of
                # an unsplittable hot key).
                if len({r_key(row) for row in r_rows}) > 1:
                    self._recurse_on_bucket(spec, output, r_rows, s_rows, depth)
                    continue

            table = HashIndex(self.counters, max_load=params.fudge)
            for row in r_rows:
                table.insert(r_key(row), row)
            for row in s_rows:
                for r_row in table.probe(s_key(row)):
                    self.emit(output, r_row, row)

    # -- batch path (optionally parallel) ----------------------------------------

    def _execute_level_batch(
        self,
        spec: JoinSpec,
        output: Relation,
        depth: int,
        pool: Optional[Any],
    ) -> None:
        params = spec.params
        memory = self.effective_memory_pages(spec.memory_pages)
        buckets, q = partition_fan_out(
            spec.r.page_count, memory, params.fudge
        )
        r_key, s_key = spec.r_key, spec.s_key
        r_ki, s_ki = spec.r_key_index, spec.s_key_index

        resident = HashIndex(self.counters, max_load=params.fudge)
        demoted = False
        ovf_r: Optional[SpillWriter] = None
        ovf_s: Optional[SpillWriter] = None

        classify_r: Optional[Callable[[Sequence[Any]], List[int]]] = None
        classify_s: Optional[Callable[[Sequence[Any]], List[int]]] = None
        if pool is not None and buckets > 0:
            # Worker keys come straight off the packed join-key columns.
            classify_r = precomputed_classifier(
                pool,
                [
                    list(page.column(r_ki))
                    for page in spec.r.pages
                    if len(page)
                ],
                hybrid_class_chunk_task,
                (q, buckets, depth),
            )
            classify_s = precomputed_classifier(
                pool,
                [
                    list(page.column(s_ki))
                    for page in spec.s.pages
                    if len(page)
                ],
                hybrid_class_chunk_task,
                (q, buckets, depth),
            )

        # ---- Phase 1a: partition R, building R0's table page by page. ----
        r_writer = None
        if buckets > 0:
            r_files = [
                "%s.d%d.%d" % (self.scratch_name(spec, "r"), depth, i)
                for i in range(buckets)
            ]
            r_writer = SpillWriter(
                self.disk, r_files, spec.r.tuples_per_page, self.counters
            )
        for page in spec.r.pages:
            self.checkpoint()
            if not demoted and self._degrade_now(memory, buckets, resident, spec):
                ovf_r, ovf_s = self._demote_resident(resident, spec, depth)
                resident = HashIndex(self.counters, max_load=params.fudge)
                demoted = True
            rows = page.tuples
            if not rows:
                continue
            keys = page.column(r_ki)
            classes = (
                classify_r(keys)
                if classify_r is not None
                else [hybrid_class(k, q, buckets, depth) for k in keys]
            )
            to_insert: List[Tuple[Any, Row]] = []
            pending: List[List[Row]] = [[] for _ in range(buckets)]
            spilled = 0
            for k, row, cls in zip(keys, rows, classes):
                if cls == 0:
                    to_insert.append((k, row))
                else:
                    pending[cls - 1].append(row)
                    spilled += 1
            if demoted:
                if to_insert:
                    self.counters.hash_key(len(to_insert))
                    ovf_r.write_many(0, [row for _, row in to_insert])
            else:
                resident.insert_batch(to_insert)
            if spilled:
                self.counters.hash_key(spilled)
                for b, bucket_rows in enumerate(pending):
                    r_writer.write_many(b, bucket_rows)

        # ---- Phase 1b: partition S, probing R0 page by page. ----
        s_writer = None
        if buckets > 0:
            s_files = [
                "%s.d%d.%d" % (self.scratch_name(spec, "s"), depth, i)
                for i in range(buckets)
            ]
            s_writer = SpillWriter(
                self.disk, s_files, spec.s.tuples_per_page, self.counters
            )
        for page in spec.s.pages:
            self.checkpoint()
            if not demoted and self._degrade_now(memory, buckets, resident, spec):
                ovf_r, ovf_s = self._demote_resident(resident, spec, depth)
                resident = HashIndex(self.counters, max_load=params.fudge)
                demoted = True
            rows = page.tuples
            if not rows:
                continue
            keys = page.column(s_ki)
            classes = (
                classify_s(keys)
                if classify_s is not None
                else [hybrid_class(k, q, buckets, depth) for k in keys]
            )
            probe_keys: List[Any] = []
            probe_rows: List[Row] = []
            pending = [[] for _ in range(buckets)]
            spilled = 0
            for k, row, cls in zip(keys, rows, classes):
                if cls == 0:
                    probe_keys.append(k)
                    probe_rows.append(row)
                else:
                    pending[cls - 1].append(row)
                    spilled += 1
            if demoted:
                if probe_rows:
                    self.counters.hash_key(len(probe_rows))
                    ovf_s.write_many(0, probe_rows)
            else:
                matched: List[Row] = []
                for chain, s_row in zip(
                    resident.probe_batch(probe_keys), probe_rows
                ):
                    if chain:
                        matched.extend(r_row + s_row for r_row in chain)
                output.extend_rows(matched)
            if spilled:
                self.counters.hash_key(spilled)
                for b, bucket_rows in enumerate(pending):
                    s_writer.write_many(b, bucket_rows)

        r_files = r_writer.close() if r_writer is not None else []
        s_files = s_writer.close() if s_writer is not None else []
        if demoted:
            r_files = r_files + ovf_r.close()
            s_files = s_files + ovf_s.close()
        if not r_files:
            return

        # ---- Phase 2: join the spilled bucket pairs. ----
        # The coordinator reads and deletes every bucket in serial order;
        # recursion runs inline (it performs IO at its sequence point),
        # while plain bucket pairs either join serially or go to the pool.
        bucket_capacity = self._bucket_capacity(spec)
        r_index = spec.r.schema.index_of(spec.r_field)
        s_index = spec.s.schema.index_of(spec.s_field)
        fudge = params.fudge

        entries: List[Tuple[str, Any]] = []
        for r_file, s_file in zip(r_files, s_files):
            self.checkpoint()
            r_rows = read_bucket(self.disk, r_file)
            s_rows = read_bucket(self.disk, s_file)
            self.disk.delete(r_file)
            self.disk.delete(s_file)

            if (
                len(r_rows) > bucket_capacity
                and depth < self.MAX_RECURSION
                and len({r_key(row) for row in r_rows}) > 1
            ):
                if pool is None:
                    self._recurse_on_bucket(
                        spec, output, r_rows, s_rows, depth, batch=True
                    )
                else:
                    # Recurse now (its IO belongs here) but emit into a
                    # side relation so bucket-ordered assembly holds.
                    side = Relation(
                        "%s~side%d" % (output.name, len(entries)),
                        output.schema,
                        output.page_bytes,
                    )
                    self._recurse_on_bucket(
                        spec, side, r_rows, s_rows, depth, batch=True
                    )
                    entries.append(("rel", side))
                continue

            if pool is None:
                output.extend_rows(
                    join_bucket(
                        r_rows, s_rows, r_index, s_index, fudge, self.counters
                    )
                )
            else:
                entries.append(("job", (r_rows, s_rows, r_index, s_index, fudge)))

        if pool is not None:
            results = iter(
                self.run_bucket_jobs(
                    pool,
                    [payload for kind, payload in entries if kind == "job"],
                )
            )
            for kind, payload in entries:
                if kind == "rel":
                    for page in payload.pages:
                        output.extend_rows(page.tuples)
                else:
                    rows, worker_counters = next(results)
                    self.counters.absorb(worker_counters)
                    output.extend_rows(rows)

    def _recurse_on_bucket(
        self,
        spec: JoinSpec,
        output: Relation,
        r_rows: List[Row],
        s_rows: List[Row],
        depth: int,
        batch: bool = False,
    ) -> None:
        """Re-join one overflowing bucket pair one level deeper.

        Always serial: recursion is rare (skew overflow only) and its IO
        must stay at the coordinator's in-order sequence point.  The
        sub-level plans against the *current* effective grant, so a
        revoked budget keeps shrinking the recursive fan-outs.
        """
        sub_r = Relation(
            "%s~%d" % (spec.r.name, depth + 1), spec.r.schema, spec.r.page_bytes
        )
        sub_r.extend_rows(r_rows)
        sub_s = Relation(
            "%s~%d" % (spec.s.name, depth + 1), spec.s.schema, spec.s.page_bytes
        )
        sub_s.extend_rows(s_rows)
        sub_spec = JoinSpec(
            r=sub_r,
            s=sub_s,
            r_field=spec.r_field,
            s_field=spec.s_field,
            memory_pages=self.effective_memory_pages(spec.memory_pages),
            params=spec.params,
        )
        # The sub-spec may have swapped sides if the bucket's S slice is
        # the smaller one; keep the original orientation so emitted rows
        # stay (R, S)-ordered.
        if sub_spec.r is not sub_r:
            sub_spec.r, sub_spec.s = sub_r, sub_s
            sub_spec.r_field, sub_spec.s_field = spec.r_field, spec.s_field
        if batch:
            self._execute_level_batch(sub_spec, output, depth + 1, pool=None)
        else:
            self._execute_level(sub_spec, output, depth + 1)


__all__ = ["HybridHashJoin"]
